//! Deterministic chaos fault injection for resilience testing.
//!
//! [`Chaos`] decorates any [`Evaluator`] and, driven by a seeded
//! [`ChaosState`], injects three classes of fault at controlled,
//! reproducible points:
//!
//! * **worker panics** — a screening task aborts mid-flight, exercising
//!   the `catch_unwind` boundary in [`crate::run_parallel_with`];
//! * **cached-matrix bit flips** — one simulated value bit of a
//!   prepared node is flipped, which the [`Auditing`](crate::Auditing)
//!   replay layer must catch and repair;
//! * **spurious width errors** — a prepared node's value matrix loses a
//!   row, tripping the audit width check.
//!
//! Injection is keyed by *logical position* (a per-run section counter
//! plus the item index, or the prepare sequence number), never by
//! wall-clock or thread schedule, and each key fires at most once — so
//! a chaos run is bit-reproducible, its retries deterministically
//! succeed, and the recovered solution set must equal the chaos-off
//! solution set. The equivalence is pinned by the resilience proptests.

use std::collections::HashSet;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::error::IncdxError;
use crate::evaluator::{EvalContext, Evaluator, PreparedNode, SimCounters};
use incdx_fault::Correction;

/// User-facing chaos settings, parsed from a `--chaos seed,rate` spec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Seed of the injection stream (same seed → same faults).
    pub seed: u64,
    /// Per-opportunity injection probability in `[0, 1]`.
    pub rate: f64,
}

impl ChaosConfig {
    /// Parses a `seed,rate` spec, e.g. `7,0.05`.
    pub fn parse(spec: &str) -> Result<ChaosConfig, IncdxError> {
        let bad = || IncdxError::InvalidSpec {
            name: "chaos",
            value: spec.to_string(),
        };
        let (seed_s, rate_s) = spec.split_once(',').ok_or_else(bad)?;
        let seed: u64 = seed_s.trim().parse().map_err(|_| bad())?;
        let rate: f64 = rate_s.trim().parse().map_err(|_| bad())?;
        if !(0.0..=1.0).contains(&rate) || rate.is_nan() {
            return Err(bad());
        }
        Ok(ChaosConfig { seed, rate })
    }
}

/// Tallies of the faults a [`ChaosState`] actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosSummary {
    /// Worker panics injected into pipeline tasks.
    pub panics: u64,
    /// Value-matrix bits flipped in prepared nodes.
    pub bit_flips: u64,
    /// Prepared nodes whose matrix was truncated by a row.
    pub width_errors: u64,
    /// Sparse-mask block-summary bits flipped in the candidate pipeline.
    pub summary_flips: u64,
    /// Abstraction-map entries corrupted in hierarchical runs.
    pub map_corruptions: u64,
    /// Static-analysis dominator tables corrupted in pruning runs.
    pub table_corruptions: u64,
    /// Serialized checkpoints torn on their way to the spool.
    pub checkpoint_corruptions: u64,
}

impl ChaosSummary {
    /// Total injected faults of all classes.
    pub fn total(&self) -> u64 {
        self.panics
            + self.bit_flips
            + self.width_errors
            + self.summary_flips
            + self.map_corruptions
            + self.table_corruptions
            + self.checkpoint_corruptions
    }
}

impl fmt::Display for ChaosSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} injected ({} panics, {} bit flips, {} width errors, {} summary flips, {} map corruptions, {} table corruptions, {} checkpoint corruptions)",
            self.total(),
            self.panics,
            self.bit_flips,
            self.width_errors,
            self.summary_flips,
            self.map_corruptions,
            self.table_corruptions,
            self.checkpoint_corruptions
        )
    }
}

/// Shared injection state: one per rectification session, handed to the
/// candidate pipeline (panic injection) and the [`Chaos`] evaluator
/// decorator (matrix corruption).
#[derive(Debug)]
pub struct ChaosState {
    config: ChaosConfig,
    /// Monotone id of the current parallel section; advanced by
    /// [`ChaosState::next_section`] so panic keys don't depend on how
    /// items are distributed over workers.
    section: AtomicU64,
    /// Monotone count of evaluator `prepare` calls (corruption keys).
    prepare_seq: AtomicU64,
    /// Monotone count of sparse-mask builds (summary-corruption keys).
    mask_seq: AtomicU64,
    /// Monotone count of abstraction builds (map-corruption keys).
    abstraction_seq: AtomicU64,
    /// Monotone count of analysis-table builds (table-corruption keys).
    analysis_seq: AtomicU64,
    /// Monotone count of checkpoint spool writes (corruption keys).
    spool_seq: AtomicU64,
    panics: AtomicU64,
    bit_flips: AtomicU64,
    width_errors: AtomicU64,
    summary_flips: AtomicU64,
    map_corruptions: AtomicU64,
    table_corruptions: AtomicU64,
    checkpoint_corruptions: AtomicU64,
    /// Keys that already fired: a retried task draws the same key, finds
    /// it spent, and succeeds — faults are transient by construction.
    fired: Mutex<HashSet<u64>>,
}

impl ChaosState {
    /// Fresh injection state for one session.
    pub fn new(config: ChaosConfig) -> Arc<ChaosState> {
        Arc::new(ChaosState {
            config,
            section: AtomicU64::new(0),
            prepare_seq: AtomicU64::new(0),
            mask_seq: AtomicU64::new(0),
            abstraction_seq: AtomicU64::new(0),
            analysis_seq: AtomicU64::new(0),
            spool_seq: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            bit_flips: AtomicU64::new(0),
            width_errors: AtomicU64::new(0),
            summary_flips: AtomicU64::new(0),
            map_corruptions: AtomicU64::new(0),
            table_corruptions: AtomicU64::new(0),
            checkpoint_corruptions: AtomicU64::new(0),
            fired: Mutex::new(HashSet::new()),
        })
    }

    /// The configured seed/rate.
    pub fn config(&self) -> ChaosConfig {
        self.config
    }

    /// Opens a new parallel section and returns its id. Call once per
    /// pipeline stage *before* fanning out, so every task of the stage
    /// shares the section id and keys on its item index alone.
    pub fn next_section(&self) -> u64 {
        self.section.fetch_add(1, Ordering::Relaxed)
    }

    /// What was injected so far.
    pub fn summary(&self) -> ChaosSummary {
        ChaosSummary {
            panics: self.panics.load(Ordering::Relaxed),
            bit_flips: self.bit_flips.load(Ordering::Relaxed),
            width_errors: self.width_errors.load(Ordering::Relaxed),
            summary_flips: self.summary_flips.load(Ordering::Relaxed),
            map_corruptions: self.map_corruptions.load(Ordering::Relaxed),
            table_corruptions: self.table_corruptions.load(Ordering::Relaxed),
            checkpoint_corruptions: self.checkpoint_corruptions.load(Ordering::Relaxed),
        }
    }

    /// Deterministic per-key uniform draw in `[0, 1)` (SplitMix64 of
    /// `seed ^ key` — stateless, so concurrent draws don't interact).
    fn draw(&self, key: u64) -> f64 {
        let x = splitmix64(self.config.seed ^ key.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        (x >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Marks `key` fired; returns `false` if it already was (the retry
    /// path), in which case the caller must not inject again.
    fn arm(&self, key: u64) -> bool {
        match self.fired.lock() {
            Ok(mut fired) => fired.insert(key),
            // A poisoned set only means some holder panicked between
            // lock and unlock; the set itself is still coherent.
            Err(poisoned) => poisoned.into_inner().insert(key),
        }
    }

    /// Panics (once) if the injection stream selects task `item` of
    /// parallel section `section`. Safe to call from worker threads;
    /// the panic is caught at the sanctioned boundary in
    /// [`crate::run_parallel_with`] and the retry draws a spent key.
    pub fn maybe_panic(&self, section: u64, item: usize) {
        let key = 0x5050_0000_0000_0000 ^ (section << 24) ^ item as u64;
        if self.draw(key) < self.config.rate && self.arm(key) {
            self.panics.fetch_add(1, Ordering::Relaxed);
            panic!("chaos: injected worker panic"); // panic-audit: allow
        }
    }

    /// Panics (once per frontier sequence number) if the injection
    /// stream selects this dispatcher steal: called by a dispatch
    /// worker right after it claims a frontier entry, so the injected
    /// fault exercises the exact claimed-then-died steal race — the
    /// panic is caught at the sanctioned boundary in the dispatcher
    /// worker loop, the task is marked failed, and the master falls
    /// back to evaluating the node inline (lossless).
    pub fn maybe_steal_panic(&self, seq: u64) {
        let key = 0x57EA_0000_0000_0000 ^ seq;
        if self.draw(key) < self.config.rate && self.arm(key) {
            self.panics.fetch_add(1, Ordering::Relaxed);
            panic!("chaos: injected steal-site panic"); // panic-audit: allow
        }
    }

    /// Corrupts a prepared node in place if the injection stream selects
    /// this prepare: either truncates the value matrix by one row (a
    /// width error) or flips one simulated bit. The two are mutually
    /// exclusive per prepare, so injected faults map 1:1 onto audit
    /// repair events. Returns `true` if anything was injected.
    pub fn maybe_corrupt(&self, node: &mut PreparedNode) -> bool {
        let seq = self.prepare_seq.fetch_add(1, Ordering::Relaxed);
        let rows = node.vals.rows();
        let vectors = node.vals.num_vectors();
        if rows == 0 || vectors == 0 {
            return false;
        }
        let width_key = 0x1DE0_0000_0000_0000 ^ seq;
        if self.draw(width_key) < self.config.rate && self.arm(width_key) {
            self.width_errors.fetch_add(1, Ordering::Relaxed);
            let mut narrow = incdx_sim::PackedMatrix::new(rows - 1, vectors);
            for r in 0..rows - 1 {
                narrow.row_mut(r).copy_from_slice(node.vals.row(r));
            }
            node.vals = narrow;
            return true;
        }
        let flip_key = 0xF117_0000_0000_0000 ^ seq;
        if self.draw(flip_key) < self.config.rate && self.arm(flip_key) {
            self.bit_flips.fetch_add(1, Ordering::Relaxed);
            let d = splitmix64(self.config.seed ^ flip_key);
            let row = (d % rows as u64) as usize;
            let bit = ((d >> 32) % vectors as u64) as usize;
            node.vals.row_mut(row)[bit / 64] ^= 1u64 << (bit % 64);
            return true;
        }
        false
    }

    /// Flips one block-summary bit of a freshly built sparse
    /// failing-vector mask if the injection stream selects this build —
    /// the words stay intact, so the mask's `verify()` must fail and its
    /// `repair()` must restore exactly the pre-corruption state. The
    /// pipeline runs that verify/repair pair on every chaos-armed build
    /// and records each repair as a `SparseRepair` degradation. Returns
    /// `true` if a bit was flipped.
    pub fn maybe_corrupt_mask(&self, mask: &mut incdx_sim::SparseMask) -> bool {
        let seq = self.mask_seq.fetch_add(1, Ordering::Relaxed);
        let nb = mask.summary().num_blocks();
        if nb == 0 {
            return false;
        }
        let key = 0x5AFE_0000_0000_0000 ^ seq;
        if self.draw(key) < self.config.rate && self.arm(key) {
            self.summary_flips.fetch_add(1, Ordering::Relaxed);
            let d = splitmix64(self.config.seed ^ key);
            mask.summary_mut().flip_bit((d % nb as u64) as usize);
            return true;
        }
        false
    }

    /// Corrupts one entry of a hierarchical run's abstraction map (once
    /// per armed key). The map's structural invariant is a *derived*
    /// property — [`incdx_netlist::AbstractionMap::validate`] detects
    /// exactly this corruption, and the hierarchical engine rebuilds the
    /// abstraction from the base netlist, recording an
    /// `AbstractionRepair` degradation. Returns `true` if an entry was
    /// corrupted.
    pub fn maybe_corrupt_abstraction(&self, map: &mut incdx_netlist::AbstractionMap) -> bool {
        let seq = self.abstraction_seq.fetch_add(1, Ordering::Relaxed);
        if map.concrete_len() == 0 {
            return false;
        }
        let key = 0xAB57_0000_0000_0000 ^ seq;
        if self.draw(key) < self.config.rate && self.arm(key) {
            self.map_corruptions.fetch_add(1, Ordering::Relaxed);
            map.corrupt_for_chaos();
            return true;
        }
        false
    }

    /// Corrupts one entry of a pruning run's static dominator table (once
    /// per armed key). Like the abstraction map, the table's structural
    /// invariant is a *derived* property —
    /// [`incdx_analysis::DominatorTable::validate`] detects exactly this
    /// corruption, and the engine rebuilds the table from the base
    /// netlist, recording an `AnalysisRepair` degradation. Returns `true`
    /// if an entry was corrupted.
    pub fn maybe_corrupt_analysis(&self, table: &mut incdx_analysis::DominatorTable) -> bool {
        let seq = self.analysis_seq.fetch_add(1, Ordering::Relaxed);
        if table.is_empty() {
            return false;
        }
        let key = 0xD0A7_0000_0000_0000 ^ seq;
        if self.draw(key) < self.config.rate && self.arm(key) {
            if !table.corrupt_for_chaos() {
                return false;
            }
            self.table_corruptions.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        false
    }

    /// Tears a serialized checkpoint on its way to the spool (once per
    /// armed key): the JSON line is truncated at a deterministic byte,
    /// simulating a torn write. A strict prefix of a checkpoint
    /// document can never parse as a complete one, so the spool's
    /// write-then-read-back validation *must* detect the damage and
    /// rewrite the line from the in-memory checkpoint, recording a
    /// `CheckpointRepair` degradation — injected tears map 1:1 onto
    /// repairs. Returns `true` if the line was torn.
    pub fn maybe_corrupt_checkpoint(&self, json: &mut String) -> bool {
        let seq = self.spool_seq.fetch_add(1, Ordering::Relaxed);
        if json.len() < 2 {
            return false;
        }
        let key = 0xC4E0_0000_0000_0000 ^ seq;
        if self.draw(key) < self.config.rate && self.arm(key) {
            self.checkpoint_corruptions.fetch_add(1, Ordering::Relaxed);
            let d = splitmix64(self.config.seed ^ key);
            let mut cut = (d % json.len() as u64) as usize;
            while !json.is_char_boundary(cut) {
                cut -= 1;
            }
            json.truncate(cut);
            return true;
        }
        false
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Evaluator decorator that corrupts prepared nodes per the shared
/// [`ChaosState`]. Always wrap it in a repairing
/// [`Auditing`](crate::Auditing) layer (as
/// [`Rectifier`](crate::Rectifier) does) — the corruption is *meant* to
/// be caught there; unaudited chaos corrupts results by design.
#[derive(Debug)]
pub struct Chaos {
    inner: Box<dyn Evaluator>,
    state: Arc<ChaosState>,
}

impl Chaos {
    /// Wraps `inner`, injecting per `state`.
    pub fn new(inner: Box<dyn Evaluator>, state: Arc<ChaosState>) -> Self {
        Chaos { inner, state }
    }
}

impl Evaluator for Chaos {
    fn name(&self) -> &'static str {
        match self.inner.name() {
            "from-scratch" => "chaos+from-scratch",
            "incremental" => "chaos+incremental",
            "parallel+from-scratch" => "chaos+parallel+from-scratch",
            "parallel+incremental" => "chaos+parallel+incremental",
            _ => "chaos+?",
        }
    }

    fn jobs(&self) -> usize {
        self.inner.jobs()
    }

    fn incremental(&self) -> bool {
        self.inner.incremental()
    }

    fn sparse(&self) -> bool {
        self.inner.sparse()
    }

    fn counters(&self) -> SimCounters {
        self.inner.counters()
    }

    fn prepare(
        &mut self,
        ctx: &mut EvalContext<'_>,
        corrections: &[Correction],
    ) -> Option<PreparedNode> {
        let mut node = self.inner.prepare(ctx, corrections)?;
        self.state.maybe_corrupt(&mut node);
        Some(node)
    }

    fn retain(
        &mut self,
        corrections: &[Correction],
        netlist: incdx_netlist::Netlist,
        vals: incdx_sim::PackedMatrix,
    ) -> u64 {
        self.inner.retain(corrections, netlist, vals)
    }

    fn release(&mut self, corrections: &[Correction]) {
        self.inner.release(corrections)
    }

    fn reset(&mut self) {
        self.inner.reset();
    }

    fn retained_bytes(&self) -> usize {
        self.inner.retained_bytes()
    }

    fn take_degradations(&mut self) -> Vec<crate::limits::DegradationEvent> {
        self.inner.take_degradations()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdx_netlist::ConeCache;
    use incdx_sim::PackedMatrix;

    /// A prepared node over a tiny buffer circuit with a deterministic
    /// dense value matrix.
    fn sample_node() -> PreparedNode {
        let netlist =
            incdx_netlist::parse_bench("INPUT(a)\nOUTPUT(y)\ny = BUF(a)\n").expect("valid netlist");
        let mut vals = PackedMatrix::new(2, 64);
        for r in 0..2 {
            for v in 0..64 {
                vals.set(r, v, (r + v) % 3 == 0);
            }
        }
        let cones = ConeCache::new(&netlist);
        PreparedNode {
            netlist,
            vals,
            cones,
        }
    }

    #[test]
    fn parse_accepts_and_rejects() {
        assert_eq!(
            ChaosConfig::parse("7,0.05"),
            Ok(ChaosConfig {
                seed: 7,
                rate: 0.05
            })
        );
        assert_eq!(
            ChaosConfig::parse(" 42 , 1.0 "),
            Ok(ChaosConfig {
                seed: 42,
                rate: 1.0
            })
        );
        for bad in [
            "", "7", "7;0.05", "x,0.05", "7,nope", "7,-0.1", "7,1.5", "7,NaN",
        ] {
            assert!(ChaosConfig::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn draws_are_deterministic_and_keys_fire_once() {
        let state = ChaosState::new(ChaosConfig { seed: 9, rate: 1.0 });
        assert!(state.arm(123));
        assert!(!state.arm(123), "a key fires at most once");
        let a = state.draw(77);
        let b = state.draw(77);
        assert_eq!(a.to_bits(), b.to_bits(), "stateless draws");
        assert!((0.0..1.0).contains(&a));
    }

    #[test]
    fn rate_one_panics_exactly_once_per_key() {
        let state = ChaosState::new(ChaosConfig { seed: 1, rate: 1.0 });
        let s = state.next_section();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let first = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            state.maybe_panic(s, 0);
        }));
        std::panic::set_hook(prev);
        assert!(first.is_err(), "rate 1.0 must inject");
        // Retry of the same (section, item) draws a spent key: no panic.
        state.maybe_panic(s, 0);
        assert_eq!(state.summary().panics, 1);
    }

    #[test]
    fn steal_site_injects_once_per_sequence_number() {
        let state = ChaosState::new(ChaosConfig { seed: 2, rate: 1.0 });
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let first = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            state.maybe_steal_panic(17);
        }));
        std::panic::set_hook(prev);
        assert!(first.is_err(), "rate 1.0 must inject at the steal site");
        // A re-pop of the same frontier sequence draws a spent key.
        state.maybe_steal_panic(17);
        assert_eq!(state.summary().panics, 1);
        let zero = ChaosState::new(ChaosConfig { seed: 2, rate: 0.0 });
        for seq in 0..64 {
            zero.maybe_steal_panic(seq);
        }
        assert_eq!(zero.summary().panics, 0);
    }

    #[test]
    fn rate_zero_never_injects() {
        let state = ChaosState::new(ChaosConfig { seed: 3, rate: 0.0 });
        let s = state.next_section();
        for i in 0..64 {
            state.maybe_panic(s, i);
        }
        let mut node = sample_node();
        let before = node.vals.clone();
        for _ in 0..64 {
            assert!(!state.maybe_corrupt(&mut node));
        }
        assert_eq!(node.vals.row(0), before.row(0));
        assert_eq!(state.summary().total(), 0);
    }

    #[test]
    fn mask_corruption_breaks_verify_and_repair_restores_it() {
        let state = ChaosState::new(ChaosConfig {
            seed: 11,
            rate: 1.0,
        });
        let mut bits = incdx_sim::PackedBits::new(600);
        bits.set(5, true);
        bits.set(400, true);
        let mut mask = incdx_sim::SparseMask::from_bits(&bits);
        let pristine = mask.clone();
        assert!(state.maybe_corrupt_mask(&mut mask));
        assert!(!mask.verify(), "a flipped summary bit must be detectable");
        assert!(mask.repair());
        assert_eq!(mask, pristine, "words are ground truth");
        assert_eq!(state.summary().summary_flips, 1);
        let zero = ChaosState::new(ChaosConfig {
            seed: 11,
            rate: 0.0,
        });
        assert!(!zero.maybe_corrupt_mask(&mut mask));
        assert!(mask.verify());
    }

    #[test]
    fn abstraction_corruption_is_detectable_and_counted() {
        let n = incdx_netlist::parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nt1 = AND(a, b)\nt2 = AND(t1, c)\ny = NOT(t2)\n",
        )
        .unwrap();
        let state = ChaosState::new(ChaosConfig { seed: 3, rate: 1.0 });
        let mut abs = incdx_netlist::Abstraction::build(&n);
        assert!(abs.map().validate());
        assert!(state.maybe_corrupt_abstraction(abs.map_mut()));
        assert!(!abs.map().validate(), "corruption must be detectable");
        assert_eq!(state.summary().map_corruptions, 1);
        assert!(state.summary().to_string().contains("1 map corruptions"));
        let zero = ChaosState::new(ChaosConfig { seed: 3, rate: 0.0 });
        let mut pristine = incdx_netlist::Abstraction::build(&n);
        assert!(!zero.maybe_corrupt_abstraction(pristine.map_mut()));
        assert!(pristine.map().validate());
    }

    #[test]
    fn analysis_table_corruption_is_detectable_and_counted() {
        let n = incdx_netlist::parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nt1 = AND(a, b)\ny = NOT(t1)\n",
        )
        .unwrap();
        let state = ChaosState::new(ChaosConfig { seed: 4, rate: 1.0 });
        let mut table = incdx_analysis::DominatorTable::compute(&n);
        assert!(table.validate());
        assert!(state.maybe_corrupt_analysis(&mut table));
        assert!(!table.validate(), "corruption must be detectable");
        assert_eq!(state.summary().table_corruptions, 1);
        assert!(state.summary().to_string().contains("1 table corruptions"));
        let zero = ChaosState::new(ChaosConfig { seed: 4, rate: 0.0 });
        let mut pristine = incdx_analysis::DominatorTable::compute(&n);
        assert!(!zero.maybe_corrupt_analysis(&mut pristine));
        assert!(pristine.validate());
    }

    #[test]
    fn checkpoint_tear_is_detectable_and_counted() {
        let state = ChaosState::new(ChaosConfig { seed: 6, rate: 1.0 });
        // Any single-line checkpoint document will do; use a real one so
        // the "strict prefix never parses" guarantee is exercised
        // end-to-end.
        let ckpt = crate::checkpoint::Checkpoint {
            version: crate::checkpoint::CHECKPOINT_VERSION,
            label: "chaos/test".to_string(),
            trial_seed: 1,
            vectors: 64,
            base_gates: 4,
            base_hash: 99,
            level: 0,
            phase: 0,
            iterations: 0,
            plan: vec![],
            plan_pos: 0,
            nodes: vec![],
            visited: vec![],
            solutions: vec![],
        };
        let pristine = ckpt.to_json();
        let mut line = pristine.clone();
        assert!(state.maybe_corrupt_checkpoint(&mut line));
        assert!(line.len() < pristine.len(), "the line must be torn");
        assert!(
            crate::checkpoint::Checkpoint::from_json(&line).is_err(),
            "a torn checkpoint must fail to parse: {line:?}"
        );
        assert_eq!(state.summary().checkpoint_corruptions, 1);
        assert!(state
            .summary()
            .to_string()
            .contains("1 checkpoint corruptions"));
        // The next write draws a fresh sequence key; at rate 0 nothing
        // fires and the line survives intact.
        let zero = ChaosState::new(ChaosConfig { seed: 6, rate: 0.0 });
        let mut clean = pristine.clone();
        for _ in 0..32 {
            assert!(!zero.maybe_corrupt_checkpoint(&mut clean));
        }
        assert_eq!(clean, pristine);
        assert_eq!(zero.summary().total(), 0);
    }

    #[test]
    fn corruption_is_exclusive_and_counted() {
        let state = ChaosState::new(ChaosConfig { seed: 5, rate: 1.0 });
        let mut node = sample_node();
        // Rate 1.0: the width branch wins and the flip branch is skipped.
        assert!(state.maybe_corrupt(&mut node));
        let summary = state.summary();
        assert_eq!(summary.width_errors, 1);
        assert_eq!(summary.bit_flips, 0);
        assert_eq!(node.vals.rows(), 1, "one row truncated");
        assert_eq!(summary.total(), 1);
        assert!(summary.to_string().contains("1 width errors"), "{summary}");
    }
}
