//! Bounded LRU cache of decision-tree node value matrices.
//!
//! Each open node of the rectification tree is `base circuit + a prefix of
//! corrections`; its children differ by exactly one more correction. The
//! [`NodeMatrixCache`] keeps the (netlist, value-matrix) pair of open nodes
//! keyed by their correction prefix, so evaluating a child can start from
//! the parent's matrix and resimulate only the corrected line's fanout cone
//! instead of rebuilding and resimulating the whole circuit from scratch.
//!
//! Correctness never depends on a hit: a miss falls back to from-scratch
//! simulation, and the incremental rebuild is bit-identical to it (see the
//! cache-invariants section of `ARCHITECTURE.md`). Entries are evicted
//! least-recently-used once the byte budget is exceeded, and removed
//! eagerly when their node closes (no further children possible).

use std::collections::HashMap;

use incdx_fault::Correction;
use incdx_netlist::Netlist;
use incdx_sim::PackedMatrix;

#[derive(Debug)]
struct Entry {
    netlist: Netlist,
    vals: PackedMatrix,
    bytes: usize,
    last_used: u64,
}

/// LRU map from correction prefix (in application order) to the node's
/// netlist and fully simulated value matrix.
#[derive(Debug)]
pub(crate) struct NodeMatrixCache {
    entries: HashMap<Vec<Correction>, Entry>,
    budget_bytes: usize,
    bytes: usize,
    tick: u64,
}

impl NodeMatrixCache {
    /// A cache that holds at most `budget_bytes` of matrix + netlist data.
    /// A zero budget disables caching entirely (every lookup misses).
    pub fn new(budget_bytes: usize) -> Self {
        NodeMatrixCache {
            entries: HashMap::new(),
            budget_bytes,
            bytes: 0,
            tick: 0,
        }
    }

    /// Clones out the entry for `key`, refreshing its recency.
    pub fn get_clone(&mut self, key: &[Correction]) -> Option<(Netlist, PackedMatrix)> {
        self.tick += 1;
        let e = self.entries.get_mut(key)?;
        e.last_used = self.tick;
        Some((e.netlist.clone(), e.vals.clone()))
    }

    /// Stores an entry, evicting least-recently-used entries until the
    /// budget is respected again. Returns the number of evictions.
    pub fn insert(&mut self, key: Vec<Correction>, netlist: Netlist, vals: PackedMatrix) -> u64 {
        if self.budget_bytes == 0 {
            return 0;
        }
        let bytes = entry_bytes(&netlist, &vals);
        self.tick += 1;
        let entry = Entry {
            netlist,
            vals,
            bytes,
            last_used: self.tick,
        };
        if let Some(old) = self.entries.insert(key, entry) {
            self.bytes -= old.bytes;
        }
        self.bytes += bytes;
        let mut evictions = 0;
        while self.bytes > self.budget_bytes {
            // Ticks are unique, so the LRU choice is deterministic even
            // though HashMap iteration order is not.
            let Some(lru) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            let Some(e) = self.entries.remove(&lru) else {
                break;
            };
            self.bytes -= e.bytes;
            evictions += 1;
        }
        evictions
    }

    /// Drops the entry for `key`, if present (the node closed; its matrix
    /// can never be reused again).
    pub fn remove(&mut self, key: &[Correction]) {
        if let Some(e) = self.entries.remove(key) {
            self.bytes -= e.bytes;
        }
    }

    /// Bytes currently held (feeds the engine's retained-memory budget).
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Number of entries currently held.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.entries.len()
    }
}

/// Approximate heap footprint of an entry: the matrix words dominate; the
/// netlist is charged a flat per-gate estimate.
fn entry_bytes(netlist: &Netlist, vals: &PackedMatrix) -> usize {
    vals.rows() * vals.words_per_row() * 8 + netlist.len() * 64
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdx_fault::CorrectionAction;
    use incdx_netlist::{parse_bench, GateId};

    fn key(n: u32) -> Vec<Correction> {
        (0..n)
            .map(|i| {
                Correction::new(
                    GateId::from_index(i as usize),
                    CorrectionAction::SetConst(false),
                )
            })
            .collect()
    }

    #[test]
    fn lru_evicts_oldest_first() {
        let n = parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n").unwrap();
        let m = PackedMatrix::new(n.len(), 128);
        let per_entry = super::entry_bytes(&n, &m);
        // Budget for exactly two entries.
        let mut cache = NodeMatrixCache::new(2 * per_entry);
        assert_eq!(cache.insert(key(1), n.clone(), m.clone()), 0);
        assert_eq!(cache.insert(key(2), n.clone(), m.clone()), 0);
        // Touch key(1) so key(2) becomes the LRU.
        assert!(cache.get_clone(&key(1)).is_some());
        assert_eq!(cache.insert(key(3), n.clone(), m.clone()), 1);
        assert!(cache.get_clone(&key(2)).is_none(), "LRU entry evicted");
        assert!(cache.get_clone(&key(1)).is_some());
        assert!(cache.get_clone(&key(3)).is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn remove_releases_budget() {
        let n = parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n").unwrap();
        let m = PackedMatrix::new(n.len(), 64);
        let mut cache = NodeMatrixCache::new(usize::MAX);
        cache.insert(key(1), n.clone(), m.clone());
        assert!(cache.bytes() > 0);
        cache.remove(&key(1));
        assert_eq!(cache.bytes(), 0);
        assert!(cache.get_clone(&key(1)).is_none());
    }

    #[test]
    fn zero_budget_disables_caching() {
        let n = parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n").unwrap();
        let m = PackedMatrix::new(n.len(), 64);
        let mut cache = NodeMatrixCache::new(0);
        assert_eq!(cache.insert(key(1), n, m), 0);
        assert!(cache.get_clone(&key(1)).is_none());
    }
}
