//! The candidate pipeline: path-trace → rank (heuristic 1) → screen
//! (heuristics 2 + 3) → accept (sort + per-node cap).
//!
//! One [`CandidatePipeline`] runs per still-failing decision-tree node
//! and is shared by *every* traversal strategy and evaluation backend —
//! the stage logic that used to be duplicated across the serial,
//! parallel and incremental branches of the old monolithic session now
//! lives here exactly once. The pipeline is policy-free: it neither
//! schedules nodes nor prepares matrices; it turns one prepared node
//! into its ranked, screened candidate list (empty = a dead leaf,
//! §3.3's "leaf with failure").
//!
//! The candidate list is a **pure function** of (netlist, value
//! matrix, reference response, applied corrections, ladder level,
//! config) — no hidden scheduling state leaks into the results. The
//! speculative dispatcher (`dispatch.rs`) relies on this contract: a
//! worker's pipeline output for a tuple is bit-identical to what the
//! master would compute inline, which is what lets speculation
//! substitute for inline evaluation without perturbing the search.

use std::sync::Arc;
use std::time::Instant;

use incdx_fault::{enumerate_corrections, Correction, CorrectionAction, CorrectionModel};
use incdx_netlist::{ConeCache, ConeSet, GateId, GateKind, Netlist};
use incdx_sim::{xor_masked_count_ones, PackedBits, PackedMatrix, Response, Simulator, SparseMask};

use crate::chaos::ChaosState;
use crate::limits::{CancelToken, DegradationEvent, DegradationKind};
use crate::parallel::run_parallel_with;
use crate::params::ParamLevel;
use crate::path_trace::{path_trace_counts, path_trace_counts_batched};
use crate::screen::{correction_output_row_into, CorrectionScratch};
use crate::session::{RectifyConfig, RectifyStats};
use crate::tree::RankedCorrection;

/// The per-node diagnosis + correction stages, configured once per run.
#[derive(Debug)]
pub struct CandidatePipeline<'a> {
    config: &'a RectifyConfig,
    spec: &'a Response,
    jobs: usize,
    incremental: bool,
    sparse: bool,
    cancel: CancelToken,
    chaos: Option<Arc<ChaosState>>,
    analysis: Option<&'a incdx_analysis::AnalysisTables>,
}

impl<'a> CandidatePipeline<'a> {
    /// A pipeline over this run's configuration and reference response.
    /// `jobs` and `incremental` come from the evaluation backend (they
    /// select the parallel fan-out and the column-restricted
    /// save/restore strategy, not the results). The sparse kernel
    /// ([`RectifyConfig::sparse`]) restricts screening popcounts to
    /// occupied blocks of the failing-vector mask.
    pub fn new(
        config: &'a RectifyConfig,
        spec: &'a Response,
        jobs: usize,
        incremental: bool,
    ) -> Self {
        CandidatePipeline {
            config,
            spec,
            jobs,
            incremental,
            sparse: config.sparse,
            cancel: CancelToken::new(),
            chaos: None,
            analysis: None,
        }
    }

    /// Arms cooperative cancellation: once the token is cancelled, the
    /// stage workers drop out immediately (their partial output is
    /// discarded by the engine at its next limit check, never
    /// checkpointed as complete). Workers use the non-counting
    /// [`CancelToken::is_cancelled`], so the engine's deterministic
    /// poll count is unaffected.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Arms deterministic chaos fault injection in the stage workers
    /// (seeded one-shot panics; see [`ChaosState::maybe_panic`]). The
    /// panic-isolation boundary in
    /// [`run_parallel_with`](crate::parallel::run_parallel_with)
    /// recovers each one by a serial retry, so results are unchanged.
    pub fn with_chaos(mut self, chaos: Option<Arc<ChaosState>>) -> Self {
        self.chaos = chaos;
        self
    }

    /// Lends the run-level static-analysis tables
    /// ([`incdx_analysis::AnalysisTables`], computed once over the base
    /// netlist when [`RectifyConfig::prune`] is armed). The pipeline
    /// consults them only at the search root, where the node netlist is
    /// the base netlist; deeper nodes carry applied corrections and
    /// recompute the (cheap) constant and reachability facts locally.
    pub fn with_analysis(mut self, analysis: Option<&'a incdx_analysis::AnalysisTables>) -> Self {
        self.analysis = analysis;
        self
    }

    /// Runs all four stages on one prepared, still-failing node and
    /// returns its ranked candidate list (best rank first, capped at
    /// [`RectifyConfig::max_candidates_per_node`]). Empty means the
    /// node is a dead leaf at this parameter level.
    #[allow(clippy::too_many_arguments)]
    pub fn run(
        &self,
        netlist: &Netlist,
        vals: &PackedMatrix,
        response: &Response,
        corrections: &[Correction],
        level: &ParamLevel,
        cones: &mut ConeCache,
        stats: &mut RectifyStats,
    ) -> Vec<RankedCorrection> {
        // ---- Diagnosis (§3.1) ----
        let t1 = Instant::now();
        // Multi-observation batching shares the reverse-topological
        // marking pass across the whole sampled observation set; the
        // per-line counts are bit-identical to the per-vector walks.
        let counts = if self.config.batch_obs {
            let (counts, observations) = path_trace_counts_batched(
                netlist,
                vals,
                response,
                self.spec,
                self.config.path_trace_vector_cap,
            );
            stats.path_trace_batches += 1;
            stats.observations_batched += observations as u64;
            counts
        } else {
            path_trace_counts(
                netlist,
                vals,
                response,
                self.spec,
                self.config.path_trace_vector_cap,
            )
        };
        let mut marked: Vec<GateId> = netlist.ids().filter(|id| counts[id.index()] > 0).collect();
        // Hierarchical phase 2 (or an explicit harness focus) restricts
        // diagnosis to the implicated region: marks outside the sorted
        // suspect set are discarded before ranking, so the tree never
        // proposes corrections on unfocused lines.
        if let Some(focus) = &self.config.focus {
            marked.retain(|id| focus.binary_search(id).is_ok());
        }
        let remaining = (self.config.max_corrections - corrections.len()).max(1);
        // Static pruning (when armed): drop marked lines the dataflow
        // facts prove can never repair every failing PO. Sound by
        // construction — see `prune_marked` for the argument.
        if self.config.prune && !marked.is_empty() {
            self.prune_marked(
                netlist,
                response,
                corrections,
                remaining,
                &mut marked,
                cones,
                stats,
            );
        }
        marked.sort_by_key(|id| std::cmp::Reverse(counts[id.index()]));
        let fraction = self.config.path_trace_fraction.max(level.promote);
        let mut take = ((marked.len() as f64 * fraction).ceil() as usize)
            .max(8)
            .min(marked.len());
        // Never cut inside a tie class: lines with equal path-trace counts
        // are indistinguishable to this heuristic, and the dropped half
        // could contain the only marked member of a valid tuple.
        while take < marked.len()
            && counts[marked[take].index()] == counts[marked[take - 1].index()]
        {
            take += 1;
        }
        if take > self.config.max_candidate_lines {
            stats.lines_truncated += take - self.config.max_candidate_lines;
            take = self.config.max_candidate_lines;
        }
        let promoted = &marked[..take];
        stats.path_trace_time += t1.elapsed();
        // When the level disables the h1 filter (exhaustive stuck-at
        // mode), skip the flip-and-propagate pass and order lines by
        // path-trace count alone.
        let t_rank = Instant::now();
        let scored_lines: Vec<(GateId, f64)> = if level.h1 <= 0.0 {
            let max_count = promoted
                .first()
                .map(|l| counts[l.index()] as f64)
                .unwrap_or(1.0)
                .max(1.0);
            promoted
                .iter()
                .map(|&l| (l, counts[l.index()] as f64 / max_count))
                .collect()
        } else {
            self.rank_lines(netlist, vals, response, promoted, cones, stats)
        };
        stats.rank_time += t_rank.elapsed();
        stats.diagnosis_time += t1.elapsed();

        // ---- Correction (§3.2) at the run's current parameter level ----
        let t2 = Instant::now();
        let n_err = response.num_failing();
        let nv = vals.num_vectors();
        let n_corr = nv - n_err;
        let h2_threshold = if self.config.theorem_floor {
            level.h2.min(1.0 / remaining as f64)
        } else {
            level.h2
        };
        // The sparse failing-vector mask is built once per node and
        // shared read-only by every screening worker. The summary is a
        // derived structure, so it is verified before use; a chaos-armed
        // run may corrupt it here ([`ChaosState::maybe_corrupt_mask`]),
        // and the verify/repair pair below catches exactly that —
        // recorded as a [`DegradationKind::SparseRepair`] recovery.
        let mask = if self.sparse {
            let mut m = SparseMask::from_bits(response.failing_vectors());
            if let Some(chaos) = &self.chaos {
                chaos.maybe_corrupt_mask(&mut m);
            }
            if !m.verify() {
                m.repair();
                stats.degradations.push(DegradationEvent::new(
                    DegradationKind::SparseRepair,
                    1,
                    "failing-vector block summary diverged from its words; rebuilt",
                ));
            }
            Some(m)
        } else {
            None
        };
        let mut ranked = self.screen(
            netlist,
            vals,
            response,
            &scored_lines,
            mask.as_ref(),
            level,
            h2_threshold,
            n_err,
            n_corr,
            cones,
            stats,
        );
        if !ranked.is_empty() {
            ranked.sort_by(|a, b| b.rank.total_cmp(&a.rank));
            if ranked.len() > self.config.max_candidates_per_node {
                stats.candidates_truncated += ranked.len() - self.config.max_candidates_per_node;
                ranked.truncate(self.config.max_candidates_per_node);
            }
        }
        stats.correction_time += t2.elapsed();
        ranked
    }

    /// Static candidate pruning over the marked-line set.
    ///
    /// Two rules, both sound:
    ///
    /// **Rule 1 (reachability, every mode).** A correction at `l` only
    /// changes functions inside `l`'s fanout cone, so if no failing PO
    /// is structurally reachable from `l`, no correction there can fix
    /// any mismatch. Path-trace already walks backward from failing
    /// POs, so every marked line reaches a failing PO by construction —
    /// this rule is a verified no-op that cross-checks the two
    /// traversals against each other. Because it never fires, the
    /// pruned and unpruned pipelines are bit-identical in every mode.
    ///
    /// **Rule 2 (observability covering, exhaustive last slot only).**
    /// With one correction slot left, a candidate at `l` must repair
    /// *every* failing PO by itself. Re-propagating ternary constants
    /// with `l` forced unknown ([`incdx_analysis::observable_changes`])
    /// yields the set of POs any change at `l` could possibly affect;
    /// a failing PO outside that set keeps its mismatch in every child,
    /// and a max-depth child that still fails is dead. Dropping `l`
    /// therefore removes no solutions — but it *does* shift pop-order
    /// interleaving, which in first-solution (DEDC) mode could change
    /// which of several valid solutions is reported first. Exhaustive
    /// mode collects the full minimal set, so the set is order-blind;
    /// the rule is gated on it.
    #[allow(clippy::too_many_arguments)]
    fn prune_marked(
        &self,
        netlist: &Netlist,
        response: &Response,
        corrections: &[Correction],
        remaining: usize,
        marked: &mut Vec<GateId>,
        cones: &mut ConeCache,
        stats: &mut RectifyStats,
    ) {
        use incdx_analysis::{observable_changes, Constants, PoReach, PoSet};
        let t = Instant::now();
        // The failing-PO position set F: POs whose captured row differs
        // from the specification row anywhere under the tail mask.
        let got = response.po_values();
        let want = self.spec.po_values();
        let wpr = got.words_per_row();
        let tail = PackedBits::new(got.num_vectors()).tail_mask();
        let mut failing = PoSet::empty(netlist.outputs().len());
        for po_idx in 0..netlist.outputs().len() {
            let differs = got
                .row(po_idx)
                .iter()
                .zip(want.row(po_idx))
                .enumerate()
                .any(|(w, (a, b))| {
                    let mut d = a ^ b;
                    if w + 1 == wpr {
                        d &= tail;
                    }
                    d != 0
                });
            if differs {
                failing.insert(po_idx);
            }
        }
        if failing.is_empty() {
            stats.prune_time += t.elapsed();
            return;
        }
        // Root nodes (no applied corrections) see the base netlist, so
        // the run-level tables apply verbatim; deeper nodes carry
        // rewrites and recompute the facts on their own netlist. Both
        // paths are pure functions of the node netlist, preserving the
        // pipeline's purity contract for the speculative dispatcher.
        let local: (Constants, PoReach);
        let (consts, reach) = match self.analysis {
            Some(tables) if corrections.is_empty() => (&tables.constants, &tables.reach),
            _ => {
                local = (Constants::compute(netlist), PoReach::compute(netlist));
                (&local.0, &local.1)
            }
        };
        // Rule 1: retain lines reaching at least one failing PO.
        stats.prune_checks += marked.len() as u64;
        let before = marked.len();
        marked.retain(|&l| reach.reach(l).intersects(&failing));
        // Rule 2: with one slot left in exhaustive mode, the candidate
        // must cover F outright. The cheap covering precheck
        // (F ⊆ reach(l)) short-circuits the cone re-propagation, which
        // is only consulted when structure alone cannot rule `l` out.
        if self.config.exhaustive && remaining == 1 {
            stats.prune_checks += marked.len() as u64;
            marked.retain(|&l| {
                if !reach.reach(l).contains_all(&failing) {
                    return false;
                }
                let cone = cones.get(netlist, l);
                observable_changes(netlist, consts, l, cone.sorted()).contains_all(&failing)
            });
        }
        stats.static_pruned += (before - marked.len()) as u64;
        stats.prune_time += t.elapsed();
    }

    /// Heuristic 1: flip each promoted line on the failing vectors,
    /// propagate through its fanout cone, and score by the fraction of
    /// erroneous PO bits rectified.
    ///
    /// Lines are scored in parallel; each worker owns a simulator and a
    /// private copy of the value matrix (every task restores the cone
    /// rows it perturbs, so the copy stays equal to `vals` between
    /// tasks). Scores merge in input order and the final sort is
    /// stable, so the ranking is bit-identical to the serial one.
    fn rank_lines(
        &self,
        netlist: &Netlist,
        vals: &PackedMatrix,
        response: &Response,
        lines: &[GateId],
        cones: &mut ConeCache,
        stats: &mut RectifyStats,
    ) -> Vec<(GateId, f64)> {
        let err_words: Vec<u64> = response.failing_vectors().words().to_vec();
        // Planting XORs the error mask into the stem row, so only word
        // columns with a failing vector can ever change anywhere in the
        // cone — propagation, save, and restore all restrict to them.
        let err_cols: Vec<u32> = err_words
            .iter()
            .enumerate()
            .filter(|&(_, &m)| m != 0)
            .map(|(w, _)| w as u32)
            .collect();
        let total_bad = response.mismatch_bits().max(1);
        let wpr = vals.words_per_row();
        let nv = vals.num_vectors();
        let spec = self.spec;
        let incremental = self.incremental;
        // A PO's erroneous bits are a subset of the global error mask, so
        // in sparse mode the rectified count only needs the nonzero error
        // columns (bit-identical: `was_bad` is zero everywhere else).
        let rect_cols: Vec<u32> = if self.sparse {
            err_cols.clone()
        } else {
            (0..wpr as u32).collect()
        };
        // Memoize every line's cone up front (serially), then share the
        // `Arc`s read-only across workers.
        let cone_refs: Vec<Arc<ConeSet>> = lines.iter().map(|&l| cones.get(netlist, l)).collect();
        let cancel = &self.cancel;
        let chaos = self
            .chaos
            .as_ref()
            .map(|c| (Arc::clone(c), c.next_section()));
        let outcome = run_parallel_with(
            lines.len(),
            self.jobs,
            || (Simulator::new(), vals.clone(), Vec::<u64>::new()),
            |(sim, vals, saved), i| {
                if cancel.is_cancelled() {
                    return (0, 0, 0, 0);
                }
                if let Some((chaos, section)) = &chaos {
                    chaos.maybe_panic(*section, i);
                }
                let line = lines[i];
                let words_before = sim.words_simulated();
                let events_before = sim.events_propagated();
                let skipped_before = sim.words_skipped();
                let cone = &cone_refs[i];
                saved.clear();
                if incremental {
                    for &g in cone.sorted() {
                        let row = vals.row(g.index());
                        for &w in &err_cols {
                            saved.push(row[w as usize]);
                        }
                    }
                } else {
                    for &g in cone.sorted() {
                        saved.extend_from_slice(vals.row(g.index()));
                    }
                }
                {
                    let row = vals.row_mut(line.index());
                    for (w, &m) in row.iter_mut().zip(&err_words) {
                        *w ^= m;
                    }
                }
                if incremental {
                    sim.run_cone_events_cols(netlist, vals, cone.sorted(), &err_cols);
                } else {
                    sim.run_cone(netlist, vals, cone.sorted());
                }
                // Count rectified erroneous (vector, PO) bits.
                let mut rectified = 0usize;
                for (po_idx, &po) in netlist.outputs().iter().enumerate() {
                    if !cone.contains(po) {
                        continue;
                    }
                    let after = vals.row(po.index());
                    let spec_row = spec.po_values().row(po_idx);
                    let before = response.po_values().row(po_idx);
                    for &w in &rect_cols {
                        let w = w as usize;
                        let was_bad = before[w] ^ spec_row[w];
                        let now_bad = after[w] ^ spec_row[w];
                        let mut fixed = was_bad & !now_bad;
                        if w == wpr - 1 {
                            fixed &= PackedBits::new(nv).tail_mask();
                        }
                        rectified += fixed.count_ones() as usize;
                    }
                }
                if incremental {
                    let nc = err_cols.len();
                    for (k, &g) in cone.sorted().iter().enumerate() {
                        let row = vals.row_mut(g.index());
                        for (j, &w) in err_cols.iter().enumerate() {
                            row[w as usize] = saved[k * nc + j];
                        }
                    }
                } else {
                    for (k, &g) in cone.sorted().iter().enumerate() {
                        vals.row_mut(g.index())
                            .copy_from_slice(&saved[k * wpr..(k + 1) * wpr]);
                    }
                }
                (
                    rectified,
                    sim.words_simulated() - words_before,
                    sim.events_propagated() - events_before,
                    sim.words_skipped() - skipped_before,
                )
            },
        );
        let mut scored = Vec::with_capacity(lines.len());
        for (i, (rectified, words, events, skipped)) in outcome.results.into_iter().enumerate() {
            stats.words_simulated += words;
            stats.events_propagated += events;
            stats.words_skipped += skipped;
            scored.push((lines[i], rectified as f64 / total_bad as f64));
        }
        stats.parallel.merge(&outcome.telemetry);
        scored.sort_by(|a, b| b.1.total_cmp(&a.1));
        scored
    }

    /// The screening stage: enumerate corrections per qualified line,
    /// filter with heuristics 2 and 3, and rank the survivors.
    ///
    /// Suspect lines fan out across workers, one task per line covering
    /// both screening phases. Workers carry a private simulator plus a
    /// private copy of the value matrix (phase B restores every cone
    /// row it perturbs, so the copy stays equal to `vals` between
    /// tasks); survivors merge in line order, preserving the serial
    /// candidate sequence bit for bit.
    #[allow(clippy::too_many_arguments)]
    fn screen(
        &self,
        netlist: &Netlist,
        vals: &PackedMatrix,
        response: &Response,
        scored_lines: &[(GateId, f64)],
        mask: Option<&SparseMask>,
        level: &ParamLevel,
        h2_threshold: f64,
        n_err: usize,
        n_corr: usize,
        cones: &mut ConeCache,
        stats: &mut RectifyStats,
    ) -> Vec<RankedCorrection> {
        let t_screen = Instant::now();
        let nv = vals.num_vectors();
        let wpr = vals.words_per_row();
        let tail = PackedBits::new(nv).tail_mask();
        let err_words: Vec<u64> = response.failing_vectors().words().to_vec();
        let v_ratio = n_err as f64 / nv as f64;
        // Heuristic-2 popcounts only read words under the error mask, so
        // in sparse mode the wire loops walk just the occupied block
        // ranges — every skipped word contributes zero either way (the
        // sparse ≡ dense contract; see ARCHITECTURE.md). A mask with
        // nothing to skip falls back to the dense single range.
        let dense_range = [(0usize, wpr)];
        if matches!(mask, Some(m) if m.is_dense()) {
            stats.dense_fallbacks += 1;
        }
        // From here on `mask` is `Some` only when it actually skips work.
        let mask = mask.filter(|m| !m.is_dense());
        let sparse_ranges: Vec<(usize, usize)> =
            mask.map_or_else(Vec::new, |m| m.occupied_ranges());
        let (ranges, skip_per_op): (&[(usize, usize)], u64) = match mask {
            Some(m) => (&sparse_ranges, m.summary().skipped_blocks() as u64),
            None => (&dense_range, 0),
        };
        // Old per-PO diff rows (for the after-failing-mask of POs outside
        // a candidate's cone).
        let old_diff: Vec<Vec<u64>> = netlist
            .outputs()
            .iter()
            .enumerate()
            .map(|(po_idx, _)| {
                let got = response.po_values().row(po_idx);
                let want = self.spec.po_values().row(po_idx);
                got.iter().zip(want).map(|(a, b)| a ^ b).collect()
            })
            .collect();
        // scored_lines is sorted descending, so the h1 threshold keeps a
        // prefix; everything after it is rejected wholesale.
        let keep = scored_lines
            .iter()
            .take_while(|&&(_, s)| s + 1e-12 >= level.h1)
            .count();
        stats.lines_rejected_h1 += scored_lines.len() - keep;
        let active = &scored_lines[..keep];
        let spec = self.spec;
        let config = self.config;
        let incremental = self.incremental;
        // Memoize the active lines' cones up front (serially) and share the
        // `Arc`s read-only across workers — both screening phases and the
        // wire-source eligibility test walk the same cones.
        let cone_refs: Vec<Arc<ConeSet>> =
            active.iter().map(|&(l, _)| cones.get(netlist, l)).collect();
        let cancel = &self.cancel;
        let chaos = self
            .chaos
            .as_ref()
            .map(|c| (Arc::clone(c), c.next_section()));
        let outcome = run_parallel_with(
            active.len(),
            self.jobs,
            || {
                (
                    Simulator::new(),
                    vals.clone(),
                    Vec::<u64>::new(),
                    CorrectionScratch::default(),
                    Vec::<u32>::new(),
                )
            },
            |(sim, vals, saved, scratch, cols), li| {
                if cancel.is_cancelled() {
                    return (Vec::new(), ScreenDelta::default());
                }
                if let Some((chaos, section)) = &chaos {
                    chaos.maybe_panic(*section, li);
                }
                let (line, _) = active[li];
                let cone = &cone_refs[li];
                let mut delta = ScreenDelta::default();
                let mut sparse_ops = 0u64;
                let words_before = sim.words_simulated();
                let events_before = sim.events_propagated();
                let skipped_before = sim.words_skipped();
                // ---- Phase A: heuristic 2 on every candidate (cheap,
                // local, allocation-free for the wire corrections that
                // dominate). ----
                let mut pass: Vec<(Correction, f64)> = Vec::new();
                let cur = vals.row(line.index()).to_vec();
                let qualifies = |complemented: usize| -> bool {
                    complemented as f64 / n_err.max(1) as f64 + 1e-12 >= h2_threshold
                };
                // Non-wire candidates through the generic evaluator
                // (borrowed rows into the worker's scratch; the fused
                // masked popcount avoids a diff temporary — err_words is
                // already tail-masked).
                for corr in enumerate_corrections(netlist, line, config.model, &[]) {
                    delta.screened += 1;
                    let Ok(Some(new_row)) =
                        correction_output_row_into(netlist, vals, &corr, scratch)
                    else {
                        continue;
                    };
                    let complemented = match mask {
                        Some(m) => {
                            sparse_ops += 1;
                            m.xor_count_ones(new_row, &cur)
                        }
                        None => xor_masked_count_ones(new_row, &cur, &err_words),
                    };
                    if qualifies(complemented) {
                        pass.push((corr, complemented as f64 / n_err.max(1) as f64));
                    }
                }
                // Wire candidates: exhaustive over every cycle-safe source,
                // fused evaluation per gate family.
                if config.model == CorrectionModel::DesignErrors {
                    if let Some((family, identity, invert)) = wire_family(netlist.gate(line).kind())
                    {
                        let gate = netlist.gate(line);
                        let kind = gate.kind();
                        let fanins = gate.fanins().to_vec();
                        // Words outside the occupied ranges keep the fold
                        // identity — safe, because `combine` results are
                        // only read under the error mask, which is zero
                        // there.
                        let fold = |skip: Option<usize>| -> Vec<u64> {
                            let mut acc = vec![identity; wpr];
                            for (p, &f) in fanins.iter().enumerate() {
                                if Some(p) == skip {
                                    continue;
                                }
                                let row = vals.row(f.index());
                                for &(lo, hi) in ranges {
                                    for (a, &r) in acc[lo..hi].iter_mut().zip(&row[lo..hi]) {
                                        match family {
                                            Family::And => *a &= r,
                                            Family::Or => *a |= r,
                                            Family::Xor => *a ^= r,
                                        }
                                    }
                                }
                            }
                            acc
                        };
                        let core = fold(None);
                        let base_wo: Vec<Vec<u64>> =
                            (0..fanins.len()).map(|p| fold(Some(p))).collect();
                        let combine = |base: &[u64], src: &[u64], w: usize| -> u64 {
                            let v = match family {
                                Family::And => base[w] & src[w],
                                Family::Or => base[w] | src[w],
                                Family::Xor => base[w] ^ src[w],
                            };
                            if invert {
                                !v
                            } else {
                                v
                            }
                        };
                        let can_add = matches!(
                            kind,
                            GateKind::And
                                | GateKind::Nand
                                | GateKind::Or
                                | GateKind::Nor
                                | GateKind::Xor
                                | GateKind::Xnor
                        );
                        // Eligible sources, optionally stride-sampled.
                        let mut eligible: Vec<GateId> = netlist
                            .ids()
                            .filter(|&s| {
                                s != line
                                    && !cone.contains(s)
                                    && !matches!(
                                        netlist.gate(s).kind(),
                                        GateKind::Const0 | GateKind::Const1 | GateKind::Dff
                                    )
                            })
                            .collect();
                        if config.wire_source_limit > 0 && eligible.len() > config.wire_source_limit
                        {
                            delta.wire_sources_truncated +=
                                eligible.len() - config.wire_source_limit;
                            let stride = eligible.len().div_ceil(config.wire_source_limit);
                            eligible = eligible.into_iter().step_by(stride).collect();
                        }
                        for src in eligible {
                            let srow = vals.row(src.index());
                            // AddInput.
                            if can_add && !fanins.contains(&src) {
                                delta.screened += 1;
                                sparse_ops += 1;
                                let mut complemented = 0usize;
                                for &(lo, hi) in ranges {
                                    for w in lo..hi {
                                        let diff =
                                            (combine(&core, srow, w) ^ cur[w]) & err_words[w];
                                        complemented += diff.count_ones() as usize;
                                    }
                                }
                                if qualifies(complemented) {
                                    pass.push((
                                        Correction::new(
                                            line,
                                            CorrectionAction::AddInput { source: src },
                                        ),
                                        complemented as f64 / n_err.max(1) as f64,
                                    ));
                                }
                            }
                            // ReplaceInput on every port.
                            for (p, &old) in fanins.iter().enumerate() {
                                if old == src {
                                    continue;
                                }
                                delta.screened += 1;
                                sparse_ops += 1;
                                let mut complemented = 0usize;
                                for &(lo, hi) in ranges {
                                    for w in lo..hi {
                                        let diff =
                                            (combine(&base_wo[p], srow, w) ^ cur[w]) & err_words[w];
                                        complemented += diff.count_ones() as usize;
                                    }
                                }
                                if qualifies(complemented) {
                                    pass.push((
                                        Correction::new(
                                            line,
                                            CorrectionAction::ReplaceInput {
                                                port: p,
                                                source: src,
                                            },
                                        ),
                                        complemented as f64 / n_err.max(1) as f64,
                                    ));
                                }
                            }
                            // InsertGate over the basic 2-input kinds (restores a
                            // dropped "simple gate" in one correction). The
                            // inverting kinds complement almost every V_err bit and
                            // so pass heuristic 2 for free, flooding the expensive
                            // heuristic-3 stage; they only join once the ladder has
                            // relaxed h3 — the point where such repairs become
                            // admissible at all.
                            let insert_kinds: &[GateKind] = if level.h3 <= 0.85 {
                                &[GateKind::And, GateKind::Or, GateKind::Nand, GateKind::Nor]
                            } else {
                                &[GateKind::And, GateKind::Or]
                            };
                            for &k2 in insert_kinds {
                                delta.screened += 1;
                                sparse_ops += 1;
                                let mut complemented = 0usize;
                                for &(lo, hi) in ranges {
                                    for w in lo..hi {
                                        let v = match k2 {
                                            GateKind::And => cur[w] & srow[w],
                                            GateKind::Or => cur[w] | srow[w],
                                            GateKind::Nand => !(cur[w] & srow[w]),
                                            _ => !(cur[w] | srow[w]),
                                        };
                                        let diff = (v ^ cur[w]) & err_words[w];
                                        complemented += diff.count_ones() as usize;
                                    }
                                }
                                if qualifies(complemented) {
                                    pass.push((
                                        Correction::new(
                                            line,
                                            CorrectionAction::InsertGate {
                                                kind: k2,
                                                other: src,
                                            },
                                        ),
                                        complemented as f64 / n_err.max(1) as f64,
                                    ));
                                }
                            }
                        }
                    }
                }
                delta.rejected_h2 = delta.screened - pass.len();
                // ---- Phase B: heuristic 3 (cone propagation) on
                // survivors. ----
                let mut line_ranked: Vec<RankedCorrection> = Vec::new();
                for (corr, h2_fraction) in pass {
                    // The raw (unmasked-tail) output row is exactly what a
                    // full resimulation of the corrected circuit would
                    // store for the line, so it can be planted verbatim.
                    let Ok(Some(new_row)) =
                        correction_output_row_into(netlist, vals, &corr, scratch)
                    else {
                        delta.rejected_h3 += 1;
                        continue;
                    };
                    saved.clear();
                    if incremental {
                        // Planting replaces the stem row wholesale, but
                        // only the word columns where it actually differs
                        // from the current row can change anywhere in the
                        // cone — propagate, save, and restore just those.
                        cols.clear();
                        for (w, (&n, &c)) in new_row.iter().zip(&cur).enumerate() {
                            if n != c {
                                cols.push(w as u32);
                            }
                        }
                        for &g in cone.sorted() {
                            let row = vals.row(g.index());
                            for &w in cols.iter() {
                                saved.push(row[w as usize]);
                            }
                        }
                    } else {
                        for &g in cone.sorted() {
                            saved.extend_from_slice(vals.row(g.index()));
                        }
                    }
                    vals.row_mut(line.index()).copy_from_slice(new_row);
                    if incremental {
                        sim.run_cone_events_cols(netlist, vals, cone.sorted(), cols);
                    } else {
                        sim.run_cone(netlist, vals, cone.sorted());
                    }
                    let mut after_fail = vec![0u64; wpr];
                    for (po_idx, &po) in netlist.outputs().iter().enumerate() {
                        if cone.contains(po) {
                            let got = vals.row(po.index());
                            let want = spec.po_values().row(po_idx);
                            for w in 0..wpr {
                                after_fail[w] |= got[w] ^ want[w];
                            }
                        } else {
                            for w in 0..wpr {
                                after_fail[w] |= old_diff[po_idx][w];
                            }
                        }
                    }
                    let mut newly_err = 0usize;
                    let mut fixed = 0usize;
                    for w in 0..wpr {
                        let mut ne = after_fail[w] & !err_words[w];
                        let mut fx = err_words[w] & !after_fail[w];
                        if w == wpr - 1 {
                            ne &= tail;
                            fx &= tail;
                        }
                        newly_err += ne.count_ones() as usize;
                        fixed += fx.count_ones() as usize;
                    }
                    if incremental {
                        let nc = cols.len();
                        for (k, &g) in cone.sorted().iter().enumerate() {
                            let row = vals.row_mut(g.index());
                            for (j, &w) in cols.iter().enumerate() {
                                row[w as usize] = saved[k * nc + j];
                            }
                        }
                    } else {
                        for (k, &g) in cone.sorted().iter().enumerate() {
                            vals.row_mut(g.index())
                                .copy_from_slice(&saved[k * wpr..(k + 1) * wpr]);
                        }
                    }
                    let h3_score = 1.0 - newly_err as f64 / n_corr.max(1) as f64;
                    if h3_score + 1e-12 < level.h3 {
                        delta.rejected_h3 += 1;
                        continue;
                    }
                    delta.qualified += 1;
                    let corr_h1 = fixed as f64 / n_err.max(1) as f64;
                    line_ranked.push(RankedCorrection {
                        correction: corr,
                        rank: (1.0 - v_ratio) * h3_score + v_ratio * corr_h1,
                        h1_score: corr_h1,
                        h2_fraction,
                        h3_score,
                    });
                }
                delta.words = sim.words_simulated() - words_before;
                delta.events = sim.events_propagated() - events_before;
                delta.skipped = sim.words_skipped() - skipped_before;
                if mask.is_some() {
                    delta.sparse_rows = sparse_ops;
                    delta.blocks_skipped = sparse_ops * skip_per_op;
                }
                (line_ranked, delta)
            },
        );
        let mut ranked = Vec::new();
        for (line_ranked, delta) in outcome.results {
            ranked.extend(line_ranked);
            stats.corrections_screened += delta.screened;
            stats.corrections_qualified += delta.qualified;
            stats.corrections_rejected_h2 += delta.rejected_h2;
            stats.corrections_rejected_h3 += delta.rejected_h3;
            stats.wire_sources_truncated += delta.wire_sources_truncated;
            stats.words_simulated += delta.words;
            stats.events_propagated += delta.events;
            stats.words_skipped += delta.skipped;
            stats.blocks_skipped += delta.blocks_skipped;
            stats.sparse_rows += delta.sparse_rows;
        }
        stats.parallel.merge(&outcome.telemetry);
        stats.screen_time += t_screen.elapsed();
        ranked
    }
}

/// Folded-evaluation family of a logic gate: its core word operation,
/// the fold identity, and whether the result is complemented.
enum Family {
    And,
    Or,
    Xor,
}

/// `None` for non-logic kinds (inputs, constants, state) — those lines
/// take no wire corrections.
fn wire_family(kind: GateKind) -> Option<(Family, u64, bool)> {
    match kind {
        GateKind::And => Some((Family::And, !0u64, false)),
        GateKind::Nand => Some((Family::And, !0u64, true)),
        GateKind::Buf => Some((Family::And, !0u64, false)),
        GateKind::Not => Some((Family::And, !0u64, true)),
        GateKind::Or => Some((Family::Or, 0u64, false)),
        GateKind::Nor => Some((Family::Or, 0u64, true)),
        GateKind::Xor => Some((Family::Xor, 0u64, false)),
        GateKind::Xnor => Some((Family::Xor, 0u64, true)),
        _ => None,
    }
}

/// Per-line stat deltas produced inside a screening task and merged, in
/// line order, into the run's [`RectifyStats`].
#[derive(Default)]
struct ScreenDelta {
    screened: usize,
    qualified: usize,
    rejected_h2: usize,
    rejected_h3: usize,
    wire_sources_truncated: usize,
    words: u64,
    events: u64,
    skipped: u64,
    blocks_skipped: u64,
    sparse_rows: u64,
}
