//! Work-stealing frontier dispatcher: parallelism over the search tree
//! itself.
//!
//! The [`Parallel`](crate::Parallel) evaluator fans candidates of *one*
//! node over workers, so a single slow node serializes a whole level.
//! This module parallelizes across nodes instead: a pool of workers
//! pops **speculative node evaluations** off a shared priority
//! [`Frontier`] and runs the full prepare → diagnose → rank → screen
//! pipeline for each, every worker owning a private
//! [`Evaluator`](crate::Evaluator) stack.
//!
//! # Determinism by speculation
//!
//! The serial traversal loop in [`Rectifier`](crate::Rectifier) remains
//! the *sole* source of truth: it alone mutates the decision tree, the
//! visited set, the limits bookkeeping, and the solution list, in
//! exactly the order the configured [`Traversal`] dictates. The
//! dispatcher is a lookahead cache in front of it. Once per scheduled
//! plan item the master *primes* the frontier with the tuples it
//! predicts it will evaluate next; workers race to evaluate them; when
//! the master actually reaches a tuple it *takes* the finished
//! speculation (a **hit**) or evaluates inline as before (a **miss**).
//! Because the candidate pipeline is a pure function of
//! `(netlist, vectors, response, corrections, level, config)`, a hit is
//! bit-identical to the inline evaluation it replaces — so the solution
//! set, the node/round counts, and every pipeline counter are identical
//! to the serial run for *any* worker count and *any* interleaving.
//! Only the work-attribution counters that depend on cache state
//! ([`RectifyStats::words_simulated`](crate::RectifyStats::words_simulated)
//! and friends) may differ between a hit and a miss.
//!
//! Mispredicted speculations are retracted when the master's visited
//! set catches up ([`DispatchTelemetry::tasks_wasted`]). Nothing
//! speculative is ever checkpointed: the decision tree *is* the durable
//! frontier, so checkpoint capture and resume are untouched by this
//! module (see `ARCHITECTURE.md`, "Dispatcher").
//!
//! # Resilience
//!
//! Workers poll the shared [`CancelToken`] (the non-counting
//! [`CancelToken::is_cancelled`], so the deterministic master poll
//! count is never perturbed) and exit on shutdown or cancellation. A
//! worker panic — including the chaos harness's injected steal-site
//! panics ([`ChaosState::maybe_steal_panic`]) — is caught at this
//! module's sanctioned `catch_unwind` boundary, the task is marked
//! failed (the master simply evaluates it inline: lossless), the
//! worker rebuilds its evaluator stack fresh, and the recovery is
//! counted toward the run's
//! [`ParallelTelemetry::panics_recovered`] / `WorkerPanic` degradation
//! ledger so chaos accounting stays 1:1.

use std::collections::{BinaryHeap, HashMap, HashSet};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use incdx_fault::Correction;
use incdx_netlist::{ConeCache, GateId, Netlist};
use incdx_sim::{PackedMatrix, Response};

use crate::chaos::ChaosState;
use crate::evaluator::{EvalContext, Evaluator, PreparedNode};
use crate::limits::{CancelToken, DegradationEvent};
use crate::parallel::{effective_jobs, ParallelTelemetry};
use crate::params::ParamLevel;
use crate::pipeline::CandidatePipeline;
use crate::session::{build_evaluator, RectifyConfig, RectifyStats};
use crate::traversal::{Traversal, TraversalKind};
use crate::tree::{Node, Tree};

/// Poison-tolerant lock: a worker panic between `lock` and unlock
/// poisons the mutex, but every structure guarded here stays valid (the
/// panic boundary is outside all guarded mutation), so recovery is to
/// keep going with the inner value.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Priority of one frontier entry: a policy-defined primary score with
/// a deterministic sequence-number tie-break.
///
/// Entries pop highest `primary` first (compared with
/// [`f64::total_cmp`], so NaN orders below every real score instead of
/// poisoning the heap); equal primaries pop in ascending `seq` order —
/// first speculated, first served. The [`Traversal`] policies reduce to
/// this one number on the frontier: BFS is `-(depth)`, DFS is
/// `+(depth)`, best-first is the `h1`-per-failing-vector score (see
/// [`Traversal::frontier_priority`]).
#[derive(Debug, Clone, Copy)]
pub struct Prio {
    /// Policy score; higher pops first.
    pub primary: f64,
    /// Unique, monotonically assigned sequence number; *lower* wins
    /// ties, making the pop order a total, deterministic function of
    /// the push history.
    pub seq: u64,
}

impl PartialEq for Prio {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for Prio {}

impl PartialOrd for Prio {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Prio {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap on `primary`; reversed on `seq` so the *lower*
        // sequence number is the greater (earlier-popped) entry.
        self.primary
            .total_cmp(&other.primary)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// One entry popped off a [`Frontier`].
#[derive(Debug)]
pub struct Popped<T> {
    /// The priority it was pushed with.
    pub prio: Prio,
    /// The work item.
    pub item: T,
    /// True when the popping worker is not the worker that pushed the
    /// entry — a *steal* in work-stealing terms. Master-primed entries
    /// never count as stolen.
    pub stolen: bool,
}

struct FrontierEntry<T> {
    prio: Prio,
    owner: usize,
    item: T,
}

impl<T> PartialEq for FrontierEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.prio == other.prio
    }
}

impl<T> Eq for FrontierEntry<T> {}

impl<T> PartialOrd for FrontierEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for FrontierEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.prio.cmp(&other.prio)
    }
}

struct FrontierState<T> {
    heap: BinaryHeap<FrontierEntry<T>>,
    closed: bool,
    stolen: u64,
    steal_failures: u64,
    high_water: usize,
}

/// A shared max-priority work frontier with steal accounting — the
/// dispatcher's central data structure, generic so the criterion
/// microbench (`benches/dispatch.rs`) can drive it with plain payloads.
///
/// Entries are totally ordered by [`Prio`] (sequence numbers are unique
/// by construction, so there are no ambiguous ties). `push` never
/// blocks; `pop_timeout` blocks until an entry, closure, or the
/// timeout. All operations are linearizable under one internal lock —
/// at engine scale the frontier holds tens of entries and the per-node
/// work dwarfs the critical section.
pub struct Frontier<T> {
    state: Mutex<FrontierState<T>>,
    available: Condvar,
}

impl<T> Default for Frontier<T> {
    fn default() -> Self {
        Frontier::new()
    }
}

impl<T> Frontier<T> {
    /// Owner id used for entries primed by the master thread (they are
    /// shared work, not any worker's local queue, so popping them is
    /// not counted as a steal).
    pub const MASTER_OWNER: usize = usize::MAX;

    /// An empty, open frontier.
    pub fn new() -> Self {
        Frontier {
            state: Mutex::new(FrontierState {
                heap: BinaryHeap::new(),
                closed: false,
                stolen: 0,
                steal_failures: 0,
                high_water: 0,
            }),
            available: Condvar::new(),
        }
    }

    /// Pushes an entry owned by `owner` (a worker id, or
    /// [`Frontier::MASTER_OWNER`]). Returns `false` — dropping the item
    /// — once the frontier is closed.
    pub fn push(&self, prio: Prio, owner: usize, item: T) -> bool {
        let mut state = lock(&self.state);
        if state.closed {
            return false;
        }
        state.heap.push(FrontierEntry { prio, owner, item });
        state.high_water = state.high_water.max(state.heap.len());
        drop(state);
        self.available.notify_one();
        true
    }

    /// Pops the highest-priority entry, blocking up to `timeout` for
    /// one to arrive. Returns `None` on timeout (counted as a steal
    /// failure — the worker went hungry) or once the frontier is closed
    /// *and* empty.
    pub fn pop_timeout(&self, worker: usize, timeout: Duration) -> Option<Popped<T>> {
        let deadline = Instant::now() + timeout;
        let mut state = lock(&self.state);
        loop {
            if let Some(entry) = state.heap.pop() {
                let stolen = entry.owner != worker && entry.owner != Self::MASTER_OWNER;
                if stolen {
                    state.stolen += 1;
                }
                return Some(Popped {
                    prio: entry.prio,
                    item: entry.item,
                    stolen,
                });
            }
            if state.closed {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                state.steal_failures += 1;
                return None;
            }
            let (guard, _) = self
                .available
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|p| p.into_inner());
            state = guard;
        }
    }

    /// Closes the frontier: further pushes are dropped and blocked
    /// poppers drain the remaining entries, then observe `None`.
    pub fn close(&self) {
        lock(&self.state).closed = true;
        self.available.notify_all();
    }

    /// Entries currently queued.
    pub fn len(&self) -> usize {
        lock(&self.state).heap.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pops popped by a worker other than the pushing worker.
    pub fn stolen(&self) -> u64 {
        lock(&self.state).stolen
    }

    /// Pop attempts that timed out on an empty frontier.
    pub fn steal_failures(&self) -> u64 {
        lock(&self.state).steal_failures
    }

    /// Largest queue length ever observed.
    pub fn high_water_mark(&self) -> usize {
        lock(&self.state).high_water
    }
}

/// Telemetry of one dispatcher-assisted run, reported through
/// [`RectifyStats::dispatch`](crate::RectifyStats::dispatch) into the
/// JSON report (`"dispatch": {...}`; see `EXPERIMENTS.md`). All
/// counters describe *speculative* work: the deterministic search
/// counters (`nodes`, `rounds`, screen totals) are unaffected by
/// dispatch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DispatchTelemetry {
    /// Worker threads the dispatcher ran.
    pub workers: usize,
    /// Speculative node evaluations workers completed (wasted ones
    /// included).
    pub tasks_executed: u64,
    /// Completed tasks whose frontier entry was popped by a worker
    /// other than the one that pushed it.
    pub tasks_stolen: u64,
    /// Worker pop attempts that timed out on an empty frontier.
    pub steal_failures: u64,
    /// Master evaluations served by a finished speculation.
    pub speculative_hits: u64,
    /// Master evaluations that ran inline (no speculation, speculation
    /// unfinished past the grace wait, or the task failed).
    pub speculative_misses: u64,
    /// Speculations evaluated (or queued) for tuples the master never
    /// consumed — mispredictions retracted against the visited set,
    /// plus leftovers at level teardown.
    pub tasks_wasted: u64,
    /// Largest frontier queue length observed.
    pub frontier_high_water: usize,
    /// Speculative evaluations completed per worker (index = worker
    /// id).
    pub worker_nodes: Vec<u64>,
    /// Per-worker time spent inside speculative evaluations.
    pub worker_busy: Vec<Duration>,
    /// Per-worker time spent waiting on an empty frontier.
    pub worker_idle: Vec<Duration>,
}

impl DispatchTelemetry {
    /// Accumulates another level's telemetry (dispatchers run one level
    /// at a time: counters sum, `workers` and the high-water mark take
    /// the max, per-worker vectors add element-wise).
    pub fn merge(&mut self, other: &DispatchTelemetry) {
        self.workers = self.workers.max(other.workers);
        self.tasks_executed += other.tasks_executed;
        self.tasks_stolen += other.tasks_stolen;
        self.steal_failures += other.steal_failures;
        self.speculative_hits += other.speculative_hits;
        self.speculative_misses += other.speculative_misses;
        self.tasks_wasted += other.tasks_wasted;
        self.frontier_high_water = self.frontier_high_water.max(other.frontier_high_water);
        if self.worker_nodes.len() < other.worker_nodes.len() {
            self.worker_nodes.resize(other.worker_nodes.len(), 0);
            self.worker_busy
                .resize(other.worker_busy.len(), Duration::ZERO);
            self.worker_idle
                .resize(other.worker_idle.len(), Duration::ZERO);
        }
        for (i, n) in other.worker_nodes.iter().enumerate() {
            self.worker_nodes[i] += n;
        }
        for (i, d) in other.worker_busy.iter().enumerate() {
            self.worker_busy[i] += *d;
        }
        for (i, d) in other.worker_idle.iter().enumerate() {
            self.worker_idle[i] += *d;
        }
    }

    /// Hit rate of the speculation cache (0.0 when nothing was asked).
    pub fn hit_rate(&self) -> f64 {
        let total = self.speculative_hits + self.speculative_misses;
        if total == 0 {
            0.0
        } else {
            self.speculative_hits as f64 / total as f64
        }
    }
}

/// Result of one speculative node evaluation — mirrors the master's
/// private `NodeEval`, plus the state the master needs to commit it.
#[derive(Debug)]
pub(crate) enum SpecEval {
    /// The tuple rectifies the netlist.
    Solved,
    /// Dead node: correction failed to apply, tuple at the depth bound
    /// while still failing, or nothing qualified at this level.
    Dead,
    /// Still failing, with its ranked candidate list.
    Open {
        /// Screened candidates, best rank first.
        candidates: Vec<crate::tree::RankedCorrection>,
        /// Failing vectors observed.
        failing: usize,
    },
}

/// A completed speculation, ready for the master to absorb.
#[derive(Debug)]
pub(crate) struct SpecOutcome {
    pub(crate) eval: SpecEval,
    /// Work-attribution stats of the speculative evaluation.
    /// Degradations and parallel telemetry have already been drained to
    /// the dispatcher ledger when this is handed to the master.
    pub(crate) stats: RectifyStats,
    /// Every keyed (prefix, netlist, value matrix) this task computed or
    /// touched — the evaluated node itself when open and expandable,
    /// plus its parent prefix. Handed to the master evaluator's `retain`
    /// on commit so the master's `NodeMatrixCache` is as warm as if it
    /// had evaluated the chain inline (without it, every hit leaves the
    /// master's cache cold and `simulation.words` climbs under
    /// `--dispatch`).
    pub(crate) warmed: Vec<(Vec<Correction>, Netlist, PackedMatrix)>,
}

enum Slot {
    /// Pushed to the frontier, no worker has claimed it.
    Queued,
    /// A worker is evaluating it.
    InFlight,
    /// Finished; boxed because `SpecOutcome` is large and slots churn.
    Done(Box<SpecOutcome>),
    /// The evaluating worker panicked (chaos steal-site injection, or a
    /// real fault); the master evaluates inline instead.
    Failed,
}

struct Inner {
    slots: HashMap<Vec<Correction>, Slot>,
    /// Next frontier sequence number (shared by master primes and
    /// worker chain pushes).
    seq: u64,
    executed: u64,
    wasted: u64,
    /// Degradations harvested from worker pipelines/evaluators, folded
    /// into the run ledger at level teardown — wasted tasks included,
    /// so chaos fault-to-degradation accounting stays 1:1.
    degradations: Vec<DegradationEvent>,
    /// Worker screening telemetry plus worker-loop panic recoveries.
    parallel: ParallelTelemetry,
}

struct Shared {
    base: Netlist,
    base_inputs: Vec<GateId>,
    vectors: PackedMatrix,
    spec: Response,
    /// The worker configuration: `jobs = 1` (no nested fan-out),
    /// `dispatch = false`, cache budget divided by the worker count.
    config: RectifyConfig,
    level: ParamLevel,
    cancel: CancelToken,
    chaos: Option<Arc<ChaosState>>,
    /// Maximum outstanding speculations (queued + in flight + done).
    cap: usize,
    shutdown: AtomicBool,
    frontier: Frontier<Vec<Correction>>,
    inner: Mutex<Inner>,
    /// Signalled whenever a slot transitions to `Done`/`Failed`, so a
    /// master blocked in `take` on an in-flight task wakes promptly.
    completed: Condvar,
}

#[derive(Default)]
struct WorkerReport {
    nodes: u64,
    busy: Duration,
    idle: Duration,
}

/// A worker's private evaluation stack — its own evaluator (with cache
/// and sparse state), base-cone memo, and traversal policy clone for
/// chain-push priorities. Rebuilt from scratch after a caught panic.
struct WorkerStack {
    evaluator: Box<dyn Evaluator>,
    base_cones: ConeCache,
    traversal: Box<dyn Traversal>,
}

impl WorkerStack {
    fn new(shared: &Shared) -> Self {
        WorkerStack {
            evaluator: build_evaluator(&shared.config, shared.chaos.clone()),
            base_cones: ConeCache::new(&shared.base),
            traversal: shared.config.traversal.build(),
        }
    }
}

/// What a finished dispatcher hands back to the session for folding
/// into [`RectifyStats`].
pub(crate) struct DispatchFinish {
    pub(crate) telemetry: DispatchTelemetry,
    pub(crate) degradations: Vec<DegradationEvent>,
    pub(crate) parallel: ParallelTelemetry,
}

/// The per-level speculation dispatcher (see the module docs). Owned by
/// the master thread; all cross-thread state lives behind `shared`.
pub(crate) struct Dispatcher {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<WorkerReport>>,
    workers: usize,
    hits: std::cell::Cell<u64>,
    misses: std::cell::Cell<u64>,
}

/// How long a worker waits for frontier work before re-checking
/// shutdown/cancellation.
const POP_TIMEOUT: Duration = Duration::from_millis(20);
/// How long the master waits on one in-flight speculation before giving
/// up and evaluating inline. Generous: an in-flight task is normally
/// milliseconds from done, and an abandoned wait wastes the work.
const TAKE_DEADLINE: Duration = Duration::from_secs(10);
/// Granularity of the master's in-flight wait (re-checks the slot).
const TAKE_POLL: Duration = Duration::from_millis(2);

impl Dispatcher {
    /// Spawns `effective_jobs(config.jobs)` workers for one ladder
    /// level's traversal. Thread-spawn failures are tolerated (the pool
    /// just shrinks; with zero workers every evaluation is a miss).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        base: &Netlist,
        base_inputs: &[GateId],
        vectors: &PackedMatrix,
        spec: &Response,
        config: &RectifyConfig,
        level: ParamLevel,
        cancel: CancelToken,
        chaos: Option<Arc<ChaosState>>,
    ) -> Dispatcher {
        let workers = effective_jobs(config.jobs, usize::MAX).max(1);
        let mut worker_config = config.clone();
        worker_config.jobs = 1;
        worker_config.dispatch = false;
        worker_config.matrix_cache_bytes = config.matrix_cache_bytes / workers.max(1);
        let shared = Arc::new(Shared {
            base: base.clone(),
            base_inputs: base_inputs.to_vec(),
            vectors: vectors.clone(),
            spec: spec.clone(),
            config: worker_config,
            level,
            cancel,
            chaos,
            cap: workers.saturating_mul(4).max(4),
            shutdown: AtomicBool::new(false),
            frontier: Frontier::new(),
            inner: Mutex::new(Inner {
                slots: HashMap::new(),
                seq: 0,
                executed: 0,
                wasted: 0,
                degradations: Vec::new(),
                parallel: ParallelTelemetry::default(),
            }),
            completed: Condvar::new(),
        });
        let mut handles = Vec::with_capacity(workers);
        for id in 0..workers {
            let shared = Arc::clone(&shared);
            let spawned = std::thread::Builder::new()
                .name(format!("incdx-dispatch-{id}"))
                .spawn(move || worker_loop(&shared, id));
            if let Ok(handle) = spawned {
                handles.push(handle);
            }
        }
        Dispatcher {
            shared,
            handles,
            workers,
            hits: std::cell::Cell::new(0),
            misses: std::cell::Cell::new(0),
        }
    }

    /// Master-side lookahead, called once per scheduled plan item
    /// *before* the item is processed: retracts speculations whose
    /// tuple the master has since visited, then tops the frontier up
    /// with the next predicted expansions under the outstanding-work
    /// cap. The first predicted tuple — the very item the master is
    /// about to process — is never freshly pushed (the master would
    /// only race its own inline evaluation); a speculation primed for
    /// it on an earlier call stands and becomes a hit.
    pub(crate) fn prime(
        &self,
        tree: &Tree,
        plan: &[usize],
        plan_pos: usize,
        visited: &HashSet<Vec<Correction>>,
        traversal: &dyn Traversal,
    ) {
        let mut pushes: Vec<(Prio, Vec<Correction>)> = Vec::new();
        {
            let mut inner = lock(&self.shared.inner);
            // Retract stale speculations (the master consumed or skipped
            // their tuple). In-flight tasks are left to finish — their
            // degradation records must reach the ledger either way.
            let stale: Vec<Vec<Correction>> = inner
                .slots
                .iter()
                .filter(|(tuple, slot)| {
                    if matches!(slot, Slot::InFlight) {
                        return false;
                    }
                    let mut canonical = (*tuple).clone();
                    canonical.sort();
                    visited.contains(&canonical)
                })
                .map(|(tuple, _)| tuple.clone())
                .collect();
            for tuple in stale {
                inner.slots.remove(&tuple);
                inner.wasted += 1;
            }
            if inner.slots.len() >= self.shared.cap {
                return;
            }
            let want = self.shared.cap - inner.slots.len();
            let mut predictor = Predictor::new(tree, plan, plan_pos, self.shared.config.traversal);
            let mut fresh_emissions = 0usize;
            while pushes.len() < want {
                let Some((idx, cursor)) = predictor.next() else {
                    break;
                };
                let Some(parent) = tree.get(idx) else {
                    continue;
                };
                let Some(cand) = parent.candidates.get(cursor) else {
                    continue;
                };
                let mut tuple = parent.corrections.clone();
                tuple.push(cand.correction);
                let mut canonical = tuple.clone();
                canonical.sort();
                if visited.contains(&canonical) {
                    // The master will pop and skip this candidate too.
                    continue;
                }
                fresh_emissions += 1;
                if fresh_emissions == 1 {
                    // The master's own next item: handled inline.
                    continue;
                }
                if inner.slots.contains_key(&tuple) {
                    continue;
                }
                let prio = Prio {
                    primary: traversal.frontier_priority(parent, cand),
                    seq: inner.seq,
                };
                inner.seq += 1;
                inner.slots.insert(tuple.clone(), Slot::Queued);
                pushes.push((prio, tuple));
            }
        }
        for (prio, tuple) in pushes {
            self.shared
                .frontier
                .push(prio, Frontier::<Vec<Correction>>::MASTER_OWNER, tuple);
        }
    }

    /// Claims the speculation for `corrections`, if one exists. A
    /// finished task is a hit; a queued one is retracted (miss — the
    /// master is faster than the pool); an in-flight one is awaited
    /// briefly, then abandoned (miss). Always a miss for tuples never
    /// primed.
    pub(crate) fn take(&self, corrections: &[Correction]) -> Option<SpecOutcome> {
        let deadline = Instant::now() + TAKE_DEADLINE;
        let mut inner = lock(&self.shared.inner);
        loop {
            let in_flight = match inner.slots.get(corrections) {
                Some(Slot::InFlight) => true,
                Some(Slot::Done(_)) => {
                    if let Some(Slot::Done(outcome)) = inner.slots.remove(corrections) {
                        self.hits.set(self.hits.get() + 1);
                        return Some(*outcome);
                    }
                    false
                }
                Some(Slot::Queued) | Some(Slot::Failed) => {
                    // Queued: retract — the frontier entry becomes
                    // stale and workers skip it on pop. Failed: the
                    // worker already recovered; evaluate inline.
                    inner.slots.remove(corrections);
                    self.misses.set(self.misses.get() + 1);
                    return None;
                }
                None => {
                    self.misses.set(self.misses.get() + 1);
                    return None;
                }
            };
            if !in_flight {
                // Unreachable in practice (Done handled above); treat
                // as a miss rather than spin.
                self.misses.set(self.misses.get() + 1);
                return None;
            }
            if Instant::now() >= deadline {
                // Leave the slot: the worker will still finish and its
                // degradations still ledger; the outcome is retracted
                // as wasted on a later prime or at teardown.
                self.misses.set(self.misses.get() + 1);
                return None;
            }
            let (guard, _) = self
                .shared
                .completed
                .wait_timeout(inner, TAKE_POLL)
                .unwrap_or_else(|p| p.into_inner());
            inner = guard;
        }
    }

    /// Shuts the pool down, joins every worker, and folds the ledgers
    /// into a [`DispatchFinish`] for the session to absorb.
    pub(crate) fn finish(mut self) -> DispatchFinish {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.frontier.close();
        let mut worker_nodes = vec![0u64; self.workers];
        let mut worker_busy = vec![Duration::ZERO; self.workers];
        let mut worker_idle = vec![Duration::ZERO; self.workers];
        let mut join_panics = 0u64;
        for (id, handle) in self.handles.drain(..).enumerate() {
            match handle.join() {
                Ok(report) => {
                    if id < self.workers {
                        worker_nodes[id] = report.nodes;
                        worker_busy[id] = report.busy;
                        worker_idle[id] = report.idle;
                    }
                }
                // The worker loop catches task panics, so a join error
                // means a panic escaped (e.g. in a Drop); count the
                // recovery rather than propagate.
                Err(_) => join_panics += 1,
            }
        }
        let mut inner = lock(&self.shared.inner);
        // Anything still speculated at teardown was never consumed.
        inner.wasted += inner.slots.len() as u64;
        inner.slots.clear();
        let degradations = std::mem::take(&mut inner.degradations);
        let mut parallel = std::mem::take(&mut inner.parallel);
        parallel.panics_recovered += join_panics;
        let telemetry = DispatchTelemetry {
            workers: self.workers,
            tasks_executed: inner.executed,
            tasks_stolen: self.shared.frontier.stolen(),
            steal_failures: self.shared.frontier.steal_failures(),
            speculative_hits: self.hits.get(),
            speculative_misses: self.misses.get(),
            tasks_wasted: inner.wasted,
            frontier_high_water: self.shared.frontier.high_water_mark(),
            worker_nodes,
            worker_busy,
            worker_idle,
        };
        drop(inner);
        DispatchFinish {
            telemetry,
            degradations,
            parallel,
        }
    }
}

impl Drop for Dispatcher {
    /// Safety net for an abnormal exit (a master-side panic between
    /// level start and `finish`): stop and join the pool so worker
    /// threads never outlive the session.
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.frontier.close();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for Dispatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dispatcher")
            .field("workers", &self.workers)
            .field("cap", &self.shared.cap)
            .field("hits", &self.hits.get())
            .field("misses", &self.misses.get())
            .finish()
    }
}

/// The worker thread body: pop, claim, evaluate (inside the one
/// sanctioned `catch_unwind` boundary of this module), record, chain.
fn worker_loop(shared: &Shared, worker_id: usize) -> WorkerReport {
    let mut report = WorkerReport::default();
    let mut stack = WorkerStack::new(shared);
    loop {
        if shared.shutdown.load(Ordering::Acquire) || shared.cancel.is_cancelled() {
            break;
        }
        let t_idle = Instant::now();
        let popped = shared.frontier.pop_timeout(worker_id, POP_TIMEOUT);
        report.idle += t_idle.elapsed();
        let Some(popped) = popped else {
            if shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            continue;
        };
        let tuple = popped.item;
        {
            // Claim: Queued → InFlight. A missing/other-state slot
            // means the entry went stale (retracted or re-primed).
            let mut inner = lock(&shared.inner);
            match inner.slots.get_mut(&tuple) {
                Some(slot @ Slot::Queued) => *slot = Slot::InFlight,
                _ => continue,
            }
        }
        let seq = popped.prio.seq;
        let t_busy = Instant::now();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            if let Some(chaos) = &shared.chaos {
                // Chaos steal-site injection: exercises exactly this
                // recovery path (claimed task, worker dies, master
                // falls back to inline evaluation).
                chaos.maybe_steal_panic(seq);
            }
            execute(shared, &mut stack, &tuple)
        }));
        report.busy += t_busy.elapsed();
        report.nodes += 1;
        match result {
            Ok(mut outcome) => {
                // Drain degradations + screening telemetry to the
                // shared ledger *now* (even if this speculation is
                // later wasted), keeping chaos accounting 1:1.
                let mut degradations = std::mem::take(&mut outcome.stats.degradations);
                degradations.extend(stack.evaluator.take_degradations());
                let task_parallel = std::mem::take(&mut outcome.stats.parallel);
                // Chain speculation: the child the master would expand
                // first from this node, if it became one.
                let chain = match &outcome.eval {
                    SpecEval::Open {
                        candidates,
                        failing,
                    } if !candidates.is_empty() && tuple.len() < shared.config.max_corrections => {
                        let cand = candidates[0];
                        let mut child = tuple.clone();
                        child.push(cand.correction);
                        let parent = Node::new(tuple.clone(), Vec::new(), *failing);
                        Some((child, stack.traversal.frontier_priority(&parent, &cand)))
                    }
                    _ => None,
                };
                let push = {
                    let mut inner = lock(&shared.inner);
                    inner.executed += 1;
                    inner.degradations.extend(degradations);
                    inner.parallel.merge(&task_parallel);
                    let push = chain.and_then(|(child, primary)| {
                        if inner.slots.len() < shared.cap && !inner.slots.contains_key(&child) {
                            let prio = Prio {
                                primary,
                                seq: inner.seq,
                            };
                            inner.seq += 1;
                            inner.slots.insert(child.clone(), Slot::Queued);
                            Some((prio, child))
                        } else {
                            None
                        }
                    });
                    inner.slots.insert(tuple, Slot::Done(Box::new(outcome)));
                    push
                };
                shared.completed.notify_all();
                if let Some((prio, child)) = push {
                    shared.frontier.push(prio, worker_id, child);
                }
            }
            Err(_) => {
                let degradations = stack.evaluator.take_degradations();
                {
                    let mut inner = lock(&shared.inner);
                    inner.executed += 1;
                    inner.parallel.panics_recovered += 1;
                    inner.degradations.extend(degradations);
                    inner.slots.insert(tuple, Slot::Failed);
                }
                shared.completed.notify_all();
                // The panic may have left the evaluator stack
                // inconsistent: rebuild before the next task.
                stack = WorkerStack::new(shared);
            }
        }
    }
    report
}

/// One speculative node evaluation — a faithful mirror of the master's
/// `evaluate_node` for the `expand = true` path, attributing work to a
/// private [`RectifyStats`]. Purity contract: given identical
/// `(base, vectors, spec, corrections, level, config)`, the returned
/// `eval` and every pipeline-deterministic counter are bit-identical to
/// the master's inline evaluation; only evaluator cache-state counters
/// (`words_simulated`, `matrix_cache_hits`, …) may differ.
fn execute(shared: &Shared, stack: &mut WorkerStack, corrections: &[Correction]) -> SpecOutcome {
    let t_eval = Instant::now();
    let mut stats = RectifyStats::default();
    let t0 = Instant::now();
    let before = stack.evaluator.counters();
    // Cache warming (incremental backends only): make sure the worker's
    // private cache holds the parent prefix before preparing the node,
    // and remember every pair this task touches so the master can merge
    // them into its own cache on a hit. Without this each speculation is
    // a cold replay of the whole tuple from the base matrix, and the
    // replays — absorbed into the run's attribution on every hit — make
    // `simulation.words` climb under `--dispatch`.
    let mut warmed: Vec<(Vec<Correction>, Netlist, PackedMatrix)> = Vec::new();
    if stack.evaluator.incremental() && corrections.len() > 1 {
        let prefix = &corrections[..corrections.len() - 1];
        let pair = stack.evaluator.cached(prefix).or_else(|| {
            let prepared = {
                let mut ctx = EvalContext {
                    base: &shared.base,
                    base_inputs: &shared.base_inputs,
                    vectors: &shared.vectors,
                    base_cones: &mut stack.base_cones,
                };
                stack.evaluator.prepare(&mut ctx, prefix)
            };
            prepared.map(|PreparedNode { netlist, vals, .. }| {
                stack
                    .evaluator
                    .retain(prefix, netlist.clone(), vals.clone());
                (netlist, vals)
            })
        });
        if let Some((netlist, vals)) = pair {
            warmed.push((prefix.to_vec(), netlist, vals));
        }
    }
    let prepared = {
        let mut ctx = EvalContext {
            base: &shared.base,
            base_inputs: &shared.base_inputs,
            vectors: &shared.vectors,
            base_cones: &mut stack.base_cones,
        };
        stack.evaluator.prepare(&mut ctx, corrections)
    };
    let after = stack.evaluator.counters();
    stats.words_simulated += after.words - before.words;
    stats.events_propagated += after.events - before.events;
    stats.words_skipped += after.skipped - before.skipped;
    stats.matrix_cache_hits += after.matrix_hits - before.matrix_hits;
    stats.audit_checks += after.audit_checks - before.audit_checks;
    stats.audit_violations += after.audit_violations - before.audit_violations;
    stats.blocks_skipped += after.blocks_skipped - before.blocks_skipped;
    stats.sparse_rows += after.sparse_rows - before.sparse_rows;
    stats.dense_fallbacks += after.dense_fallbacks - before.dense_fallbacks;
    let Some(PreparedNode {
        netlist,
        vals,
        mut cones,
    }) = prepared
    else {
        stats.simulation_time += t0.elapsed();
        stats.evaluate_time += t_eval.elapsed();
        return SpecOutcome {
            eval: SpecEval::Dead,
            stats,
            warmed,
        };
    };
    let response = Response::compare(&netlist, &vals, &shared.spec);
    stats.simulation_time += t0.elapsed();
    let failing = response.num_failing();
    let eval = if response.matches() {
        SpecEval::Solved
    } else if corrections.len() >= shared.config.max_corrections {
        SpecEval::Dead
    } else {
        let pipeline = CandidatePipeline::new(
            &shared.config,
            &shared.spec,
            1,
            stack.evaluator.incremental(),
        )
        .with_cancel(shared.cancel.clone())
        .with_chaos(shared.chaos.clone());
        let candidates = pipeline.run(
            &netlist,
            &vals,
            &response,
            corrections,
            &shared.level,
            &mut cones,
            &mut stats,
        );
        if candidates.is_empty() {
            SpecEval::Dead
        } else {
            SpecEval::Open {
                candidates,
                failing,
            }
        }
    };
    stats.cone_cache_hits += cones.take_hits();
    if matches!(eval, SpecEval::Open { .. }) && corrections.len() < shared.config.max_corrections {
        // Warm the worker's own cache too, so a chained child
        // speculation starts from this matrix instead of replaying.
        if stack.evaluator.incremental() {
            stack
                .evaluator
                .retain(corrections, netlist.clone(), vals.clone());
        }
        warmed.push((corrections.to_vec(), netlist, vals));
    }
    stats.evaluate_time += t_eval.elapsed();
    SpecOutcome {
        eval,
        stats,
        warmed,
    }
}

/// Predicts the master's upcoming expansion tuples without mutating the
/// tree: an overlay of advanced candidate cursors over the real
/// `node.next` values, walked in the order the configured policy would
/// schedule. Predictions are best-effort — a wrong guess only wastes
/// speculative work, never correctness (the master ignores speculations
/// it does not reach).
struct Predictor<'a> {
    tree: &'a Tree,
    plan: &'a [usize],
    plan_pos: usize,
    kind: TraversalKind,
    over: HashMap<usize, usize>,
    /// Round-robin continuation position once the real plan is drained.
    sweep_pos: usize,
}

impl<'a> Predictor<'a> {
    fn new(tree: &'a Tree, plan: &'a [usize], plan_pos: usize, kind: TraversalKind) -> Self {
        Predictor {
            tree,
            plan,
            plan_pos,
            kind,
            over: HashMap::new(),
            sweep_pos: 0,
        }
    }

    fn cursor(&self, idx: usize) -> usize {
        self.over
            .get(&idx)
            .copied()
            .unwrap_or_else(|| self.tree.get(idx).map_or(usize::MAX, |n| n.next))
    }

    fn open_at(&self, idx: usize) -> bool {
        self.tree
            .get(idx)
            .is_some_and(|n| self.cursor(idx) < n.candidates.len())
    }

    fn emit(&mut self, idx: usize) -> (usize, usize) {
        let cur = self.cursor(idx);
        self.over.insert(idx, cur + 1);
        (idx, cur)
    }

    /// The next predicted `(parent index, candidate cursor)` expansion.
    /// Terminates: every emission advances a cursor, and cursors are
    /// bounded by the (fixed) candidate lists.
    fn next(&mut self) -> Option<(usize, usize)> {
        match self.kind {
            TraversalKind::RoundRobinBfs => {
                while self.plan_pos < self.plan.len() {
                    let idx = self.plan[self.plan_pos];
                    self.plan_pos += 1;
                    if self.open_at(idx) {
                        return Some(self.emit(idx));
                    }
                }
                // Plan drained: predict the next rounds' sweeps over
                // the arena in index order.
                let n = self.tree.len();
                let mut tried = 0;
                while tried < n {
                    let idx = self.sweep_pos % n.max(1);
                    self.sweep_pos += 1;
                    tried += 1;
                    if self.open_at(idx) {
                        return Some(self.emit(idx));
                    }
                }
                None
            }
            TraversalKind::NaiveBfs => {
                let idx = (0..self.tree.len()).find(|&i| self.open_at(i))?;
                Some(self.emit(idx))
            }
            TraversalKind::DepthFirst => {
                let idx = (0..self.tree.len()).rev().find(|&i| self.open_at(i))?;
                Some(self.emit(idx))
            }
            TraversalKind::BestFirst => {
                let mut best: Option<(usize, f64)> = None;
                for idx in 0..self.tree.len() {
                    if !self.open_at(idx) {
                        continue;
                    }
                    let Some(node) = self.tree.get(idx) else {
                        continue;
                    };
                    let Some(cand) = node.candidates.get(self.cursor(idx)) else {
                        continue;
                    };
                    let p = cand.h1_score / node.failing.max(1) as f64;
                    // Strictly-greater replacement keeps the lowest
                    // index on ties — the BestFirst scheduling
                    // contract.
                    let better = match best {
                        None => true,
                        Some((_, bp)) => p.total_cmp(&bp) == std::cmp::Ordering::Greater,
                    };
                    if better {
                        best = Some((idx, p));
                    }
                }
                let (idx, _) = best?;
                Some(self.emit(idx))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prio_orders_by_primary_then_stable_seq() {
        let mut heap = BinaryHeap::new();
        heap.push(Prio {
            primary: 1.0,
            seq: 5,
        });
        heap.push(Prio {
            primary: 2.0,
            seq: 9,
        });
        heap.push(Prio {
            primary: 2.0,
            seq: 3,
        });
        heap.push(Prio {
            primary: f64::NAN,
            seq: 0,
        });
        let order: Vec<u64> = std::iter::from_fn(|| heap.pop()).map(|p| p.seq).collect();
        // Highest primary first; equal primaries in ascending seq.
        // Under total_cmp positive NaN is the greatest value — the
        // same total order BestFirst::schedule and the Predictor use,
        // so master and workers always agree on it.
        assert_eq!(order, vec![0, 3, 9, 5]);
    }

    #[test]
    fn frontier_pops_priority_order_and_tracks_high_water() {
        let f: Frontier<u32> = Frontier::new();
        for (i, p) in [0.5, 2.0, 1.0].iter().enumerate() {
            assert!(f.push(
                Prio {
                    primary: *p,
                    seq: i as u64
                },
                0,
                i as u32
            ));
        }
        assert_eq!(f.len(), 3);
        assert_eq!(f.high_water_mark(), 3);
        let a = f.pop_timeout(0, Duration::from_millis(1));
        let b = f.pop_timeout(0, Duration::from_millis(1));
        let c = f.pop_timeout(0, Duration::from_millis(1));
        assert_eq!(a.map(|p| p.item), Some(1));
        assert_eq!(b.map(|p| p.item), Some(2));
        assert_eq!(c.map(|p| p.item), Some(0));
        assert_eq!(f.high_water_mark(), 3, "high-water is sticky");
    }

    #[test]
    fn frontier_counts_steals_and_failures() {
        let f: Frontier<u8> = Frontier::new();
        f.push(
            Prio {
                primary: 0.0,
                seq: 0,
            },
            1,
            7,
        );
        f.push(
            Prio {
                primary: 0.0,
                seq: 1,
            },
            Frontier::<u8>::MASTER_OWNER,
            8,
        );
        let own = f.pop_timeout(1, Duration::from_millis(1));
        assert_eq!(own.as_ref().map(|p| p.stolen), Some(false), "own pop");
        let master = f.pop_timeout(2, Duration::from_millis(1));
        assert_eq!(
            master.as_ref().map(|p| p.stolen),
            Some(false),
            "master-primed entries are shared work, not steals"
        );
        f.push(
            Prio {
                primary: 0.0,
                seq: 2,
            },
            1,
            9,
        );
        let theft = f.pop_timeout(2, Duration::from_millis(1));
        assert_eq!(theft.map(|p| p.stolen), Some(true));
        assert_eq!(f.stolen(), 1);
        assert!(f.pop_timeout(0, Duration::from_millis(1)).is_none());
        assert_eq!(f.steal_failures(), 1, "empty timeout counts");
    }

    #[test]
    fn closed_frontier_drains_then_rejects() {
        let f: Frontier<u8> = Frontier::new();
        f.push(
            Prio {
                primary: 0.0,
                seq: 0,
            },
            0,
            1,
        );
        f.close();
        assert!(!f.push(
            Prio {
                primary: 9.0,
                seq: 1
            },
            0,
            2
        ));
        assert_eq!(
            f.pop_timeout(0, Duration::from_millis(1)).map(|p| p.item),
            Some(1),
            "closure still drains queued entries"
        );
        assert!(f.pop_timeout(0, Duration::from_secs(5)).is_none());
        assert!(f.is_empty());
    }

    #[test]
    fn frontier_unblocks_waiting_popper_on_push() {
        let f: Arc<Frontier<u8>> = Arc::new(Frontier::new());
        let g = Arc::clone(&f);
        let popper = std::thread::spawn(move || g.pop_timeout(0, Duration::from_secs(10)));
        std::thread::sleep(Duration::from_millis(5));
        f.push(
            Prio {
                primary: 1.0,
                seq: 0,
            },
            1,
            42,
        );
        let got = popper.join().ok().flatten();
        assert_eq!(got.map(|p| p.item), Some(42));
    }

    #[test]
    fn telemetry_merge_sums_and_maxes() {
        let mut a = DispatchTelemetry {
            workers: 2,
            tasks_executed: 3,
            tasks_stolen: 1,
            steal_failures: 2,
            speculative_hits: 5,
            speculative_misses: 1,
            tasks_wasted: 1,
            frontier_high_water: 4,
            worker_nodes: vec![2, 1],
            worker_busy: vec![Duration::from_millis(3), Duration::from_millis(1)],
            worker_idle: vec![Duration::from_millis(1), Duration::from_millis(2)],
        };
        let b = DispatchTelemetry {
            workers: 4,
            tasks_executed: 7,
            tasks_stolen: 2,
            steal_failures: 0,
            speculative_hits: 1,
            speculative_misses: 3,
            tasks_wasted: 2,
            frontier_high_water: 2,
            worker_nodes: vec![1, 2, 3, 4],
            worker_busy: vec![Duration::from_millis(1); 4],
            worker_idle: vec![Duration::from_millis(1); 4],
        };
        a.merge(&b);
        assert_eq!(a.workers, 4);
        assert_eq!(a.tasks_executed, 10);
        assert_eq!(a.tasks_stolen, 3);
        assert_eq!(a.frontier_high_water, 4);
        assert_eq!(a.worker_nodes, vec![3, 3, 3, 4]);
        assert_eq!(a.worker_busy[0], Duration::from_millis(4));
        assert!((a.hit_rate() - 0.6).abs() < 1e-12);
        assert_eq!(DispatchTelemetry::default().hit_rate(), 0.0);
    }
}
