//! Versioned JSON checkpoints for interrupted runs.
//!
//! When a supervised [`Rectifier`](crate::Rectifier) run stops on a
//! deadline, budget, or cancellation, the engine serializes the live
//! search state — the decision-tree frontier (every node with its
//! candidate cursor), the visited-tuple set, the solutions accepted so
//! far, and the round plan position — into a [`Checkpoint`].
//! [`Rectifier::resume`](crate::Rectifier::resume) rehydrates that
//! state and continues the search; because every evaluator backend is a
//! pure function of the base circuit and the applied corrections, a
//! resumed run reaches a solution set bit-identical to an uninterrupted
//! one. Dispatched runs (`RectifyConfig::dispatch`) change nothing
//! here: speculative worker results are a stateless cache over the
//! tree and are never captured, so a checkpoint taken mid-dispatch is
//! indistinguishable from a serial one.
//!
//! The format is a single line of JSON, hand-rolled like the rest of
//! the workspace's serialization (no serde): integers, booleans,
//! strings, arrays and objects only. Candidate scores are `f64`s
//! serialized as their IEEE-754 **bit patterns** (`u64`) so round-trips
//! are exact. The full schema is documented in `EXPERIMENTS.md`.
//!
//! The checkpoint pins the session it belongs to: a structural
//! fingerprint of the base netlist ([`netlist_fingerprint`]), the gate
//! and vector counts, and the schema [`CHECKPOINT_VERSION`]. Resume
//! refuses a checkpoint whose pins disagree with the session.

use std::io::Write as _;
use std::path::Path;

use incdx_fault::{Correction, CorrectionAction};
use incdx_netlist::{GateId, GateKind, Netlist};

use crate::error::IncdxError;
use crate::json::Json;
use crate::tree::RankedCorrection;

/// Schema version written by [`Checkpoint::to_json`] and required by
/// [`Checkpoint::from_json`]. Version 2 added the hierarchical
/// [`Checkpoint::phase`] field; version-1 documents are no longer
/// accepted (they cannot say which phase to resume into).
pub const CHECKPOINT_VERSION: u32 = 2;

/// One serialized decision-tree node: the tuple it represents, its
/// surviving candidate list, the expansion cursor, and the failing
/// count observed at evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointNode {
    /// Corrections on the path from the root, in application order.
    pub corrections: Vec<Correction>,
    /// Screened candidates, best rank first.
    pub candidates: Vec<RankedCorrection>,
    /// Index of the next untried candidate.
    pub next: usize,
    /// Failing vectors when the node was evaluated.
    pub failing: usize,
}

/// A serializable snapshot of an interrupted search (see the module
/// docs). Produced by the engine on deadline/budget/cancel stops;
/// consumed by [`Rectifier::resume`](crate::Rectifier::resume).
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Schema version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// Harness-assigned run label (e.g. `table2/c432a/k3/t0`); empty
    /// when the engine captured the checkpoint outside a bench run.
    pub label: String,
    /// Harness-assigned trial seed, so a driver can regenerate the
    /// injected faults and vectors; 0 when not applicable.
    pub trial_seed: u64,
    /// Vector count of the run (pin: resume requires a matching set).
    pub vectors: usize,
    /// Gate count of the base netlist (pin).
    pub base_gates: usize,
    /// Structural fingerprint of the base netlist (pin; see
    /// [`netlist_fingerprint`]).
    pub base_hash: u64,
    /// Parameter-ladder level the search was on.
    pub level: usize,
    /// Hierarchical phase the interrupted search was in: 0 = flat (the
    /// only value non-hierarchical runs write), 1 = abstract diagnosis,
    /// 2 = concrete diagnosis restricted to the implicated regions,
    /// 3 = the final unrestricted concrete pass. Resume routes a
    /// nonzero phase back into the hierarchical orchestrator.
    pub phase: u32,
    /// Traversal iterations consumed at this level.
    pub iterations: usize,
    /// The round plan being drained when the run stopped (node
    /// indices).
    pub plan: Vec<usize>,
    /// Position of the first *unprocessed* plan entry.
    pub plan_pos: usize,
    /// The decision tree, in creation order (index = node id).
    pub nodes: Vec<CheckpointNode>,
    /// Canonical (sorted) correction tuples already evaluated.
    pub visited: Vec<Vec<Correction>>,
    /// Solutions accepted before the stop, in discovery order.
    pub solutions: Vec<Vec<Correction>>,
}

impl Checkpoint {
    /// Renders the checkpoint as a single line of JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"checkpoint\":\"incdx\"");
        push_kv_u64(&mut out, "version", u64::from(self.version));
        push_kv_str(&mut out, "label", &self.label);
        push_kv_u64(&mut out, "trial_seed", self.trial_seed);
        push_kv_u64(&mut out, "vectors", self.vectors as u64);
        out.push_str(&format!(
            ",\"base\":{{\"gates\":{},\"hash\":{}}}",
            self.base_gates, self.base_hash
        ));
        out.push_str(&format!(
            ",\"search\":{{\"level\":{},\"phase\":{},\"iterations\":{},\"plan\":[",
            self.level, self.phase, self.iterations
        ));
        for (i, p) in self.plan.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&p.to_string());
        }
        out.push_str(&format!("],\"plan_pos\":{}}}", self.plan_pos));
        out.push_str(",\"nodes\":[");
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_node(&mut out, n);
        }
        out.push_str("],\"visited\":[");
        for (i, v) in self.visited.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_corrections(&mut out, v);
        }
        out.push_str("],\"solutions\":[");
        for (i, s) in self.solutions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_corrections(&mut out, s);
        }
        out.push_str("]}");
        out
    }

    /// Parses a checkpoint produced by [`Checkpoint::to_json`].
    ///
    /// # Errors
    ///
    /// [`IncdxError::Checkpoint`] on malformed JSON, an unknown schema
    /// version, or any field outside its domain.
    pub fn from_json(text: &str) -> Result<Checkpoint, IncdxError> {
        parse_checkpoint(text).map_err(|reason| IncdxError::Checkpoint { reason })
    }
}

/// Atomically persists a checkpoint to `path`: the JSON line is written
/// to a sibling temp file, flushed to disk, and renamed into place, so
/// a crash mid-write can never leave a truncated document under the
/// final name — readers observe either the previous complete
/// checkpoint or the new one.
///
/// # Errors
///
/// [`IncdxError::CheckpointIo`] if any filesystem step fails.
pub fn save_checkpoint_file(path: &Path, ckpt: &Checkpoint) -> Result<(), IncdxError> {
    let io_err = |detail: std::io::Error| IncdxError::CheckpointIo {
        path: path.display().to_string(),
        detail: detail.to_string(),
    };
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let mut file = std::fs::File::create(&tmp).map_err(io_err)?;
    file.write_all(ckpt.to_json().as_bytes()).map_err(io_err)?;
    file.write_all(b"\n").map_err(io_err)?;
    file.sync_all().map_err(io_err)?;
    drop(file);
    std::fs::rename(&tmp, path).map_err(io_err)
}

/// Loads a checkpoint previously written by [`save_checkpoint_file`]
/// (or any single-line [`Checkpoint::to_json`] document).
///
/// # Errors
///
/// [`IncdxError::CheckpointIo`] if the file cannot be read, and
/// [`IncdxError::Checkpoint`] if its contents are truncated, garbage,
/// or fail the schema's domain checks — a torn spool file surfaces
/// here as a typed error, never a panic.
pub fn load_checkpoint_file(path: &Path) -> Result<Checkpoint, IncdxError> {
    let text = std::fs::read_to_string(path).map_err(|e| IncdxError::CheckpointIo {
        path: path.display().to_string(),
        detail: e.to_string(),
    })?;
    Checkpoint::from_json(text.trim_end_matches(['\n', '\r']))
}

/// FNV-1a structural fingerprint of a netlist: gate kinds, fanin
/// wiring, and the primary-output list. Renaming wires does not change
/// the fingerprint; any structural edit does (modulo hash collisions,
/// which resume additionally guards against with the gate count).
pub fn netlist_fingerprint(netlist: &Netlist) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    for i in 0..netlist.len() {
        let gate = netlist.gate(GateId::from_index(i));
        mix(gate.kind().token().as_bytes());
        for fi in gate.fanins() {
            mix(&(fi.index() as u64).to_le_bytes());
        }
        mix(&[0xff]);
    }
    mix(&[0xfe]);
    for o in netlist.outputs() {
        mix(&(o.index() as u64).to_le_bytes());
    }
    h
}

// ---------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------

fn push_kv_u64(out: &mut String, key: &str, v: u64) {
    out.push_str(&format!(",\"{key}\":{v}"));
}

fn push_kv_str(out: &mut String, key: &str, v: &str) {
    out.push_str(&format!(",\"{key}\":\"{}\"", crate::report::escape_json(v)));
}

fn write_node(out: &mut String, n: &CheckpointNode) {
    out.push_str(&format!("{{\"next\":{},\"failing\":{}", n.next, n.failing));
    out.push_str(",\"corrections\":");
    write_corrections(out, &n.corrections);
    out.push_str(",\"candidates\":[");
    for (i, rc) in n.candidates.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_ranked(out, rc);
    }
    out.push_str("]}");
}

fn write_corrections(out: &mut String, cs: &[Correction]) {
    out.push('[');
    for (i, c) in cs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_correction(out, c);
    }
    out.push(']');
}

fn write_correction(out: &mut String, c: &Correction) {
    out.push_str(&format!("{{\"line\":{}", c.line().index()));
    match c.action() {
        CorrectionAction::SetConst(v) => out.push_str(&format!(",\"t\":\"set-const\",\"v\":{v}")),
        CorrectionAction::ChangeKind(kind) => out.push_str(&format!(
            ",\"t\":\"change-kind\",\"k\":\"{}\"",
            kind.token()
        )),
        CorrectionAction::InvertInput { port } => {
            out.push_str(&format!(",\"t\":\"invert-input\",\"p\":{port}"))
        }
        CorrectionAction::RemoveInput { port } => {
            out.push_str(&format!(",\"t\":\"remove-input\",\"p\":{port}"))
        }
        CorrectionAction::AddInput { source } => {
            out.push_str(&format!(",\"t\":\"add-input\",\"s\":{}", source.index()))
        }
        CorrectionAction::ReplaceInput { port, source } => out.push_str(&format!(
            ",\"t\":\"replace-input\",\"p\":{port},\"s\":{}",
            source.index()
        )),
        CorrectionAction::WireThrough { port } => {
            out.push_str(&format!(",\"t\":\"wire-through\",\"p\":{port}"))
        }
        CorrectionAction::InsertGate { kind, other } => out.push_str(&format!(
            ",\"t\":\"insert-gate\",\"k\":\"{}\",\"s\":{}",
            kind.token(),
            other.index()
        )),
    }
    out.push('}');
}

fn write_ranked(out: &mut String, rc: &RankedCorrection) {
    out.push_str("{\"c\":");
    write_correction(out, &rc.correction);
    // Scores as IEEE-754 bit patterns for an exact round-trip.
    out.push_str(&format!(
        ",\"rank\":{},\"h1\":{},\"h2\":{},\"h3\":{}}}",
        rc.rank.to_bits(),
        rc.h1_score.to_bits(),
        rc.h2_fraction.to_bits(),
        rc.h3_score.to_bits()
    ));
}

// ---------------------------------------------------------------------
// Parsing: built on the workspace's shared minimal JSON reader
// (`crate::json`). Result-based throughout — the engine crate never
// panics on malformed input.
// ---------------------------------------------------------------------

fn parse_checkpoint(text: &str) -> Result<Checkpoint, String> {
    let root = crate::json::parse(text)?;
    if root.get("checkpoint")?.as_str()? != "incdx" {
        return Err("not an incdx checkpoint".to_string());
    }
    let version = u32::try_from(root.get("version")?.as_u64()?)
        .map_err(|_| "version out of range".to_string())?;
    if version != CHECKPOINT_VERSION {
        return Err(format!(
            "unsupported checkpoint version {version} (expected {CHECKPOINT_VERSION})"
        ));
    }
    let base = root.get("base")?;
    let search = root.get("search")?;
    let plan = search
        .get("plan")?
        .as_arr()?
        .iter()
        .map(Json::as_usize)
        .collect::<Result<Vec<usize>, String>>()?;
    let nodes = root
        .get("nodes")?
        .as_arr()?
        .iter()
        .map(parse_node)
        .collect::<Result<Vec<CheckpointNode>, String>>()?;
    let visited = parse_tuple_list(root.get("visited")?)?;
    let solutions = parse_tuple_list(root.get("solutions")?)?;
    let ckpt = Checkpoint {
        version,
        label: root.get("label")?.as_str()?.to_string(),
        trial_seed: root.get("trial_seed")?.as_u64()?,
        vectors: root.get("vectors")?.as_usize()?,
        base_gates: base.get("gates")?.as_usize()?,
        base_hash: base.get("hash")?.as_u64()?,
        level: search.get("level")?.as_usize()?,
        phase: u32::try_from(search.get("phase")?.as_u64()?)
            .map_err(|_| "phase out of range".to_string())?,
        iterations: search.get("iterations")?.as_usize()?,
        plan,
        plan_pos: search.get("plan_pos")?.as_usize()?,
        nodes,
        visited,
        solutions,
    };
    if ckpt.phase > 3 {
        return Err(format!("unknown hierarchical phase {}", ckpt.phase));
    }
    if ckpt.plan_pos > ckpt.plan.len() {
        return Err("plan_pos past the end of the plan".to_string());
    }
    if let Some(&bad) = ckpt.plan.iter().find(|&&idx| idx >= ckpt.nodes.len()) {
        return Err(format!("plan references missing node {bad}"));
    }
    for n in &ckpt.nodes {
        if n.next > n.candidates.len() {
            return Err("node cursor past its candidate list".to_string());
        }
    }
    Ok(ckpt)
}

fn parse_tuple_list(v: &Json) -> Result<Vec<Vec<Correction>>, String> {
    v.as_arr()?
        .iter()
        .map(|tuple| tuple.as_arr()?.iter().map(parse_correction).collect())
        .collect()
}

fn parse_node(v: &Json) -> Result<CheckpointNode, String> {
    Ok(CheckpointNode {
        corrections: v
            .get("corrections")?
            .as_arr()?
            .iter()
            .map(parse_correction)
            .collect::<Result<Vec<Correction>, String>>()?,
        candidates: v
            .get("candidates")?
            .as_arr()?
            .iter()
            .map(parse_ranked)
            .collect::<Result<Vec<RankedCorrection>, String>>()?,
        next: v.get("next")?.as_usize()?,
        failing: v.get("failing")?.as_usize()?,
    })
}

fn parse_gate_id(v: &Json) -> Result<GateId, String> {
    let idx = v.as_u64()?;
    if idx > u64::from(u32::MAX) {
        return Err(format!("gate id {idx} out of range"));
    }
    Ok(GateId::from_index(idx as usize))
}

fn parse_gate_kind(v: &Json) -> Result<GateKind, String> {
    let token = v.as_str()?;
    GateKind::from_token(token).ok_or_else(|| format!("unknown gate kind `{token}`"))
}

fn parse_correction(v: &Json) -> Result<Correction, String> {
    let line = parse_gate_id(v.get("line")?)?;
    let action = match v.get("t")?.as_str()? {
        "set-const" => CorrectionAction::SetConst(v.get("v")?.as_bool()?),
        "change-kind" => CorrectionAction::ChangeKind(parse_gate_kind(v.get("k")?)?),
        "invert-input" => CorrectionAction::InvertInput {
            port: v.get("p")?.as_usize()?,
        },
        "remove-input" => CorrectionAction::RemoveInput {
            port: v.get("p")?.as_usize()?,
        },
        "add-input" => CorrectionAction::AddInput {
            source: parse_gate_id(v.get("s")?)?,
        },
        "replace-input" => CorrectionAction::ReplaceInput {
            port: v.get("p")?.as_usize()?,
            source: parse_gate_id(v.get("s")?)?,
        },
        "wire-through" => CorrectionAction::WireThrough {
            port: v.get("p")?.as_usize()?,
        },
        "insert-gate" => CorrectionAction::InsertGate {
            kind: parse_gate_kind(v.get("k")?)?,
            other: parse_gate_id(v.get("s")?)?,
        },
        other => return Err(format!("unknown correction tag `{other}`")),
    };
    Ok(Correction::new(line, action))
}

fn parse_ranked(v: &Json) -> Result<RankedCorrection, String> {
    Ok(RankedCorrection {
        correction: parse_correction(v.get("c")?)?,
        rank: f64::from_bits(v.get("rank")?.as_u64()?),
        h1_score: f64::from_bits(v.get("h1")?.as_u64()?),
        h2_fraction: f64::from_bits(v.get("h2")?.as_u64()?),
        h3_score: f64::from_bits(v.get("h3")?.as_u64()?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdx_netlist::parse_bench;

    fn sample() -> Checkpoint {
        let c1 = Correction::new(GateId(3), CorrectionAction::SetConst(true));
        let c2 = Correction::new(
            GateId(7),
            CorrectionAction::InsertGate {
                kind: GateKind::Nand,
                other: GateId(1),
            },
        );
        let c3 = Correction::new(
            GateId(2),
            CorrectionAction::ReplaceInput {
                port: 1,
                source: GateId(0),
            },
        );
        let rc = |c: Correction, rank: f64| RankedCorrection {
            correction: c,
            rank,
            h1_score: 0.31, // deliberately not exactly representable sums
            h2_fraction: 2.0 / 3.0,
            h3_score: 0.1 + 0.2,
        };
        Checkpoint {
            version: CHECKPOINT_VERSION,
            label: "table2/c432a/k3/t0".to_string(),
            trial_seed: 0xdead_beef,
            vectors: 1024,
            base_gates: 196,
            base_hash: 0x1234_5678_9abc_def0,
            level: 2,
            phase: 2,
            iterations: 5,
            plan: vec![0, 1],
            plan_pos: 1,
            nodes: vec![
                CheckpointNode {
                    corrections: vec![],
                    candidates: vec![rc(c1, 0.9), rc(c2, 0.5)],
                    next: 1,
                    failing: 12,
                },
                CheckpointNode {
                    corrections: vec![c1],
                    candidates: vec![rc(c3, f64::NAN)],
                    next: 0,
                    failing: 4,
                },
            ],
            visited: vec![vec![], vec![c1]],
            solutions: vec![vec![c1, c2]],
        }
    }

    #[test]
    fn round_trips_exactly() {
        let ckpt = sample();
        let json = ckpt.to_json();
        assert!(!json.contains('\n'));
        let back = Checkpoint::from_json(&json).unwrap();
        // NaN != NaN, so compare everything else structurally and the
        // scores by bit pattern.
        assert_eq!(back.label, ckpt.label);
        assert_eq!(back.trial_seed, ckpt.trial_seed);
        assert_eq!(back.vectors, ckpt.vectors);
        assert_eq!(back.base_gates, ckpt.base_gates);
        assert_eq!(back.base_hash, ckpt.base_hash);
        assert_eq!(back.level, ckpt.level);
        assert_eq!(back.phase, ckpt.phase);
        assert_eq!(back.plan, ckpt.plan);
        assert_eq!(back.plan_pos, ckpt.plan_pos);
        assert_eq!(back.visited, ckpt.visited);
        assert_eq!(back.solutions, ckpt.solutions);
        assert_eq!(back.nodes.len(), ckpt.nodes.len());
        for (a, b) in back.nodes.iter().zip(&ckpt.nodes) {
            assert_eq!(a.corrections, b.corrections);
            assert_eq!(a.next, b.next);
            assert_eq!(a.failing, b.failing);
            for (x, y) in a.candidates.iter().zip(&b.candidates) {
                assert_eq!(x.correction, y.correction);
                assert_eq!(x.rank.to_bits(), y.rank.to_bits(), "bit-exact scores");
                assert_eq!(x.h1_score.to_bits(), y.h1_score.to_bits());
                assert_eq!(x.h2_fraction.to_bits(), y.h2_fraction.to_bits());
                assert_eq!(x.h3_score.to_bits(), y.h3_score.to_bits());
            }
        }
    }

    #[test]
    fn every_correction_action_round_trips() {
        let actions = [
            CorrectionAction::SetConst(false),
            CorrectionAction::ChangeKind(GateKind::Xnor),
            CorrectionAction::InvertInput { port: 2 },
            CorrectionAction::RemoveInput { port: 0 },
            CorrectionAction::AddInput { source: GateId(9) },
            CorrectionAction::ReplaceInput {
                port: 1,
                source: GateId(4),
            },
            CorrectionAction::WireThrough { port: 1 },
            CorrectionAction::InsertGate {
                kind: GateKind::Xor,
                other: GateId(5),
            },
        ];
        for action in actions {
            let c = Correction::new(GateId(11), action);
            let mut s = String::new();
            write_correction(&mut s, &c);
            let parsed = crate::json::parse(&s).unwrap();
            assert_eq!(parse_correction(&parsed).unwrap(), c, "{s}");
        }
    }

    #[test]
    fn rejects_malformed_and_mismatched_inputs() {
        assert!(Checkpoint::from_json("not json").is_err());
        assert!(Checkpoint::from_json("{}").is_err());
        assert!(Checkpoint::from_json("{\"checkpoint\":\"other\"}").is_err());
        // Unknown version.
        let mut ckpt = sample();
        ckpt.version = 99;
        let json = ckpt.to_json();
        let err = Checkpoint::from_json(&json).unwrap_err();
        assert!(err.to_string().contains("version 99"), "{err}");
        // Truncated document.
        let json = sample().to_json();
        assert!(Checkpoint::from_json(&json[..json.len() - 2]).is_err());
        // Out-of-bounds plan reference.
        let mut ckpt = sample();
        ckpt.plan = vec![7];
        assert!(Checkpoint::from_json(&ckpt.to_json()).is_err());
        // Cursor past the candidate list.
        let mut ckpt = sample();
        ckpt.nodes[0].next = 5;
        assert!(Checkpoint::from_json(&ckpt.to_json()).is_err());
        // Unknown hierarchical phase.
        let mut ckpt = sample();
        ckpt.phase = 4;
        assert!(Checkpoint::from_json(&ckpt.to_json()).is_err());
        // Floats are rejected (scores travel as bit patterns).
        assert!(crate::json::parse("1.5").is_err());
    }

    #[test]
    fn file_roundtrip_is_atomic_and_typed() {
        let dir = std::env::temp_dir().join(format!(
            "incdx-ckpt-test-{}-{:x}",
            std::process::id(),
            netlist_fingerprint(&parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n").unwrap())
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let ckpt = sample();
        save_checkpoint_file(&path, &ckpt).unwrap();
        // The temp file must not survive a successful save.
        assert!(!dir.join("run.ckpt.tmp").exists());
        let back = load_checkpoint_file(&path).unwrap();
        assert_eq!(back.label, ckpt.label);
        assert_eq!(back.base_hash, ckpt.base_hash);

        // A truncated document is a typed checkpoint error.
        let full = std::fs::read_to_string(&path).unwrap();
        let torn = dir.join("torn.ckpt");
        std::fs::write(&torn, &full[..full.len() / 2]).unwrap();
        match load_checkpoint_file(&torn) {
            Err(IncdxError::Checkpoint { .. }) => {}
            other => panic!("expected Checkpoint error, got {other:?}"),
        }
        // Garbage bytes likewise.
        std::fs::write(&torn, "}}{{ not json").unwrap();
        assert!(matches!(
            load_checkpoint_file(&torn),
            Err(IncdxError::Checkpoint { .. })
        ));
        // A missing file is an I/O error carrying the path.
        match load_checkpoint_file(&dir.join("absent.ckpt")) {
            Err(IncdxError::CheckpointIo { path, .. }) => {
                assert!(path.contains("absent.ckpt"), "{path}");
            }
            other => panic!("expected CheckpointIo error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn label_escaping_survives() {
        let mut ckpt = sample();
        ckpt.label = "odd \"label\"\\with\nescapes".to_string();
        let back = Checkpoint::from_json(&ckpt.to_json()).unwrap();
        assert_eq!(back.label, ckpt.label);
    }

    #[test]
    fn fingerprint_tracks_structure_not_names() {
        let a = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n").unwrap();
        let renamed = parse_bench("INPUT(p)\nINPUT(q)\nOUTPUT(z)\nz = AND(p, q)\n").unwrap();
        let edited = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = OR(a, b)\n").unwrap();
        assert_eq!(netlist_fingerprint(&a), netlist_fingerprint(&renamed));
        assert_ne!(netlist_fingerprint(&a), netlist_fingerprint(&edited));
    }
}
