//! The incremental diagnosis and correction engine of Veneris, Liu, Amiri
//! and Abadir, *"Incremental Diagnosis and Correction of Multiple Faults
//! and Errors"*, DATE 2002.
//!
//! Given a netlist, a set of test vectors and the primary-output responses
//! of a reference (a specification for DEDC, a faulty device for stuck-at
//! diagnosis), the engine repeatedly:
//!
//! 1. **diagnoses** — ranks suspect lines by path-trace marking followed by
//!    the flip-and-propagate "correcting potential" measure (heuristic 1),
//! 2. **corrects** — enumerates fault-model/design-error corrections on the
//!    best lines and screens them with the `V_err` bit-complement test of
//!    Theorem 1 (heuristic 2) and the `V_corr` new-error test
//!    (heuristic 3), then
//! 3. **recurses** — applies ranked corrections one per node per *round* of
//!    a decision tree (the BFS/DFS trade-off of Fig. 2), driving the number
//!    of failing vectors to zero.
//!
//! Thresholds relax along the parameter ladder of §3.3
//! (`h1/h2/h3 = 1/1/1 → … → 0.1/0.3/0.5`) whenever a node yields no
//! qualifying correction.
//!
//! Two modes:
//!
//! * **first-solution** (DEDC): stop at the first valid correction tuple;
//! * **exhaustive** (stuck-at diagnosis): traverse the whole tree and
//!   return *every* minimal equivalent fault tuple that explains the
//!   observed behaviour.
//!
//! # Architecture
//!
//! The engine is layered (see `ARCHITECTURE.md`):
//!
//! * [`Traversal`] strategies ([`RoundRobinBfs`], [`DepthFirst`],
//!   [`NaiveBfs`], [`BestFirst`]) schedule which open node of the
//!   decision [`Tree`] expands next;
//! * [`Evaluator`] backends ([`FromScratch`], [`Incremental`],
//!   [`Parallel`], and the self-checking [`Auditing`] decorator)
//!   prepare node circuits and value matrices;
//! * the [`CandidatePipeline`] (path-trace → rank → screen → accept) is
//!   shared by every strategy and backend;
//! * [`Rectifier`] is the facade wiring the three from a
//!   [`RectifyConfig`], and [`IncdxError`] is the unified error type of
//!   every fallible public entry point.
//!
//! # Example
//!
//! ```
//! use incdx_core::{Rectifier, RectifyConfig};
//! use incdx_fault::{Correction, CorrectionAction, CorrectionModel};
//! use incdx_netlist::{parse_bench, GateKind};
//! use incdx_sim::{PackedMatrix, Response, Simulator};
//!
//! // Specification: y = AND(a, b). Erroneous design: y = OR(a, b).
//! let spec_nl = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n")?;
//! let design = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = OR(a, b)\n")?;
//! let mut pi = PackedMatrix::new(2, 4);
//! pi.row_mut(0)[0] = 0b0101;
//! pi.row_mut(1)[0] = 0b0011;
//! let mut sim = Simulator::new();
//! let spec = Response::capture(&spec_nl, &sim.run(&spec_nl, &pi));
//!
//! let config = RectifyConfig::dedc(1);
//! let result = Rectifier::new(design.clone(), pi, spec, config)?.run();
//! let fix = &result.solutions[0].corrections[0];
//! assert_eq!(fix.line(), design.find_by_name("y").unwrap());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod audit;
mod cache;
mod chaos;
mod checkpoint;
mod dispatch;
mod error;
mod evaluator;
pub mod json;
mod limits;
mod parallel;
mod params;
mod path_trace;
mod pipeline;
mod report;
mod screen;
mod session;
mod traversal;
mod tree;
mod wire;

pub use audit::Auditing;
pub use chaos::{Chaos, ChaosConfig, ChaosState, ChaosSummary};
pub use checkpoint::{
    load_checkpoint_file, netlist_fingerprint, save_checkpoint_file, Checkpoint, CheckpointNode,
    CHECKPOINT_VERSION,
};
pub use dispatch::{DispatchTelemetry, Frontier, Popped, Prio};
pub use error::IncdxError;
pub use evaluator::{
    EvalContext, Evaluator, FromScratch, Incremental, Parallel, PreparedNode, SimCounters,
};
pub use limits::{
    CancelToken, DegradationEvent, DegradationKind, PartialSolution, RectifyLimits, Verdict,
};
pub use parallel::{
    effective_jobs, run_parallel, run_parallel_with, ParallelOutcome, ParallelTelemetry,
};
pub use params::{default_ladder, ParamLevel};
pub use path_trace::{path_trace_counts, path_trace_counts_batched};
pub use pipeline::CandidatePipeline;
pub use report::{escape_json, RectifyReport};
pub use screen::{correction_output_row, correction_output_row_into, CorrectionScratch};
pub use session::{
    AbstractionStats, AnalysisStats, FaultClassSummary, Rectifier, RectifyConfig, RectifyResult,
    RectifyStats, Solution,
};
pub use traversal::{BestFirst, DepthFirst, NaiveBfs, RoundRobinBfs, Traversal, TraversalKind};
pub use tree::{Node, PushOutcome, RankedCorrection, Tree};
pub use wire::wire_sources;
