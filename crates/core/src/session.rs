//! The rectification session facade: run configuration, statistics, and
//! the engine loop that drives a [`Traversal`] strategy, an
//! [`Evaluator`] backend and the shared [`CandidatePipeline`] over the
//! decision [`Tree`](crate::tree::Tree).

use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use incdx_fault::{Correction, CorrectionModel, StuckAt};
use incdx_netlist::{Abstraction, ConeCache, GateId, Netlist, NetlistError};
use incdx_sim::{PackedMatrix, Response};

use crate::chaos::{Chaos, ChaosConfig, ChaosState, ChaosSummary};
use crate::checkpoint::{netlist_fingerprint, Checkpoint, CheckpointNode, CHECKPOINT_VERSION};
use crate::dispatch::{DispatchTelemetry, Dispatcher, SpecEval, SpecOutcome};
use crate::error::IncdxError;
use crate::evaluator::{EvalContext, Evaluator, FromScratch, Incremental, Parallel, PreparedNode};
use crate::limits::{
    CancelToken, DegradationEvent, DegradationKind, PartialSolution, RectifyLimits, StopReason,
    Verdict,
};
use crate::parallel::ParallelTelemetry;
use crate::params::{default_ladder, ParamLevel};
use crate::pipeline::CandidatePipeline;
use crate::traversal::{Traversal, TraversalKind};
use crate::tree::{Node, PushOutcome, RankedCorrection, Tree};

/// Configuration for a [`Rectifier`] run.
#[derive(Debug, Clone)]
pub struct RectifyConfig {
    /// Which correction repertoire to search (stuck-at vs design errors).
    pub model: CorrectionModel,
    /// Maximum tuple size — the decision tree's depth bound.
    pub max_corrections: usize,
    /// Exhaustive traversal (collect every minimal tuple) vs stop at the
    /// first solution.
    pub exhaustive: bool,
    /// Round budget for the traversal (each round at most doubles the
    /// node count, so `max_rounds = r` explores ≤ 2^r nodes).
    pub max_rounds: usize,
    /// Hard cap on tree nodes.
    pub max_nodes: usize,
    /// Stop after this many solutions (exhaustive mode).
    pub max_solutions: usize,
    /// Failing vectors sampled by path-trace.
    pub path_trace_vector_cap: usize,
    /// Minimum fraction of path-trace-marked lines promoted to
    /// heuristic 1 (the effective fraction per node is the maximum of
    /// this and the current ladder level's
    /// [`ParamLevel::promote`]).
    pub path_trace_fraction: f64,
    /// Hard cap on lines promoted to the correction stage per node.
    pub max_candidate_lines: usize,
    /// Candidate source signals per line for wire corrections
    /// (0 = every cycle-safe signal; > 0 = stride-sample to that many,
    /// with the drop count reported in the stats).
    pub wire_source_limit: usize,
    /// Ranked candidates kept per node (cap is recorded in the stats, not
    /// silent).
    pub max_candidates_per_node: usize,
    /// The `h1/h2/h3` relaxation ladder.
    pub ladder: Vec<ParamLevel>,
    /// Apply Theorem 1's `|V_err|/N` floor to the `h2` threshold (with
    /// `N` = remaining correction slots), so the guaranteed-to-exist
    /// high-excitation correction is never screened out.
    pub theorem_floor: bool,
    /// Wall-clock budget; exceeded ⇒ stop with `stats.truncated = true`.
    pub time_limit: Option<Duration>,
    /// Tree traversal strategy (the paper's rounds by default; see
    /// [`TraversalKind`]).
    pub traversal: TraversalKind,
    /// Worker threads for candidate screening (`0` = all available
    /// cores, `1` = serial). Results are bit-identical for every value:
    /// per-candidate evaluations run against worker-private simulator
    /// state and merge in candidate-rank order. Selects the
    /// [`Parallel`] evaluator decorator.
    pub jobs: usize,
    /// Work-stealing frontier dispatcher: parallelize across decision
    /// -tree nodes instead of across one node's candidates. When armed
    /// (and `jobs` resolves to more than one worker), a per-level pool
    /// of workers speculatively evaluates the tuples the traversal is
    /// predicted to expand next, each worker owning a private evaluator
    /// stack, while the serial master loop remains the sole source of
    /// truth — the solution set, node/round counts, and every
    /// pipeline-deterministic counter stay bit-identical to the serial
    /// run for any worker count and interleaving; only work-attribution
    /// counters ([`RectifyStats::words_simulated`] and friends) become
    /// schedule-dependent. Telemetry lands in
    /// [`RectifyStats::dispatch`]. Checkpoints are unaffected: nothing
    /// speculative is captured (see `ARCHITECTURE.md`, "Dispatcher").
    pub dispatch: bool,
    /// Event-driven incremental node evaluation (the [`Incremental`]
    /// backend): reuse the parent node's cached value matrix and
    /// resimulate only the corrected line's fanout cone
    /// (change-bounded), instead of cloning and fully resimulating the
    /// base circuit per node ([`FromScratch`]). Bit-identical to the
    /// from-scratch path for every `jobs` value — only `words_simulated`
    /// (and the event/skip counters) differ.
    pub incremental: bool,
    /// Byte budget for the node value-matrix cache used by the incremental
    /// path (LRU beyond this; `0` disables the cache but keeps the
    /// change-bounded cone propagation).
    pub matrix_cache_bytes: usize,
    /// Hierarchical sparse simulation kernel: cone propagation walks only
    /// blocks whose fanin actually changed, and screening popcounts skip
    /// all-zero blocks of the failing-vector mask. Bit-identical to the
    /// dense path for every setting — only
    /// [`RectifyStats::blocks_skipped`] / [`RectifyStats::sparse_rows`] /
    /// [`RectifyStats::dense_fallbacks`] and wall time differ (see the
    /// "Simulation kernel" section of `ARCHITECTURE.md`).
    pub sparse: bool,
    /// Opt-in engine invariant audit: wrap the evaluation backend in the
    /// [`Auditing`](crate::Auditing) decorator (sampled replay of
    /// incremental node preparations against a from-scratch rebuild,
    /// matrix width checks) and re-verify every reported solution against
    /// a fresh simulation. Audit work runs on private simulators and does
    /// not perturb the reported work counters; results are recorded in
    /// [`RectifyStats::audit_checks`] / [`RectifyStats::audit_violations`].
    pub audit: bool,
    /// Resource limits — wall-clock deadline and node/word/byte budgets
    /// — checked cooperatively once per scheduled plan item (never
    /// mid-node). The default is unlimited. Exceeding a limit stops the
    /// search with the matching early-stop [`Verdict`], ranks the open
    /// frontier into [`RectifyResult::partials`], and captures a
    /// resumable [`Checkpoint`].
    pub limits: RectifyLimits,
    /// Deterministic chaos fault injection (`None` = off). When armed,
    /// the evaluation stack is wrapped in [`Chaos`] (seeded worker
    /// panics, cached-matrix bit flips, spurious width errors) inside a
    /// repairing [`Auditing`](crate::Auditing) layer, so every injected
    /// fault is caught and recovered — the solution set stays
    /// bit-identical to a chaos-off run, and every recovery is recorded
    /// in [`RectifyStats::degradations`].
    pub chaos: Option<ChaosConfig>,
    /// Two-level hierarchical diagnosis: phase 1 diagnoses a fanout-free
    /// -cone abstraction of the netlist (super-gates built by
    /// [`Abstraction::build`](incdx_netlist::Abstraction::build)) through
    /// the unchanged engine, phase 2 expands the implicated super-gates
    /// and resumes diagnosis on the concrete netlist restricted to those
    /// regions ([`RectifyConfig::focus`]), with replay validation of
    /// every mapped-back solution. Exhaustive runs always finish with an
    /// unrestricted concrete pass, so the reported solution set equals
    /// the flat run's; DEDC runs return early on a replay-validated
    /// restricted solution. Degenerate abstractions (no cone collapses)
    /// fall back to flat diagnosis. Telemetry lands in
    /// [`RectifyStats::abstraction`].
    pub hierarchical: bool,
    /// Multi-observation batching: path-trace marks every sampled
    /// failing vector in one bit-parallel reverse-topological pass
    /// (`path_trace_counts_batched`) instead of one depth-first walk per
    /// observation. Bit-identical marked-line counts; only
    /// [`RectifyStats::path_trace_batches`] /
    /// [`RectifyStats::observations_batched`] and wall time differ.
    pub batch_obs: bool,
    /// Restricts diagnosis to a sorted set of suspect lines: path-trace
    /// marks outside the set are discarded before ranking, so the tree
    /// only ever proposes corrections on focused lines. `None` = no
    /// restriction. Set internally by hierarchical phase 2; exposed for
    /// harnesses that already know the implicated region.
    pub focus: Option<Vec<GateId>>,
    /// Static-analysis candidate pruning: build the
    /// [`AnalysisTables`](incdx_analysis::AnalysisTables) for the job and
    /// drop candidate lines whose effects provably cannot repair the
    /// failing primary outputs before ranking/screening. Sound by
    /// construction: the reachability check is a no-op contract on real
    /// path-trace marks (every marked line reaches a failing PO), and the
    /// covering check only fires on last-correction-slot nodes of
    /// *exhaustive* runs, where dropping a provably dead candidate cannot
    /// change the reported minimal solution set (first-solution DEDC runs
    /// stay bit-identical by construction). Telemetry lands in
    /// [`RectifyStats::static_pruned`] / [`RectifyStats::prune_checks`] /
    /// [`RectifyStats::analysis`].
    pub prune: bool,
}

impl RectifyConfig {
    /// The DEDC setting: design-error corrections, first solution wins.
    pub fn dedc(num_errors: usize) -> Self {
        RectifyConfig {
            model: CorrectionModel::DesignErrors,
            max_corrections: num_errors,
            exhaustive: false,
            max_rounds: 48,
            max_nodes: 1024,
            max_solutions: 1,
            path_trace_vector_cap: 32,
            path_trace_fraction: 0.05,
            max_candidate_lines: 256,
            wire_source_limit: 0,
            max_candidates_per_node: 48,
            ladder: default_ladder(),
            theorem_floor: true,
            time_limit: None,
            traversal: TraversalKind::RoundRobinBfs,
            jobs: 1,
            dispatch: false,
            incremental: true,
            matrix_cache_bytes: 256 << 20,
            sparse: true,
            audit: false,
            limits: RectifyLimits::default(),
            chaos: None,
            hierarchical: false,
            batch_obs: false,
            focus: None,
            prune: false,
        }
    }

    /// The stuck-at diagnosis setting: exhaustive search for every minimal
    /// equivalent fault tuple of size ≤ `num_faults`. Screening runs on
    /// Theorem 1 alone (`h2 = |V_err|/N` via the theorem floor; `h1`/`h3`
    /// disabled) so no valid tuple is pruned by the aggressive heuristics
    /// — the paper's "exact performance" requirement of §4.1.
    pub fn stuck_at_exhaustive(num_faults: usize) -> Self {
        RectifyConfig {
            model: CorrectionModel::StuckAt,
            max_corrections: num_faults,
            exhaustive: true,
            max_rounds: 100_000,
            max_nodes: 20_000,
            max_solutions: 10_000,
            path_trace_vector_cap: 32,
            path_trace_fraction: 1.0,
            max_candidate_lines: usize::MAX,
            wire_source_limit: 0,
            max_candidates_per_node: usize::MAX,
            ladder: vec![ParamLevel::exhaustive()],
            theorem_floor: true,
            time_limit: None,
            traversal: TraversalKind::RoundRobinBfs,
            jobs: 1,
            dispatch: false,
            incremental: true,
            matrix_cache_bytes: 256 << 20,
            sparse: true,
            audit: false,
            limits: RectifyLimits::default(),
            chaos: None,
            hierarchical: false,
            batch_obs: false,
            focus: None,
            prune: false,
        }
    }
}

/// A valid correction tuple: applying `corrections` to the base netlist
/// makes it match the reference on every vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Solution {
    /// The corrections, in application order.
    pub corrections: Vec<Correction>,
}

impl Solution {
    /// The distinct lines of the tuple.
    pub fn lines(&self) -> Vec<GateId> {
        let mut v: Vec<GateId> = self.corrections.iter().map(|c| c.line()).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Interprets the tuple as stuck-at faults, if every correction is a
    /// constant (always true in [`CorrectionModel::StuckAt`] runs).
    pub fn stuck_at_tuple(&self) -> Option<Vec<StuckAt>> {
        let mut out = Vec::with_capacity(self.corrections.len());
        for c in &self.corrections {
            out.push(StuckAt::new(c.line(), c.as_stuck_at()?));
        }
        out.sort();
        Some(out)
    }
}

/// Counters and timings of a run (Table 2's diagnosis/correction columns
/// come straight from here).
#[derive(Debug, Clone, Default)]
pub struct RectifyStats {
    /// Name of the traversal strategy that drove the run (empty before
    /// the first run).
    pub traversal: &'static str,
    /// Name of the evaluation backend that prepared the run's nodes
    /// (empty before the first run).
    pub evaluator: &'static str,
    /// Decision-tree nodes evaluated (the paper's "nodes" column).
    pub nodes: usize,
    /// Node evaluations that skipped diagnosis + screening because the
    /// child could never join the tree (depth or node cap reached) — the
    /// node was still prepared and solution-checked.
    pub expansions_skipped: usize,
    /// Rounds executed.
    pub rounds: usize,
    /// Time in the diagnosis stage (path-trace + heuristic 1).
    pub diagnosis_time: Duration,
    /// Time in the correction stage (enumeration + screening + ranking).
    pub correction_time: Duration,
    /// Time simulating node circuits.
    pub simulation_time: Duration,
    /// Time in path-trace marking (a component of `diagnosis_time`).
    pub path_trace_time: Duration,
    /// Time ranking suspect lines with heuristic 1 (the flip-and-propagate
    /// pass; the other component of `diagnosis_time`).
    pub rank_time: Duration,
    /// Time in the screening stage proper — heuristic-2 enumeration plus
    /// heuristic-3 cone propagation (`correction_time` minus final
    /// sorting/truncation).
    pub screen_time: Duration,
    /// Total time evaluating decision-tree nodes (simulate + diagnose +
    /// screen; the sum over all nodes).
    pub evaluate_time: Duration,
    /// Time in the static pruning stage (a component of
    /// `diagnosis_time`; zero when pruning is off).
    pub prune_time: Duration,
    /// Corrections evaluated against heuristic 2.
    pub corrections_screened: usize,
    /// Corrections surviving both screens (before the per-node cap).
    pub corrections_qualified: usize,
    /// Suspect lines rejected because their heuristic-1 correcting
    /// potential fell below the ladder level's `h1` threshold.
    pub lines_rejected_h1: usize,
    /// Corrections rejected by heuristic 2 (the `V_err` bit-complement
    /// test of Theorem 1), including candidates with no evaluable output
    /// row.
    pub corrections_rejected_h2: usize,
    /// Corrections rejected by heuristic 3 (the `V_corr` preservation
    /// test). Invariant: `corrections_screened ==
    /// corrections_rejected_h2 + corrections_rejected_h3 +
    /// corrections_qualified`.
    pub corrections_rejected_h3: usize,
    /// Packed 64-vector words evaluated across every simulator, worker
    /// simulators included — the machine-independent measure of
    /// simulation work (see `incdx_sim::Simulator::words_simulated`).
    pub words_simulated: u64,
    /// Gate evaluations triggered by change-bounded cone propagation
    /// (`Simulator::run_cone_events`), across every simulator.
    pub events_propagated: u64,
    /// Packed words *not* evaluated because the change-bounded walk saw no
    /// changed fanin — simulation work avoided relative to plain cone
    /// resimulation.
    pub words_skipped: u64,
    /// All-zero blocks the sparse kernel skipped without touching, summed
    /// over cone propagation and screening popcounts
    /// ([`RectifyConfig::sparse`]; 0 when sparse mode is off).
    pub blocks_skipped: u64,
    /// Rows/operations the sparse kernel evaluated block-restricted.
    pub sparse_rows: u64,
    /// Operations where sparse mode was on but the dense path ran anyway
    /// (rows narrower than one block, or a mask with nothing to skip).
    pub dense_fallbacks: u64,
    /// Memoized fanout-cone lookups served from a [`ConeCache`] instead of
    /// recomputed.
    pub cone_cache_hits: u64,
    /// Node evaluations that started from a cached parent value matrix
    /// instead of a from-scratch resimulation.
    pub matrix_cache_hits: u64,
    /// Entries evicted from the node value-matrix cache by the byte budget.
    pub matrix_cache_evictions: u64,
    /// Worker-utilization telemetry aggregated over every parallel
    /// screening section of the run.
    pub parallel: ParallelTelemetry,
    /// Wire-source candidates dropped by the per-line cap, summed.
    pub wire_sources_truncated: usize,
    /// Candidates dropped by `max_candidates_per_node`, summed.
    pub candidates_truncated: usize,
    /// Suspect lines dropped by `max_candidate_lines`, summed.
    pub lines_truncated: usize,
    /// Deepest parameter-ladder level any node had to relax to.
    pub deepest_ladder_level: usize,
    /// Invariant checks performed by the opt-in audit layer
    /// ([`RectifyConfig::audit`]; 0 when the audit is off).
    pub audit_checks: u64,
    /// Audit checks that failed. Always 0 on a healthy engine; a nonzero
    /// value means an incremental evaluation diverged from its
    /// from-scratch replay or a reported solution did not verify.
    pub audit_violations: u64,
    /// True when a budget (rounds, nodes, solutions, time) cut the search.
    pub truncated: bool,
    /// Every recovery the engine performed instead of aborting — worker
    /// panics retried serially, audit repairs, parallel→serial fallback
    /// — in occurrence order. Empty on an undisturbed run.
    pub degradations: Vec<DegradationEvent>,
    /// Fault-injection tally when the run was chaos-armed
    /// ([`RectifyConfig::chaos`]); `None` otherwise.
    pub chaos: Option<ChaosSummary>,
    /// Frontier-dispatcher telemetry when the run was dispatch-armed
    /// ([`RectifyConfig::dispatch`] with more than one worker), merged
    /// across ladder levels; `None` otherwise. Purely observational:
    /// the speculative counters here never feed back into the search.
    pub dispatch: Option<DispatchTelemetry>,
    /// Hierarchical-diagnosis telemetry when the run was armed with
    /// [`RectifyConfig::hierarchical`] and the abstraction was not
    /// degenerate; `None` otherwise (including flat fallbacks).
    pub abstraction: Option<AbstractionStats>,
    /// Bit-parallel batched path-trace passes run
    /// ([`RectifyConfig::batch_obs`]; 0 when batching is off).
    pub path_trace_batches: u64,
    /// Failing-vector observations covered by those batched passes —
    /// each would have been its own depth-first walk without batching.
    pub observations_batched: u64,
    /// Candidate lines dropped by the static pruning layer
    /// ([`RectifyConfig::prune`]; 0 when pruning is off).
    pub static_pruned: u64,
    /// Candidate lines examined by the static pruning layer (each is one
    /// reachability check, plus a covering check on last-slot exhaustive
    /// nodes).
    pub prune_checks: u64,
    /// Static-analysis telemetry when the run was armed with
    /// [`RectifyConfig::prune`]; `None` otherwise. In hierarchical runs
    /// this is the sum over the child sessions' tables.
    pub analysis: Option<AnalysisStats>,
    /// Structural fault-equivalence summary, computed on the base netlist
    /// whenever an exhaustive stuck-at run starts (independent of
    /// pruning); `None` for other modes. The paper's Table-1 "equivalent
    /// fault classes" numbers come from here.
    pub fault_classes: Option<FaultClassSummary>,
}

/// Telemetry of the static-analysis tables behind candidate pruning
/// ([`RectifyConfig::prune`]); lands in [`RectifyStats::analysis`] and
/// the JSON report's `"analysis"` object.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AnalysisStats {
    /// Lines the ternary lattice proved constant.
    pub const_lines: usize,
    /// Lines with at least one strict output-side dominator.
    pub dominated_lines: usize,
    /// Dominator tables rebuilt after failing their structural
    /// self-check (nonzero only under chaos corruption).
    pub table_rebuilds: u64,
}

/// Structural fault-equivalence classes of the base netlist, from
/// [`incdx_atpg::FaultClasses`]; lands in [`RectifyStats::fault_classes`]
/// and the JSON report's `"fault_classes"` object.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultClassSummary {
    /// Number of structural equivalence classes.
    pub classes: usize,
    /// Total collapsed stuck-at faults (2 per line).
    pub faults: usize,
    /// One representative per class, formatted `line/polarity` (line
    /// name when available, else the `n<id>` display form).
    pub representatives: Vec<String>,
}

/// Telemetry of one hierarchical run's abstraction and refinement
/// ([`RectifyConfig::hierarchical`]); lands in
/// [`RectifyStats::abstraction`] and the JSON report's `"abstraction"`
/// object.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AbstractionStats {
    /// Fanout-free cones collapsed into super-gates.
    pub super_gates: usize,
    /// Gates in the concrete netlist.
    pub concrete_gates: usize,
    /// Gates in the abstract netlist phase 1 diagnosed.
    pub abstract_gates: usize,
    /// `abstract_gates / concrete_gates` (1.0 = nothing collapsed).
    pub collapse_ratio: f64,
    /// Concrete gates the implicated super-gates expanded to — the size
    /// of phase 2's focus set.
    pub suspects_expanded: usize,
    /// Concrete diagnosis rounds after phase 1: 1 for a restricted pass
    /// that sufficed, 2 when the unrestricted pass also ran.
    pub refinement_rounds: usize,
    /// Decision-tree nodes evaluated by the abstract phase.
    pub phase1_nodes: usize,
    /// Decision-tree nodes evaluated by the concrete phases.
    pub phase2_nodes: usize,
}

/// The outcome of [`Rectifier::run`].
#[derive(Debug, Clone)]
pub struct RectifyResult {
    /// Valid correction tuples, in discovery order. In exhaustive mode
    /// these are deduplicated and minimal (no tuple is a superset of
    /// another). An empty-corrections solution means the netlist already
    /// matched the reference.
    pub solutions: Vec<Solution>,
    /// Typed outcome of the run. Precedence when several apply:
    /// cancelled > deadline > budget > partial > degraded > exact.
    pub verdict: Verdict,
    /// Best still-open correction tuples when the run stopped early (or
    /// was truncated without finding a solution), ranked ascending by
    /// remaining failing vectors. Empty on solved, unconstrained runs.
    pub partials: Vec<PartialSolution>,
    /// Resumable search snapshot, captured only on limit/cancel stops
    /// (`None` otherwise). Serialize with [`Checkpoint::to_json`] and
    /// continue later via [`Rectifier::resume`].
    pub checkpoint: Option<Checkpoint>,
    /// Search statistics.
    pub stats: RectifyStats,
}

impl RectifyResult {
    /// Distinct lines over all solutions — the paper's "# sites" column.
    pub fn distinct_sites(&self) -> usize {
        let mut lines: Vec<GateId> = self.solutions.iter().flat_map(|s| s.lines()).collect();
        lines.sort();
        lines.dedup();
        lines.len()
    }
}

enum NodeEval {
    Solved,
    Dead,
    Open {
        candidates: Vec<RankedCorrection>,
        failing: usize,
    },
}

/// What one ladder level's traversal produced, including any early-stop
/// bookkeeping for the run loop.
struct LevelOutcome {
    solutions: Vec<Solution>,
    /// `Some` when a limit/cancel stop cut the level short.
    stop: Option<StopReason>,
    /// Ranked open frontier (populated on stops and solution-less
    /// exits).
    partials: Vec<PartialSolution>,
    /// Captured only together with `stop`.
    checkpoint: Option<Checkpoint>,
}

/// Rehydrated search state handed to [`Rectifier::run_inner`] by
/// [`Rectifier::resume`]: the level to re-enter and the mid-plan
/// position to continue from.
struct ResumeState {
    level: usize,
    iterations: usize,
    plan: Vec<usize>,
    plan_pos: usize,
    tree: Tree,
    visited: HashSet<Vec<Correction>>,
    solutions: Vec<Solution>,
}

/// The incremental rectification engine (see the crate docs for the
/// algorithm and the crate example for usage).
///
/// The engine is a thin loop over three pluggable layers: a
/// [`Traversal`] strategy schedules which open decision-tree node
/// expands next, an [`Evaluator`] backend prepares node circuits and
/// value matrices, and the [`CandidatePipeline`] turns a still-failing
/// node into its ranked candidate list. [`Rectifier::new`] wires the
/// layers from the [`RectifyConfig`]; [`Rectifier::with_traversal`] and
/// [`Rectifier::with_evaluator`] swap in custom ones.
#[derive(Debug)]
pub struct Rectifier {
    base: Netlist,
    base_inputs: Vec<GateId>,
    vectors: PackedMatrix,
    spec: Response,
    config: RectifyConfig,
    stats: RectifyStats,
    /// Memoized fanout cones of the *base* netlist, reused across every
    /// root evaluation and ladder level (swapped into the node-local cone
    /// cache while the root node is being evaluated).
    base_cones: ConeCache,
    traversal: Box<dyn Traversal>,
    evaluator: Box<dyn Evaluator>,
    /// Cooperative cancellation handle, polled once per scheduled plan
    /// item (see [`Rectifier::cancel_token`]).
    cancel: CancelToken,
    /// Shared chaos-injection state when [`RectifyConfig::chaos`] is
    /// armed (the evaluator stack and the pipeline workers draw from
    /// the same seeded stream).
    chaos: Option<Arc<ChaosState>>,
    /// Latched true after repeated recovered worker panics: screening
    /// runs serially for the rest of the run (results are bit-identical
    /// for every jobs count, so the fallback is lossless).
    degrade_serial: bool,
    /// Static-analysis tables of the *base* netlist when
    /// [`RectifyConfig::prune`] is armed; the pipeline consults them only
    /// at the search root (whose netlist is the base) and recomputes
    /// per-node facts elsewhere.
    analysis: Option<incdx_analysis::AnalysisTables>,
    /// Harness label stamped into captured checkpoints.
    checkpoint_label: String,
    /// Harness trial seed stamped into captured checkpoints.
    checkpoint_seed: u64,
}

impl Rectifier {
    /// Creates a session rectifying `netlist` toward the reference
    /// responses `spec` under the test vectors `vectors` (one row per
    /// primary input of `netlist`).
    ///
    /// `spec` must have been captured/compared against the same vector
    /// set and an identical output ordering.
    ///
    /// # Errors
    ///
    /// [`IncdxError::SequentialNetlist`] if the netlist holds state
    /// elements (scan-convert first), [`IncdxError::ShapeMismatch`] if
    /// the vector or reference shapes disagree with the netlist, and
    /// [`IncdxError::Lint`] if the pre-flight lint pass finds
    /// error-severity structural hazards (combinational cycles, undriven
    /// wires, arity violations, …) that would make simulation results
    /// undefined. Lint warnings and advisories never block construction.
    pub fn new(
        netlist: Netlist,
        vectors: PackedMatrix,
        spec: Response,
        config: RectifyConfig,
    ) -> Result<Self, IncdxError> {
        if let Err(NetlistError::Sequential { dffs }) = netlist.ensure_combinational() {
            return Err(IncdxError::SequentialNetlist { dffs });
        }
        if vectors.rows() != netlist.inputs().len() {
            return Err(IncdxError::ShapeMismatch {
                what: "vector rows (one per primary input)",
                expected: netlist.inputs().len(),
                got: vectors.rows(),
            });
        }
        if spec.po_values().rows() != netlist.outputs().len() {
            return Err(IncdxError::ShapeMismatch {
                what: "reference output rows",
                expected: netlist.outputs().len(),
                got: spec.po_values().rows(),
            });
        }
        if spec.po_values().num_vectors() != vectors.num_vectors() {
            return Err(IncdxError::ShapeMismatch {
                what: "reference vector count",
                expected: vectors.num_vectors(),
                got: spec.po_values().num_vectors(),
            });
        }
        // Pre-flight lint: refuse structurally hazardous netlists (cycles,
        // undriven wires, bad arities) up front instead of producing
        // undefined simulation results deep inside the search.
        let lint_errors: Vec<incdx_lint::Diagnostic> = incdx_lint::lint_netlist(&netlist)
            .into_iter()
            .filter(|d| d.severity == incdx_lint::Severity::Error)
            .collect();
        if !lint_errors.is_empty() {
            return Err(IncdxError::Lint(lint_errors));
        }
        let base_inputs = netlist.inputs().to_vec();
        let base_cones = ConeCache::new(&netlist);
        let mut traversal = config.traversal.build();
        // Seed the strategy with SCOAP observability unconditionally —
        // not only when pruning is armed — so `--prune`/`--no-prune`
        // schedules stay identical and the prune-equivalence contract
        // holds bit-for-bit. (The netlist is combinational here; SCOAP
        // requires exactly that.)
        let scoap = incdx_atpg::Scoap::compute(&netlist);
        let co: Vec<u32> = netlist.ids().map(|id| scoap.co(id)).collect();
        traversal.seed_observability(&co);
        let chaos = config.chaos.map(ChaosState::new);
        // Under the frontier dispatcher the master evaluates serially
        // (workers carry the parallelism), so its own stack skips the
        // per-node `Parallel` fan-out — exactly one layer parallelizes.
        let evaluator = if dispatch_armed(&config) {
            let mut serial = config.clone();
            serial.jobs = 1;
            build_evaluator(&serial, chaos.clone())
        } else {
            build_evaluator(&config, chaos.clone())
        };
        Ok(Rectifier {
            base: netlist,
            base_inputs,
            vectors,
            spec,
            config,
            stats: RectifyStats::default(),
            base_cones,
            traversal,
            evaluator,
            cancel: CancelToken::new(),
            chaos,
            degrade_serial: false,
            analysis: None,
            checkpoint_label: String::new(),
            checkpoint_seed: 0,
        })
    }

    /// A clone of the run's cancellation token. Hand it to another
    /// thread (or arm [`CancelToken::trip_after`] in a test) and call
    /// [`CancelToken::cancel`]; the engine notices at its next per-item
    /// poll, stops with [`Verdict::Cancelled`], and captures a
    /// checkpoint.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Replaces the cancellation token (e.g. to share one token across
    /// several sessions).
    pub fn set_cancel_token(&mut self, token: CancelToken) {
        self.cancel = token;
    }

    /// Stamps a harness label and trial seed into any checkpoint this
    /// session captures, so a driver can later re-dispatch the resumed
    /// run to the right experiment.
    pub fn set_checkpoint_meta(&mut self, label: impl Into<String>, trial_seed: u64) {
        self.checkpoint_label = label.into();
        self.checkpoint_seed = trial_seed;
    }

    /// Replaces the traversal strategy (defaults to the one selected by
    /// [`RectifyConfig::traversal`]).
    pub fn with_traversal(mut self, traversal: Box<dyn Traversal>) -> Self {
        self.traversal = traversal;
        self
    }

    /// Replaces the evaluation backend (defaults to the one selected by
    /// [`RectifyConfig::incremental`] / [`RectifyConfig::jobs`]).
    pub fn with_evaluator(mut self, evaluator: Box<dyn Evaluator>) -> Self {
        self.evaluator = evaluator;
        self
    }

    /// Replaces the base-netlist cone cache with a pre-warmed one —
    /// typically a cheap [`ConeCache`] clone handed out by an
    /// artifact-interning layer, so successive sessions (or successive
    /// time slices of a resumable session) on the same circuit skip
    /// recomputing fanout cones. Purely a cache swap: results are
    /// unaffected because every cone is a pure function of the base
    /// netlist.
    ///
    /// # Errors
    ///
    /// [`IncdxError::ShapeMismatch`] if `cones` was built for a netlist
    /// of a different size (the telltale of a stale cache).
    pub fn with_base_cones(mut self, cones: ConeCache) -> Result<Self, IncdxError> {
        if cones.capacity() != self.base.len() {
            return Err(IncdxError::ShapeMismatch {
                what: "cone cache slots",
                expected: self.base.len(),
                got: cones.capacity(),
            });
        }
        self.base_cones = cones;
        Ok(self)
    }

    /// The session's current base-netlist cone cache (read-only). An
    /// interning layer clones this after a run to keep the warmed cones
    /// for the circuit's next session or time slice.
    pub fn base_cones(&self) -> &ConeCache {
        &self.base_cones
    }

    /// Runs the search. The engine is reusable: statistics restart at
    /// zero on every call, and memoized backend state (base matrix, node
    /// matrix cache) carries over — results are unaffected because every
    /// cached matrix is a pure function of the base circuit and the
    /// corrections applied; call [`Rectifier::reset`] first for a
    /// cold-state run with pristine work counters.
    pub fn run(&mut self) -> RectifyResult {
        if self.config.hierarchical {
            return match self.run_hierarchical(None) {
                Ok(result) => result,
                // Unreachable without a resume checkpoint (resume
                // validation is the orchestrator's only error source),
                // but the engine never panics: fall back to flat.
                Err(_) => self.run_inner(None),
            };
        }
        self.run_inner(None)
    }

    /// Continues an interrupted search from a [`Checkpoint`] captured by
    /// an earlier limit/cancel stop. The checkpoint must pin the same
    /// base netlist (structural fingerprint + gate count) and vector
    /// count as this session; the rehydrated tree is re-checked against
    /// the decision-tree invariants before the search restarts. A
    /// resumed run (without limits) reaches a solution set bit-identical
    /// to an uninterrupted one, because every evaluator backend is a
    /// pure function of the base circuit and the applied corrections.
    ///
    /// One caveat: a checkpoint captured after an *asynchronous*
    /// [`CancelToken::cancel`] (as opposed to a deadline, budget, or
    /// deterministic trip) may have cut a node's screening short, so its
    /// resumed search explores a subset frontier — still invariant-clean
    /// and replay-valid, but not necessarily identical.
    ///
    /// # Errors
    ///
    /// [`IncdxError::Checkpoint`] when the checkpoint pins a different
    /// circuit or vector set, targets an unknown ladder level, or fails
    /// the tree invariant audit.
    pub fn resume(&mut self, checkpoint: &Checkpoint) -> Result<RectifyResult, IncdxError> {
        let fail = |reason: String| IncdxError::Checkpoint { reason };
        if checkpoint.version != CHECKPOINT_VERSION {
            return Err(fail(format!(
                "unsupported checkpoint version {} (expected {CHECKPOINT_VERSION})",
                checkpoint.version
            )));
        }
        // A nonzero phase means the checkpoint was captured inside the
        // hierarchical orchestrator: route it back there (phase 0 is a
        // plain flat search and resumes below, in either configuration).
        if checkpoint.phase != 0 {
            if !self.config.hierarchical {
                return Err(fail(format!(
                    "checkpoint was captured in hierarchical phase {} but this session is flat",
                    checkpoint.phase
                )));
            }
            return self.run_hierarchical(Some(checkpoint));
        }
        if checkpoint.base_gates != self.base.len()
            || checkpoint.base_hash != netlist_fingerprint(&self.base)
        {
            return Err(fail(
                "checkpoint pins a different base netlist (gate count or structural fingerprint mismatch)"
                    .to_string(),
            ));
        }
        if checkpoint.vectors != self.vectors.num_vectors() {
            return Err(fail(format!(
                "checkpoint pins {} vectors, session has {}",
                checkpoint.vectors,
                self.vectors.num_vectors()
            )));
        }
        if checkpoint.level >= self.config.ladder.len() {
            return Err(fail(format!(
                "checkpoint ladder level {} out of range (ladder has {} levels)",
                checkpoint.level,
                self.config.ladder.len()
            )));
        }
        if checkpoint.nodes.is_empty() {
            return Err(fail("checkpoint holds an empty decision tree".to_string()));
        }
        let nodes: Vec<Node> = checkpoint
            .nodes
            .iter()
            .map(|n| {
                let mut node = Node::new(n.corrections.clone(), n.candidates.clone(), n.failing);
                node.next = n.next;
                node
            })
            .collect();
        let tree = Tree::from_saved(nodes, self.config.max_corrections, self.config.max_nodes);
        let bad = tree.invariant_violations();
        if bad > 0 {
            return Err(fail(format!(
                "checkpoint tree fails {bad} decision-tree invariant(s)"
            )));
        }
        let resume = ResumeState {
            level: checkpoint.level,
            iterations: checkpoint.iterations,
            plan: checkpoint.plan.clone(),
            plan_pos: checkpoint.plan_pos,
            tree,
            visited: checkpoint.visited.iter().cloned().collect(),
            solutions: checkpoint
                .solutions
                .iter()
                .map(|c| Solution {
                    corrections: c.clone(),
                })
                .collect(),
        };
        Ok(self.run_inner(Some(resume)))
    }

    fn run_inner(&mut self, resume: Option<ResumeState>) -> RectifyResult {
        let started = Instant::now();
        self.stats = RectifyStats::default();
        self.stats.traversal = self.traversal.name();
        self.stats.evaluator = self.evaluator.name();
        self.degrade_serial = false;
        self.arm_analysis();
        self.stats.fault_classes = fault_class_summary(&self.base, &self.config);
        // Global parameter relaxation (§3.3): the whole tree search runs at
        // one `h1/h2/h3` level; only if it "returns with no corrections" —
        // no solution — does the run restart at the next, looser level. A
        // resumed run re-enters the ladder at the checkpointed level.
        let ladder = self.config.ladder.clone();
        let start_level = resume.as_ref().map_or(0, |r| r.level);
        let mut resume_state = resume;
        let mut solutions = Vec::new();
        let mut partials = Vec::new();
        let mut checkpoint = None;
        let mut stop = None;
        for (level_idx, level) in ladder.iter().enumerate().skip(start_level) {
            self.stats.deepest_ladder_level = level_idx;
            let outcome = self.search_level(level, level_idx, started, resume_state.take());
            solutions = outcome.solutions;
            partials = outcome.partials;
            if outcome.stop.is_some() {
                stop = outcome.stop;
                checkpoint = outcome.checkpoint;
                break;
            }
            let out_of_time = self
                .config
                .time_limit
                .is_some_and(|limit| started.elapsed() > limit);
            if !solutions.is_empty() || out_of_time {
                break;
            }
        }
        // Exhaustive mode reports only minimal tuples.
        if self.config.exhaustive {
            solutions = minimal_solutions(solutions);
        }
        if self.config.audit {
            self.audit_solutions(&solutions);
        }
        // Fold every recovery into the run's degradation ledger, keeping
        // the events the candidate pipeline already recorded in place
        // (sparse-mask summary repairs).
        let mut degradations = std::mem::take(&mut self.stats.degradations);
        degradations.extend(self.evaluator.take_degradations());
        let panics = self.stats.parallel.panics_recovered;
        if panics > 0 {
            degradations.push(DegradationEvent::new(
                DegradationKind::WorkerPanic,
                panics,
                format!("{panics} screening worker panic(s) recovered by serial retry"),
            ));
        }
        if self.degrade_serial {
            degradations.push(DegradationEvent::new(
                DegradationKind::ParallelDisabled,
                1,
                "repeated worker panics latched screening to serial",
            ));
        }
        self.stats.degradations = degradations;
        self.stats.chaos = self.chaos.as_ref().map(|c| c.summary());
        let verdict = match stop {
            Some(StopReason::Cancelled) => Verdict::Cancelled,
            Some(StopReason::Deadline) => Verdict::DeadlineExceeded,
            Some(StopReason::Budget) => Verdict::BudgetExhausted,
            None if self.stats.truncated && solutions.is_empty() => Verdict::Partial {
                best_remaining_failures: partials.first().map_or(0, |p| p.remaining_failures),
            },
            None if !self.stats.degradations.is_empty() => Verdict::Degraded,
            None => Verdict::Exact,
        };
        RectifyResult {
            solutions,
            verdict,
            partials,
            checkpoint,
            stats: self.stats.clone(),
        }
    }

    /// Builds (or clears) the job's static-analysis tables per
    /// [`RectifyConfig::prune`], running the chaos
    /// corrupt→validate→rebuild cycle on the dominator table: a
    /// corrupted table must be caught by its structural self-check,
    /// rebuilt from the base netlist, and recorded as an
    /// [`DegradationKind::AnalysisRepair`] degradation.
    fn arm_analysis(&mut self) {
        self.analysis = None;
        if !self.config.prune {
            self.stats.analysis = None;
            return;
        }
        let mut tables = incdx_analysis::AnalysisTables::compute(&self.base);
        if let Some(chaos) = &self.chaos {
            chaos.maybe_corrupt_analysis(&mut tables.dominators);
        }
        let mut rebuilds = 0;
        if !tables.dominators.validate() {
            tables.dominators = incdx_analysis::DominatorTable::compute(&self.base);
            rebuilds = 1;
            self.stats.degradations.push(DegradationEvent::new(
                DegradationKind::AnalysisRepair,
                1,
                "dominator table failed its structural self-check; rebuilt from the base netlist",
            ));
        }
        self.stats.analysis = Some(AnalysisStats {
            const_lines: tables.constants.const_lines(),
            dominated_lines: tables.dominators.dominated_lines(),
            table_rebuilds: rebuilds,
        });
        self.analysis = Some(tables);
    }

    /// The two-level hierarchical orchestration
    /// ([`RectifyConfig::hierarchical`]).
    ///
    /// Phase 1 diagnoses the fanout-free-cone abstraction of the base
    /// netlist through an unchanged child session (the abstract netlist
    /// keeps the concrete input order and maps outputs 1:1, so the same
    /// vectors and reference response apply). The implicated
    /// super-gates then expand to their concrete members and phase 2
    /// resumes diagnosis on the concrete netlist restricted to that
    /// region ([`RectifyConfig::focus`]). A first-solution run returns
    /// as soon as a restricted solution replay-validates against the
    /// reference; exhaustive runs always finish with an unrestricted
    /// concrete pass and merge, so the reported solution set equals the
    /// flat run's by construction.
    ///
    /// Degenerate abstractions (nothing collapsed) and abstract-session
    /// construction failures fall back to flat diagnosis (the latter
    /// recorded as a [`DegradationKind::AbstractionRepair`]); a chaos
    /// -corrupted [`AbstractionMap`](incdx_netlist::AbstractionMap) is
    /// caught by its structural self-check and rebuilt, likewise
    /// recorded.
    ///
    /// `resume` carries a phase-stamped checkpoint: phases before the
    /// stamped one re-run deterministically (they reproduce the state
    /// the interrupted run had derived), the stamped phase resumes
    /// mid-plan, and later phases run normally — so the overall
    /// solution set matches an uninterrupted run's.
    fn run_hierarchical(
        &mut self,
        resume: Option<&Checkpoint>,
    ) -> Result<RectifyResult, IncdxError> {
        let started = Instant::now();
        self.stats = RectifyStats::default();
        self.stats.traversal = self.traversal.name();
        self.stats.evaluator = self.evaluator.name();
        self.stats.fault_classes = fault_class_summary(&self.base, &self.config);
        let resume_phase = resume.map_or(0, |c| c.phase);

        let mut abs = Abstraction::build(&self.base);
        if let Some(chaos) = &self.chaos {
            chaos.maybe_corrupt_abstraction(abs.map_mut());
        }
        if !abs.map().validate() {
            self.stats.degradations.push(DegradationEvent::new(
                DegradationKind::AbstractionRepair,
                1,
                "abstraction map failed its structural self-check; rebuilt from the base netlist",
            ));
            abs = Abstraction::build(&self.base);
        }
        if abs.is_degenerate() {
            // Nothing collapsed: the hierarchy has no leverage. Run flat
            // (`stats.abstraction` stays `None`, like a flat run).
            let pending = std::mem::take(&mut self.stats.degradations);
            return Ok(self.flat_fallback(pending));
        }

        let mut astats = AbstractionStats {
            super_gates: abs.map().super_gates(),
            concrete_gates: abs.map().concrete_len(),
            abstract_gates: abs.map().abstract_len(),
            collapse_ratio: abs.map().collapse_ratio(),
            suspects_expanded: 0,
            refinement_rounds: 0,
            phase1_nodes: 0,
            phase2_nodes: 0,
        };

        // Every child phase runs the unchanged generic engine: the same
        // configuration, minus the orchestration-only fields.
        let mut phase_cfg = self.config.clone();
        phase_cfg.hierarchical = false;
        phase_cfg.chaos = None;
        phase_cfg.focus = None;

        // ---- Phase 1: diagnose the abstraction ----
        let mut p1_cfg = phase_cfg.clone();
        p1_cfg.limits = remaining_limits(&self.config.limits, &self.stats, started);
        p1_cfg.time_limit = remaining_time(self.config.time_limit, started);
        let r1 = match self.run_child(
            abs.netlist().clone(),
            p1_cfg,
            if resume_phase == 1 { resume } else { None },
        ) {
            Ok(r) => r,
            Err(ChildError::Resume(e)) => return Err(e),
            Err(ChildError::Construct(e)) => {
                let mut pending = std::mem::take(&mut self.stats.degradations);
                pending.push(DegradationEvent::new(
                    DegradationKind::AbstractionRepair,
                    1,
                    format!(
                        "abstract session construction failed ({e}); fell back to flat diagnosis"
                    ),
                ));
                return Ok(self.flat_fallback(pending));
            }
        };
        astats.phase1_nodes = r1.stats.nodes;
        absorb_child(&mut self.stats, &r1.stats);
        if r1.verdict.is_early_stop() {
            // Phase-1 solutions/partials live in abstract gate-id space;
            // the checkpoint (pinning the abstract netlist) carries the
            // state forward instead.
            return Ok(self.finish_hierarchical(
                Vec::new(),
                Some(r1.verdict),
                Vec::new(),
                r1.checkpoint,
                1,
                astats,
            ));
        }

        // ---- Expand the implicated super-gates into the focus set ----
        let mut abstract_lines: Vec<GateId> = r1.solutions.iter().flat_map(|s| s.lines()).collect();
        if abstract_lines.is_empty() {
            abstract_lines = r1
                .partials
                .iter()
                .flat_map(|p| p.corrections.iter().map(|c| c.line()))
                .collect();
        }
        abstract_lines.sort();
        abstract_lines.dedup();
        let mut suspects: Vec<GateId> = abstract_lines
            .iter()
            .filter(|a| a.index() < abs.map().abstract_len())
            .flat_map(|&a| abs.map().members(a).iter().copied())
            .collect();
        suspects.sort();
        suspects.dedup();
        astats.suspects_expanded = suspects.len();

        // ---- Phase 2: concrete diagnosis restricted to the region ----
        let mut r2_solutions: Vec<Solution> = Vec::new();
        if !suspects.is_empty() {
            astats.refinement_rounds += 1;
            let mut p2_cfg = phase_cfg.clone();
            p2_cfg.focus = Some(suspects.clone());
            p2_cfg.limits = remaining_limits(&self.config.limits, &self.stats, started);
            p2_cfg.time_limit = remaining_time(self.config.time_limit, started);
            let r2 = match self.run_child(
                self.base.clone(),
                p2_cfg,
                if resume_phase == 2 { resume } else { None },
            ) {
                Ok(r) => r,
                Err(ChildError::Resume(e)) => return Err(e),
                Err(ChildError::Construct(e)) => {
                    let mut pending = std::mem::take(&mut self.stats.degradations);
                    pending.push(DegradationEvent::new(
                        DegradationKind::AbstractionRepair,
                        1,
                        format!(
                            "restricted session construction failed ({e}); fell back to flat diagnosis"
                        ),
                    ));
                    return Ok(self.flat_fallback(pending));
                }
            };
            astats.phase2_nodes += r2.stats.nodes;
            absorb_child(&mut self.stats, &r2.stats);
            if r2.verdict.is_early_stop() {
                return Ok(self.finish_hierarchical(
                    r2.solutions,
                    Some(r2.verdict),
                    r2.partials,
                    r2.checkpoint,
                    2,
                    astats,
                ));
            }
            if self.config.exhaustive {
                // Restricted solutions are a subset of the unrestricted
                // pass's; keep them for the merge below.
                r2_solutions = r2.solutions;
            } else if !r2.solutions.is_empty()
                && r2.solutions.iter().all(|s| self.replay_validates(s))
            {
                // First-solution mode: a replay-validated restricted
                // solution is the answer — this early return is the
                // hierarchical speedup.
                return Ok(self.finish_hierarchical(
                    r2.solutions,
                    None,
                    Vec::new(),
                    None,
                    0,
                    astats,
                ));
            }
            // First-solution fall-through: nothing found in the region
            // (or a solution failed replay — discarded); widen.
        }

        // ---- Phase 3: the unrestricted concrete pass ----
        astats.refinement_rounds += 1;
        let mut p3_cfg = phase_cfg.clone();
        p3_cfg.limits = remaining_limits(&self.config.limits, &self.stats, started);
        p3_cfg.time_limit = remaining_time(self.config.time_limit, started);
        let r3 = match self.run_child(
            self.base.clone(),
            p3_cfg,
            if resume_phase == 3 { resume } else { None },
        ) {
            Ok(r) => r,
            Err(ChildError::Resume(e)) => return Err(e),
            Err(ChildError::Construct(e)) => {
                let mut pending = std::mem::take(&mut self.stats.degradations);
                pending.push(DegradationEvent::new(
                    DegradationKind::AbstractionRepair,
                    1,
                    format!(
                        "unrestricted session construction failed ({e}); fell back to flat diagnosis"
                    ),
                ));
                return Ok(self.flat_fallback(pending));
            }
        };
        astats.phase2_nodes += r3.stats.nodes;
        absorb_child(&mut self.stats, &r3.stats);

        // Merge (exhaustive: dedupe + re-minimalize, so the set equals
        // the flat run's; first-solution: phase 3 found it or nothing).
        let mut seen: HashSet<Vec<Correction>> = HashSet::new();
        let mut merged = Vec::new();
        for s in r2_solutions.into_iter().chain(r3.solutions) {
            let mut key = s.corrections.clone();
            key.sort();
            if seen.insert(key) {
                merged.push(s);
            }
        }
        let solutions = if self.config.exhaustive {
            minimal_solutions(merged)
        } else {
            merged
        };
        if self.config.audit {
            self.audit_solutions(&solutions);
        }
        let partials = if solutions.is_empty() {
            r3.partials
        } else {
            Vec::new()
        };
        let stop = if r3.verdict.is_early_stop() {
            Some(r3.verdict)
        } else {
            None
        };
        let checkpoint = if stop.is_some() { r3.checkpoint } else { None };
        Ok(self.finish_hierarchical(solutions, stop, partials, checkpoint, 3, astats))
    }

    /// Constructs and runs one hierarchical child phase on `netlist`,
    /// sharing this session's vectors, reference response, cancellation
    /// token and checkpoint metadata. `resume` is a phase-stamped
    /// checkpoint to continue mid-plan; its phase is cleared before the
    /// child sees it (each child runs a plain flat search).
    fn run_child(
        &self,
        netlist: Netlist,
        config: RectifyConfig,
        resume: Option<&Checkpoint>,
    ) -> Result<RectifyResult, ChildError> {
        let mut child = Rectifier::new(netlist, self.vectors.clone(), self.spec.clone(), config)
            .map_err(ChildError::Construct)?;
        child.set_cancel_token(self.cancel.clone());
        child.set_checkpoint_meta(self.checkpoint_label.clone(), self.checkpoint_seed);
        match resume {
            Some(ckpt) => {
                let mut flat = ckpt.clone();
                flat.phase = 0;
                child.resume(&flat).map_err(ChildError::Resume)
            }
            None => Ok(child.run()),
        }
    }

    /// Seals a hierarchical run: stamps the phase into any captured
    /// checkpoint, publishes the abstraction telemetry and chaos tally,
    /// and derives the verdict with the same precedence as the flat
    /// loop (early stop > partial > degraded > exact).
    fn finish_hierarchical(
        &mut self,
        solutions: Vec<Solution>,
        stop: Option<Verdict>,
        partials: Vec<PartialSolution>,
        mut checkpoint: Option<Checkpoint>,
        phase: u32,
        astats: AbstractionStats,
    ) -> RectifyResult {
        if let Some(c) = &mut checkpoint {
            c.phase = phase;
        }
        self.stats.abstraction = Some(astats);
        self.stats.chaos = self.chaos.as_ref().map(|c| c.summary());
        let verdict = match stop {
            Some(v) => v,
            None if solutions.is_empty() && self.stats.truncated => Verdict::Partial {
                best_remaining_failures: partials.first().map_or(0, |p| p.remaining_failures),
            },
            None if !self.stats.degradations.is_empty() => Verdict::Degraded,
            None => Verdict::Exact,
        };
        RectifyResult {
            solutions,
            verdict,
            partials,
            checkpoint,
            stats: self.stats.clone(),
        }
    }

    /// Runs the plain flat search after a hierarchical fallback,
    /// prepending `pending` degradations (the reason for the fallback)
    /// to the run's ledger.
    fn flat_fallback(&mut self, pending: Vec<DegradationEvent>) -> RectifyResult {
        let mut result = self.run_inner(None);
        if !pending.is_empty() {
            let mut all = pending;
            all.extend(std::mem::take(&mut result.stats.degradations));
            result.stats.degradations = all.clone();
            self.stats.degradations = all;
            if matches!(result.verdict, Verdict::Exact) {
                result.verdict = Verdict::Degraded;
            }
        }
        result
    }

    /// Replays one solution from scratch against the reference: apply
    /// the corrections to a fresh copy of the base netlist, simulate on
    /// a private simulator, compare. The hierarchical orchestrator
    /// gates first-solution returns on this — a restricted phase-2
    /// solution must also rectify the full concrete netlist.
    fn replay_validates(&self, s: &Solution) -> bool {
        let mut netlist = self.base.clone();
        if !s.corrections.iter().all(|c| c.apply(&mut netlist).is_ok()) {
            return false;
        }
        let mut sim = incdx_sim::Simulator::new();
        let vals = sim.run_for_inputs(&netlist, &self.base_inputs, &self.vectors);
        Response::compare(&netlist, &vals, &self.spec).matches()
    }

    /// The audit layer's end-of-run gold check: re-apply every reported
    /// tuple to the base netlist, simulate from scratch on a private
    /// simulator, and verify the result matches the reference. Any
    /// divergence is an engine bug (a false solution), recorded in
    /// [`RectifyStats::audit_violations`] — and fatal in debug builds.
    fn audit_solutions(&mut self, solutions: &[Solution]) {
        let mut sim = incdx_sim::Simulator::new();
        for s in solutions {
            self.stats.audit_checks += 1;
            let mut netlist = self.base.clone();
            let applied = s.corrections.iter().all(|c| c.apply(&mut netlist).is_ok());
            let verified = applied && {
                let vals = sim.run_for_inputs(&netlist, &self.base_inputs, &self.vectors);
                Response::compare(&netlist, &vals, &self.spec).matches()
            };
            if !verified {
                self.stats.audit_violations += 1;
                debug_assert!(false, "audit: reported solution failed replay: {s:?}");
            }
        }
        // Minimality invariant (exhaustive mode): no reported tuple may be
        // a strict superset of another.
        if self.config.exhaustive {
            let sets: Vec<Vec<Correction>> = solutions
                .iter()
                .map(|s| {
                    let mut v = s.corrections.clone();
                    v.sort();
                    v
                })
                .collect();
            for (i, a) in sets.iter().enumerate() {
                self.stats.audit_checks += 1;
                let dominated = sets
                    .iter()
                    .enumerate()
                    .any(|(j, b)| i != j && b.len() < a.len() && b.iter().all(|c| a.contains(c)));
                if dominated {
                    self.stats.audit_violations += 1;
                    debug_assert!(false, "audit: non-minimal tuple reported: {a:?}");
                }
            }
        }
    }

    /// Returns the engine to its just-constructed state: statistics
    /// zeroed, backend caches and memoized matrices dropped, cone cache
    /// rebuilt. After `reset`, [`Rectifier::run`] reproduces a fresh
    /// engine's result *and* work counters exactly.
    pub fn reset(&mut self) {
        self.stats = RectifyStats::default();
        self.evaluator.reset();
        self.base_cones = ConeCache::new(&self.base);
    }

    /// One full tree traversal at a fixed parameter level (entered
    /// mid-plan when resuming from a checkpoint). When the frontier
    /// dispatcher is armed, this wrapper owns its per-level lifecycle:
    /// spawn the worker pool, run the traversal with speculation, then
    /// seal — join the workers and fold their telemetry/degradation
    /// ledgers into the run stats (wasted speculations included, so
    /// chaos fault-to-degradation accounting stays 1:1).
    fn search_level(
        &mut self,
        level: &ParamLevel,
        level_idx: usize,
        started: Instant,
        resume: Option<ResumeState>,
    ) -> LevelOutcome {
        let dispatcher = if self.dispatch_armed() {
            Some(Dispatcher::new(
                &self.base,
                &self.base_inputs,
                &self.vectors,
                &self.spec,
                &self.config,
                *level,
                self.cancel.clone(),
                self.chaos.clone(),
            ))
        } else {
            None
        };
        let outcome =
            self.search_level_inner(level, level_idx, started, resume, dispatcher.as_ref());
        if let Some(dispatcher) = dispatcher {
            let finish = dispatcher.finish();
            self.stats.degradations.extend(finish.degradations);
            self.stats.parallel.merge(&finish.parallel);
            match &mut self.stats.dispatch {
                Some(telemetry) => telemetry.merge(&finish.telemetry),
                None => self.stats.dispatch = Some(finish.telemetry),
            }
        }
        outcome
    }

    /// Is the work-stealing frontier dispatcher in effect for this run?
    fn dispatch_armed(&self) -> bool {
        dispatch_armed(&self.config)
    }

    /// The traversal loop proper (see [`Rectifier::search_level`]).
    fn search_level_inner(
        &mut self,
        level: &ParamLevel,
        level_idx: usize,
        started: Instant,
        resume: Option<ResumeState>,
        disp: Option<&Dispatcher>,
    ) -> LevelOutcome {
        let done = |solutions: Vec<Solution>| LevelOutcome {
            solutions,
            stop: None,
            partials: Vec::new(),
            checkpoint: None,
        };
        let out_of_time = |s: &Self| {
            s.config
                .time_limit
                .is_some_and(|limit| started.elapsed() > limit)
        };

        let (mut tree, mut visited, mut solutions, mut iterations, mut plan, mut plan_pos) =
            match resume {
                Some(r) => (
                    r.tree,
                    r.visited,
                    r.solutions,
                    r.iterations,
                    r.plan,
                    r.plan_pos,
                ),
                None => {
                    let mut tree = Tree::new(self.config.max_corrections, self.config.max_nodes);
                    match self.evaluate(&[], level, true, disp) {
                        NodeEval::Solved => {
                            return done(vec![Solution {
                                corrections: vec![],
                            }]);
                        }
                        NodeEval::Dead => {
                            return done(vec![]);
                        }
                        NodeEval::Open {
                            candidates,
                            failing,
                        } => {
                            tree.push_root(Node::new(vec![], candidates, failing));
                        }
                    }
                    let mut visited = HashSet::new();
                    visited.insert(vec![]);
                    (tree, visited, Vec::new(), 0usize, Vec::new(), 0usize)
                }
            };
        let mut seen_solutions: HashSet<Vec<Correction>> = solutions
            .iter()
            .map(|s| {
                let mut v = s.corrections.clone();
                v.sort();
                v
            })
            .collect();

        // Rounds mode: each iteration is one round of Fig. 2, so the
        // budget is the round cap. Single-step strategies (DFS, naive
        // BFS, best-first): each iteration is one node expansion, so
        // their budget scales with the node cap instead.
        let iteration_budget = self
            .traversal
            .iteration_budget(self.config.max_rounds, self.config.max_nodes);
        'search: loop {
            // Drain the current plan (possibly mid-way after a resume).
            while plan_pos < plan.len() {
                // Limits are checked *before* an item is processed, so a
                // captured checkpoint's `plan_pos` always names the
                // first unprocessed entry — resume re-evaluates nothing
                // and skips nothing.
                if let Some(reason) = self.check_limits(started) {
                    self.stats.truncated = true;
                    let checkpoint = self.capture_checkpoint(
                        level_idx, iterations, &plan, plan_pos, &tree, &visited, &solutions,
                    );
                    return LevelOutcome {
                        partials: collect_partials(&tree),
                        solutions,
                        stop: Some(reason),
                        checkpoint: Some(checkpoint),
                    };
                }
                if out_of_time(self) {
                    self.stats.truncated = true;
                    break 'search;
                }
                if let Some(d) = disp {
                    // Lookahead: retract stale speculations and top the
                    // frontier up with the predicted next expansions.
                    d.prime(&tree, &plan, plan_pos, &visited, &*self.traversal);
                }
                let idx = plan[plan_pos];
                plan_pos += 1;
                {
                    let Some(node) = tree.get(idx) else {
                        continue;
                    };
                    if !node.open() {
                        // Closed nodes can never spawn children again; any
                        // state the backend retained for them is dead
                        // weight. (Round-robin deliberately schedules
                        // closed nodes for exactly this sweep.)
                        self.evaluator.release(&node.corrections);
                        continue;
                    }
                }
                let Some((cand, corrections)) = ({
                    tree.get_mut(idx).and_then(|node| {
                        let cand = *node.peek()?;
                        node.next += 1;
                        let mut corrections = node.corrections.clone();
                        corrections.push(cand.correction);
                        Some((cand, corrections))
                    })
                }) else {
                    continue;
                };
                let _ = cand;
                let mut canonical = corrections.clone();
                canonical.sort();
                if !visited.insert(canonical.clone()) {
                    continue;
                }
                // A superset of a known solution cannot be minimal.
                if self.config.exhaustive
                    && seen_solutions
                        .iter()
                        .any(|s| s.iter().all(|c| canonical.contains(c)))
                {
                    continue;
                }
                // A child at the depth or node cap can never join the
                // tree; evaluate it lazily — solution check only, no
                // diagnosis/screening for a candidate list nobody reads.
                let expandable = tree.expandable(corrections.len());
                match self.evaluate(&corrections, level, expandable, disp) {
                    NodeEval::Solved => {
                        let mut key = corrections.clone();
                        key.sort();
                        if seen_solutions.insert(key) {
                            solutions.push(Solution { corrections });
                        }
                        if !self.config.exhaustive {
                            break 'search;
                        }
                        if solutions.len() >= self.config.max_solutions {
                            self.stats.truncated = true;
                            break 'search;
                        }
                    }
                    NodeEval::Dead => {}
                    NodeEval::Open {
                        candidates,
                        failing,
                    } => {
                        match tree.push(Node::new(corrections, candidates, failing)) {
                            PushOutcome::Added(_) => {}
                            PushOutcome::NodeCapped => {
                                // (The unexpanded child cached no matrix,
                                // so there is nothing to evict here.)
                                self.stats.truncated = true;
                            }
                            PushOutcome::DepthCapped => {}
                        }
                    }
                }
                if let Some(node) = tree.get(idx) {
                    if !node.open() {
                        self.evaluator.release(&node.corrections);
                    }
                }
            }
            // Plan drained: schedule the next round.
            if iterations >= iteration_budget || !tree.has_open() {
                break;
            }
            iterations += 1;
            self.stats.rounds += 1;
            plan.clear();
            self.traversal.schedule(&tree, &mut plan);
            plan_pos = 0;
            if plan.is_empty() {
                break;
            }
        }
        if (self.config.exhaustive || solutions.is_empty())
            && iterations >= iteration_budget
            && tree.has_open()
        {
            self.stats.truncated = true;
        }
        if self.config.audit || cfg!(debug_assertions) {
            self.stats.audit_checks += 1;
            let bad = tree.invariant_violations();
            if bad > 0 {
                self.stats.audit_violations += bad as u64;
                debug_assert!(false, "audit: {bad} decision-tree invariant violation(s)");
            }
        }
        let partials = if solutions.is_empty() {
            collect_partials(&tree)
        } else {
            Vec::new()
        };
        LevelOutcome {
            solutions,
            stop: None,
            partials,
            checkpoint: None,
        }
    }

    /// One cooperative limit check, run once per scheduled plan item.
    /// Cancellation has reporting precedence over the deadline, which
    /// has precedence over the budgets.
    fn check_limits(&self, started: Instant) -> Option<StopReason> {
        if self.cancel.poll() {
            return Some(StopReason::Cancelled);
        }
        let limits = &self.config.limits;
        if limits.deadline.is_some_and(|d| started.elapsed() > d) {
            return Some(StopReason::Deadline);
        }
        if limits
            .max_total_nodes
            .is_some_and(|n| self.stats.nodes as u64 >= n)
        {
            return Some(StopReason::Budget);
        }
        if limits
            .max_words
            .is_some_and(|w| self.stats.words_simulated >= w)
        {
            return Some(StopReason::Budget);
        }
        if limits
            .max_retained_bytes
            .is_some_and(|b| self.evaluator.retained_bytes() >= b)
        {
            return Some(StopReason::Budget);
        }
        None
    }

    /// Snapshots the live search into a [`Checkpoint`]. The visited set
    /// is sorted so the serialized form is deterministic.
    #[allow(clippy::too_many_arguments)]
    fn capture_checkpoint(
        &self,
        level: usize,
        iterations: usize,
        plan: &[usize],
        plan_pos: usize,
        tree: &Tree,
        visited: &HashSet<Vec<Correction>>,
        solutions: &[Solution],
    ) -> Checkpoint {
        let mut visited: Vec<Vec<Correction>> = visited.iter().cloned().collect();
        visited.sort();
        Checkpoint {
            version: CHECKPOINT_VERSION,
            label: self.checkpoint_label.clone(),
            trial_seed: self.checkpoint_seed,
            vectors: self.vectors.num_vectors(),
            base_gates: self.base.len(),
            base_hash: netlist_fingerprint(&self.base),
            level,
            phase: 0,
            iterations,
            plan: plan.to_vec(),
            plan_pos,
            nodes: tree
                .nodes()
                .iter()
                .map(|n| CheckpointNode {
                    corrections: n.corrections.clone(),
                    candidates: n.candidates.clone(),
                    next: n.next,
                    failing: n.failing,
                })
                .collect(),
            visited,
            solutions: solutions.iter().map(|s| s.corrections.clone()).collect(),
        }
    }

    /// Evaluates one hypothetical node — the base netlist with
    /// `corrections` applied — at a parameter level and returns its
    /// ranked, screened candidate list: the engine's view of "what would
    /// I try next here". Empty when the node is already consistent, dead,
    /// or nothing qualifies at this level. Intended for debugging,
    /// visualisation and the ablation benches.
    pub fn rank_candidates(
        &mut self,
        corrections: &[Correction],
        level: &ParamLevel,
    ) -> Vec<RankedCorrection> {
        match self.evaluate(corrections, level, true, None) {
            NodeEval::Open { candidates, .. } => candidates,
            _ => Vec::new(),
        }
    }

    /// Evaluates one decision-tree node: replay corrections, simulate,
    /// and — if still failing — produce its ranked candidate list.
    ///
    /// `expand = false` is the lazy path for children that can never join
    /// the tree (depth or node cap reached): the node is still prepared
    /// and checked for being a solution, but diagnosis and screening —
    /// whose only product is the discarded candidate list — are skipped
    /// and an empty `Open` is returned for any still-failing node.
    fn evaluate(
        &mut self,
        corrections: &[Correction],
        level: &ParamLevel,
        expand: bool,
        disp: Option<&Dispatcher>,
    ) -> NodeEval {
        let t_eval = Instant::now();
        let outcome = self.evaluate_node(corrections, level, expand, disp);
        self.stats.evaluate_time += t_eval.elapsed();
        outcome
    }

    fn evaluate_node(
        &mut self,
        corrections: &[Correction],
        level: &ParamLevel,
        expand: bool,
        disp: Option<&Dispatcher>,
    ) -> NodeEval {
        // Speculation hit path: a dispatcher worker already ran this
        // exact tuple through the full prepare → diagnose → screen
        // pipeline. Only the `expand = true` semantics are speculated
        // (the lazy path differs), and the root is never speculated.
        if expand && !corrections.is_empty() {
            if let Some(outcome) = disp.and_then(|d| d.take(corrections)) {
                return self.commit_speculation(outcome);
            }
        }
        self.stats.nodes += 1;
        let t0 = Instant::now();
        let before = self.evaluator.counters();
        let prepared = {
            let mut ctx = EvalContext {
                base: &self.base,
                base_inputs: &self.base_inputs,
                vectors: &self.vectors,
                base_cones: &mut self.base_cones,
            };
            self.evaluator.prepare(&mut ctx, corrections)
        };
        let after = self.evaluator.counters();
        self.stats.words_simulated += after.words - before.words;
        self.stats.events_propagated += after.events - before.events;
        self.stats.words_skipped += after.skipped - before.skipped;
        self.stats.matrix_cache_hits += after.matrix_hits - before.matrix_hits;
        self.stats.audit_checks += after.audit_checks - before.audit_checks;
        self.stats.audit_violations += after.audit_violations - before.audit_violations;
        self.stats.blocks_skipped += after.blocks_skipped - before.blocks_skipped;
        self.stats.sparse_rows += after.sparse_rows - before.sparse_rows;
        self.stats.dense_fallbacks += after.dense_fallbacks - before.dense_fallbacks;
        let Some(PreparedNode {
            netlist,
            vals,
            mut cones,
        }) = prepared
        else {
            self.stats.simulation_time += t0.elapsed();
            return NodeEval::Dead;
        };
        let response = Response::compare(&netlist, &vals, &self.spec);
        self.stats.simulation_time += t0.elapsed();
        let failing = response.num_failing();
        let outcome = if response.matches() {
            NodeEval::Solved
        } else if corrections.len() >= self.config.max_corrections {
            NodeEval::Dead
        } else if !expand {
            self.stats.expansions_skipped += 1;
            NodeEval::Open {
                candidates: Vec::new(),
                failing,
            }
        } else {
            // After repeated recovered worker panics, screening latches
            // to serial for the rest of the run (lossless: results are
            // bit-identical for every jobs count).
            let jobs = if self.degrade_serial {
                1
            } else {
                self.evaluator.jobs()
            };
            let pipeline = CandidatePipeline::new(
                &self.config,
                &self.spec,
                jobs,
                self.evaluator.incremental(),
            )
            .with_cancel(self.cancel.clone())
            .with_chaos(self.chaos.clone())
            .with_analysis(self.analysis.as_ref());
            let candidates = pipeline.run(
                &netlist,
                &vals,
                &response,
                corrections,
                level,
                &mut cones,
                &mut self.stats,
            );
            if !self.degrade_serial
                && jobs != 1
                && self.stats.parallel.panics_recovered >= PANIC_FALLBACK_THRESHOLD
            {
                self.degrade_serial = true;
            }
            if candidates.is_empty() {
                // "A leaf with failure" (§3.3).
                NodeEval::Dead
            } else {
                NodeEval::Open {
                    candidates,
                    failing,
                }
            }
        };
        self.stats.cone_cache_hits += cones.take_hits();
        if corrections.is_empty() {
            // Hand the base netlist's cones back for the next root
            // evaluation (ladder restarts re-evaluate the root).
            self.base_cones = cones;
        }
        // Only open nodes can become parents, so only their matrices are
        // worth retaining for child reuse — and an unexpanded child can
        // never join the tree, so its matrix would be dead weight too.
        if expand
            && corrections.len() < self.config.max_corrections
            && matches!(outcome, NodeEval::Open { .. })
        {
            self.stats.matrix_cache_evictions += self.evaluator.retain(corrections, netlist, vals);
        }
        outcome
    }

    /// Commits a finished speculation as this node's evaluation: counts
    /// the node (master-side, so `stats.nodes` stays a deterministic
    /// function of the traversal), absorbs the worker's work
    /// attribution, merges every node matrix the worker computed into
    /// the master evaluator's cache — the evaluated node *and* its
    /// parent prefix, so the master's cache stays as warm as an inline
    /// evaluation would have left it — and converts the result.
    /// Bit-identical to the inline evaluation it replaces (see the
    /// purity contract in `dispatch.rs`).
    fn commit_speculation(&mut self, outcome: SpecOutcome) -> NodeEval {
        self.stats.nodes += 1;
        absorb_speculative(&mut self.stats, &outcome.stats);
        for (key, netlist, vals) in outcome.warmed {
            self.stats.matrix_cache_evictions += self.evaluator.retain(&key, netlist, vals);
        }
        match outcome.eval {
            SpecEval::Solved => NodeEval::Solved,
            SpecEval::Dead => NodeEval::Dead,
            SpecEval::Open {
                candidates,
                failing,
            } => NodeEval::Open {
                candidates,
                failing,
            },
        }
    }
}

/// Why one hierarchical child phase failed: construction errors trigger
/// the flat fallback (recorded as a degradation); resume errors mean the
/// caller's checkpoint is bad and propagate as [`IncdxError`].
enum ChildError {
    Construct(IncdxError),
    Resume(IncdxError),
}

/// The limit budget left for the next hierarchical phase: the deadline
/// shrinks by elapsed wall time and the node/word budgets by what the
/// earlier phases consumed; the retained-bytes cap bounds per-session
/// state, not cumulative work, and passes through unchanged.
fn remaining_limits(
    limits: &RectifyLimits,
    stats: &RectifyStats,
    started: Instant,
) -> RectifyLimits {
    RectifyLimits {
        deadline: limits.deadline.map(|d| d.saturating_sub(started.elapsed())),
        max_total_nodes: limits
            .max_total_nodes
            .map(|n| n.saturating_sub(stats.nodes as u64)),
        max_words: limits
            .max_words
            .map(|w| w.saturating_sub(stats.words_simulated)),
        max_retained_bytes: limits.max_retained_bytes,
    }
}

/// Remaining legacy wall-clock budget for the next hierarchical phase.
fn remaining_time(limit: Option<Duration>, started: Instant) -> Option<Duration> {
    limit.map(|t| t.saturating_sub(started.elapsed()))
}

/// Folds a hierarchical child phase's statistics into the
/// orchestrator's: everything [`absorb_speculative`] covers, plus the
/// master-side counters a full child run owns (`nodes`, `rounds`,
/// skipped expansions, worker telemetry, degradations, truncation,
/// ladder depth, dispatch telemetry). The run-level identity fields
/// (backend names, chaos tally, abstraction telemetry) stay the
/// orchestrator's own.
fn absorb_child(stats: &mut RectifyStats, child: &RectifyStats) {
    absorb_speculative(stats, child);
    stats.nodes += child.nodes;
    stats.expansions_skipped += child.expansions_skipped;
    stats.rounds += child.rounds;
    stats.parallel.merge(&child.parallel);
    stats
        .degradations
        .extend(child.degradations.iter().cloned());
    stats.truncated |= child.truncated;
    stats.deepest_ladder_level = stats.deepest_ladder_level.max(child.deepest_ladder_level);
    match (&mut stats.dispatch, &child.dispatch) {
        (Some(mine), Some(theirs)) => mine.merge(theirs),
        (None, Some(theirs)) => stats.dispatch = Some(theirs.clone()),
        _ => {}
    }
    // Static-analysis telemetry sums over child sessions (hierarchical
    // phases each build tables for their own netlist).
    match (&mut stats.analysis, &child.analysis) {
        (Some(mine), Some(theirs)) => {
            mine.const_lines += theirs.const_lines;
            mine.dominated_lines += theirs.dominated_lines;
            mine.table_rebuilds += theirs.table_rebuilds;
        }
        (None, Some(theirs)) => stats.analysis = Some(theirs.clone()),
        _ => {}
    }
    // `fault_classes` is deliberately NOT absorbed: it is a run-level
    // identity of the base netlist, not accumulated work.
}

/// Is the work-stealing frontier dispatcher in effect for `config`?
/// Requires the opt-in flag *and* a resolved worker count above one
/// (`dispatch` with `jobs = 1` is the plain serial engine, bit-identical
/// by construction — no pool is ever spawned).
fn dispatch_armed(config: &RectifyConfig) -> bool {
    config.dispatch && crate::parallel::effective_jobs(config.jobs, usize::MAX) > 1
}

/// Folds a speculative evaluation's work attribution into the run
/// stats: the stage timers and simulation/screening counters — exactly
/// what the inline evaluation would have added. Deliberately *not*
/// absorbed: `nodes`/`rounds`/`expansions_skipped` (master-side
/// deterministic bookkeeping), `parallel` and `degradations` (already
/// drained to the dispatcher ledger at task completion, wasted tasks
/// included), and the run-level fields (names, verdict flags, chaos,
/// dispatch).
fn absorb_speculative(stats: &mut RectifyStats, spec: &RectifyStats) {
    stats.diagnosis_time += spec.diagnosis_time;
    stats.correction_time += spec.correction_time;
    stats.simulation_time += spec.simulation_time;
    stats.path_trace_time += spec.path_trace_time;
    stats.rank_time += spec.rank_time;
    stats.screen_time += spec.screen_time;
    stats.evaluate_time += spec.evaluate_time;
    stats.prune_time += spec.prune_time;
    stats.corrections_screened += spec.corrections_screened;
    stats.corrections_qualified += spec.corrections_qualified;
    stats.lines_rejected_h1 += spec.lines_rejected_h1;
    stats.corrections_rejected_h2 += spec.corrections_rejected_h2;
    stats.corrections_rejected_h3 += spec.corrections_rejected_h3;
    stats.words_simulated += spec.words_simulated;
    stats.events_propagated += spec.events_propagated;
    stats.words_skipped += spec.words_skipped;
    stats.blocks_skipped += spec.blocks_skipped;
    stats.sparse_rows += spec.sparse_rows;
    stats.dense_fallbacks += spec.dense_fallbacks;
    stats.cone_cache_hits += spec.cone_cache_hits;
    stats.matrix_cache_hits += spec.matrix_cache_hits;
    stats.matrix_cache_evictions += spec.matrix_cache_evictions;
    stats.audit_checks += spec.audit_checks;
    stats.audit_violations += spec.audit_violations;
    stats.wire_sources_truncated += spec.wire_sources_truncated;
    stats.candidates_truncated += spec.candidates_truncated;
    stats.lines_truncated += spec.lines_truncated;
    stats.path_trace_batches += spec.path_trace_batches;
    stats.observations_batched += spec.observations_batched;
    stats.static_pruned += spec.static_pruned;
    stats.prune_checks += spec.prune_checks;
}

/// The structural fault-equivalence summary reported for exhaustive
/// stuck-at runs ([`RectifyStats::fault_classes`]): collapsing comes
/// from [`incdx_atpg::FaultClasses`] on the base netlist, so the
/// Table-1-style "equivalent fault classes" numbers are the engine's
/// own. `None` for other modes.
fn fault_class_summary(netlist: &Netlist, config: &RectifyConfig) -> Option<FaultClassSummary> {
    if config.model != CorrectionModel::StuckAt || !config.exhaustive {
        return None;
    }
    let classes = incdx_atpg::FaultClasses::build(netlist);
    let representatives = classes
        .representatives()
        .iter()
        .map(|f| {
            let line = match netlist.name(f.line()) {
                Some(name) => name.to_string(),
                None => f.line().to_string(),
            };
            format!("{}/{}", line, u8::from(f.value()))
        })
        .collect();
    Some(FaultClassSummary {
        classes: classes.classes().len(),
        faults: classes.total_faults(),
        representatives,
    })
}

/// Recovered worker panics tolerated before screening latches to serial
/// for the rest of the run ([`DegradationKind::ParallelDisabled`]).
const PANIC_FALLBACK_THRESHOLD: u64 = 3;

/// The backend the configuration selects: [`Incremental`] or
/// [`FromScratch`], wrapped in [`Parallel`] when screening fans out, and
/// in [`Auditing`](crate::Auditing) (outermost) when the invariant audit
/// is on. A chaos-armed run instead wraps the stack in [`Chaos`] inside
/// a *repairing* audit layer, so every injected corruption is caught
/// and replaced by a from-scratch replay.
/// Also used by the frontier dispatcher to build each worker's private
/// stack (with `jobs = 1` and a divided cache budget).
pub(crate) fn build_evaluator(
    config: &RectifyConfig,
    chaos: Option<Arc<ChaosState>>,
) -> Box<dyn Evaluator> {
    let inner: Box<dyn Evaluator> = if config.incremental {
        Box::new(Incremental::new(config.matrix_cache_bytes).with_sparse(config.sparse))
    } else {
        Box::new(FromScratch::new().with_sparse(config.sparse))
    };
    let inner: Box<dyn Evaluator> = if config.jobs == 1 {
        inner
    } else {
        Box::new(Parallel::new(inner, config.jobs))
    };
    match chaos {
        Some(state) => Box::new(crate::audit::Auditing::resilient(Box::new(Chaos::new(
            inner, state,
        )))) as Box<dyn Evaluator>,
        None if config.audit => Box::new(crate::audit::Auditing::new(inner)) as Box<dyn Evaluator>,
        None => inner,
    }
}

/// Ranks the still-open frontier of an interrupted (or unsuccessful)
/// search: every non-root node as a [`PartialSolution`], ascending by
/// remaining failing vectors (tuple size breaks ties). The root is
/// included only when nothing deeper exists, so the list is never empty
/// for a search that built a tree.
fn collect_partials(tree: &Tree) -> Vec<PartialSolution> {
    let mut partials: Vec<PartialSolution> = tree
        .nodes()
        .iter()
        .filter(|n| n.depth() > 0)
        .map(|n| PartialSolution {
            corrections: n.corrections.clone(),
            remaining_failures: n.failing,
        })
        .collect();
    if partials.is_empty() {
        partials.extend(tree.nodes().first().map(|root| PartialSolution {
            corrections: root.corrections.clone(),
            remaining_failures: root.failing,
        }));
    }
    partials.sort_by(|a, b| {
        a.remaining_failures
            .cmp(&b.remaining_failures)
            .then_with(|| a.corrections.len().cmp(&b.corrections.len()))
    });
    partials
}

/// Keeps only tuples that are minimal as sets (no other solution's
/// correction set is a strict subset).
fn minimal_solutions(mut solutions: Vec<Solution>) -> Vec<Solution> {
    let sets: Vec<Vec<Correction>> = solutions
        .iter()
        .map(|s| {
            let mut v = s.corrections.clone();
            v.sort();
            v
        })
        .collect();
    let mut keep = vec![true; solutions.len()];
    for i in 0..sets.len() {
        for j in 0..sets.len() {
            if i != j
                && keep[i]
                && sets[j].len() < sets[i].len()
                && sets[j].iter().all(|c| sets[i].contains(c))
            {
                keep[i] = false;
            }
        }
    }
    let mut idx = 0;
    solutions.retain(|_| {
        let k = keep[idx];
        idx += 1;
        k
    });
    solutions
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdx_fault::CorrectionAction;
    use incdx_netlist::parse_bench;
    use incdx_sim::Simulator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spec_and_vectors(golden: &Netlist, vectors: usize, seed: u64) -> (PackedMatrix, Response) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pi = PackedMatrix::random(golden.inputs().len(), vectors, &mut rng);
        let mut sim = Simulator::new();
        let spec = Response::capture(golden, &sim.run(golden, &pi));
        (pi, spec)
    }

    #[test]
    fn already_correct_returns_empty_tuple() {
        let n = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n").unwrap();
        let (pi, spec) = spec_and_vectors(&n, 64, 1);
        let r = Rectifier::new(n, pi, spec, RectifyConfig::dedc(1))
            .unwrap()
            .run();
        assert_eq!(r.solutions.len(), 1);
        assert!(r.solutions[0].corrections.is_empty());
        assert_eq!(r.stats.traversal, "round-robin-bfs");
        assert_eq!(r.stats.evaluator, "incremental");
    }

    #[test]
    fn fixes_single_gate_replacement() {
        let good =
            parse_bench("INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nx = AND(a, b)\ny = OR(x, c)\n")
                .unwrap();
        let bad =
            parse_bench("INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nx = NOR(a, b)\ny = OR(x, c)\n")
                .unwrap();
        let (pi, spec) = spec_and_vectors(&good, 64, 2);
        let r = Rectifier::new(
            bad.clone(),
            pi.clone(),
            spec.clone(),
            RectifyConfig::dedc(1),
        )
        .unwrap()
        .run();
        assert!(!r.solutions.is_empty(), "must find a fix");
        // Verify the fix really works.
        let mut fixed = bad.clone();
        for c in &r.solutions[0].corrections {
            c.apply(&mut fixed).unwrap();
        }
        let mut sim = Simulator::new();
        let vals = sim.run_for_inputs(&fixed, bad.inputs(), &pi);
        assert!(Response::compare(&fixed, &vals, &spec).matches());
    }

    #[test]
    fn exhaustive_single_stuck_at_finds_equivalent_class() {
        // y = AND(a, b): y/0, a/0 and b/0 are all single-fault
        // explanations of the device "y stuck at 0".
        let good = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n").unwrap();
        let mut device = good.clone();
        let y = good.find_by_name("y").unwrap();
        StuckAt::new(y, false).apply(&mut device).unwrap();

        // Exhaustive vectors so equivalence is exact.
        let mut pi = PackedMatrix::new(2, 4);
        for v in 0..4 {
            pi.set(0, v, v & 1 == 1);
            pi.set(1, v, v & 2 == 2);
        }
        let mut sim = Simulator::new();
        let device_resp =
            Response::capture(&device, &sim.run_for_inputs(&device, good.inputs(), &pi));
        let r = Rectifier::new(
            good.clone(),
            pi,
            device_resp,
            RectifyConfig::stuck_at_exhaustive(1),
        )
        .unwrap()
        .run();
        let mut tuples: Vec<Vec<StuckAt>> = r
            .solutions
            .iter()
            .map(|s| s.stuck_at_tuple().expect("stuck-at run"))
            .collect();
        tuples.sort();
        let a = good.find_by_name("a").unwrap();
        let b = good.find_by_name("b").unwrap();
        let mut expect = vec![
            vec![StuckAt::new(a, false)],
            vec![StuckAt::new(b, false)],
            vec![StuckAt::new(y, false)],
        ];
        expect.sort();
        assert_eq!(tuples, expect);
        assert_eq!(r.distinct_sites(), 3);
    }

    #[test]
    fn exhaustive_results_are_minimal() {
        let sols = vec![
            Solution {
                corrections: vec![Correction::new(GateId(1), CorrectionAction::SetConst(true))],
            },
            Solution {
                corrections: vec![
                    Correction::new(GateId(1), CorrectionAction::SetConst(true)),
                    Correction::new(GateId(2), CorrectionAction::SetConst(false)),
                ],
            },
            Solution {
                corrections: vec![Correction::new(
                    GateId(3),
                    CorrectionAction::SetConst(false),
                )],
            },
        ];
        let min = minimal_solutions(sols);
        assert_eq!(min.len(), 2);
        assert!(min.iter().all(|s| s.corrections.len() == 1));
    }

    #[test]
    fn double_error_needs_two_rounds_of_depth() {
        let good = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(y)\nOUTPUT(z)\n\
             x1 = AND(a, b)\nx2 = OR(c, d)\ny = XOR(x1, c)\nz = NAND(x2, a)\n",
        )
        .unwrap();
        let bad = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(y)\nOUTPUT(z)\n\
             x1 = NAND(a, b)\nx2 = AND(c, d)\ny = XOR(x1, c)\nz = NAND(x2, a)\n",
        )
        .unwrap();
        let (pi, spec) = spec_and_vectors(&good, 128, 3);
        let r = Rectifier::new(
            bad.clone(),
            pi.clone(),
            spec.clone(),
            RectifyConfig::dedc(2),
        )
        .unwrap()
        .run();
        assert!(!r.solutions.is_empty(), "two-error case must solve");
        let sol = &r.solutions[0];
        assert!(sol.corrections.len() <= 2);
        let mut fixed = bad.clone();
        for c in &sol.corrections {
            c.apply(&mut fixed).unwrap();
        }
        let mut sim = Simulator::new();
        let vals = sim.run_for_inputs(&fixed, bad.inputs(), &pi);
        assert!(Response::compare(&fixed, &vals, &spec).matches());
        assert!(r.stats.rounds >= 1 && r.stats.nodes >= 2);
    }

    #[test]
    fn respects_node_and_round_budgets() {
        let good = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n").unwrap();
        let mut device = good.clone();
        StuckAt::new(good.find_by_name("y").unwrap(), false)
            .apply(&mut device)
            .unwrap();
        let (pi, _) = spec_and_vectors(&good, 16, 4);
        let mut sim = Simulator::new();
        let resp = Response::capture(&device, &sim.run_for_inputs(&device, good.inputs(), &pi));
        let mut cfg = RectifyConfig::stuck_at_exhaustive(1);
        cfg.max_rounds = 0;
        let r = Rectifier::new(good, pi, resp, cfg).unwrap().run();
        assert!(r.solutions.is_empty());
        assert!(r.stats.truncated || r.stats.rounds == 0);
    }

    #[test]
    fn dead_when_model_cannot_explain() {
        // Device behaviour needs 2 faults but only 1 correction allowed:
        // no solution, engine terminates cleanly.
        let good = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(y)\nOUTPUT(z)\ny = AND(a, b)\nz = OR(c, d)\n",
        )
        .unwrap();
        let mut device = good.clone();
        StuckAt::new(good.find_by_name("y").unwrap(), true)
            .apply(&mut device)
            .unwrap();
        StuckAt::new(good.find_by_name("z").unwrap(), false)
            .apply(&mut device)
            .unwrap();
        // Exhaustive input space: y and z cones are disjoint, so no single
        // stuck-at explains both.
        let mut pi = PackedMatrix::new(4, 16);
        for v in 0..16 {
            for i in 0..4 {
                pi.set(i, v, v >> i & 1 == 1);
            }
        }
        let mut sim = Simulator::new();
        let resp = Response::capture(&device, &sim.run_for_inputs(&device, good.inputs(), &pi));
        let r = Rectifier::new(good, pi, resp, RectifyConfig::stuck_at_exhaustive(1))
            .unwrap()
            .run();
        assert!(r.solutions.is_empty());
    }

    #[test]
    fn every_traversal_strategy_solves() {
        let good =
            parse_bench("INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nx = AND(a, b)\ny = OR(x, c)\n")
                .unwrap();
        let bad =
            parse_bench("INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nx = NOR(a, b)\ny = OR(x, c)\n")
                .unwrap();
        let (pi, spec) = spec_and_vectors(&good, 64, 9);
        for traversal in TraversalKind::ALL {
            let mut cfg = RectifyConfig::dedc(1);
            cfg.traversal = traversal;
            let mut engine = Rectifier::new(bad.clone(), pi.clone(), spec.clone(), cfg).unwrap();
            let r = engine.run();
            assert!(!r.solutions.is_empty(), "{traversal:?} must solve");
            let mut fixed = bad.clone();
            for c in &r.solutions[0].corrections {
                c.apply(&mut fixed).unwrap();
            }
            let mut sim = Simulator::new();
            let vals = sim.run_for_inputs(&fixed, bad.inputs(), &pi);
            assert!(Response::compare(&fixed, &vals, &spec).matches());
        }
    }

    #[test]
    fn stats_accumulate() {
        let good = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n").unwrap();
        let bad = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NOR(a, b)\n").unwrap();
        let (pi, spec) = spec_and_vectors(&good, 64, 6);
        let r = Rectifier::new(bad, pi, spec, RectifyConfig::dedc(1))
            .unwrap()
            .run();
        assert!(!r.solutions.is_empty());
        assert!(r.stats.corrections_screened > 0);
        assert!(r.stats.corrections_qualified > 0);
        assert!(r.stats.rounds >= 1);
    }

    #[test]
    fn sequential_netlist_is_rejected_not_panicked() {
        let n = parse_bench("INPUT(a)\nOUTPUT(y)\ns = DFF(a)\ny = AND(a, s)\n").unwrap();
        let pi = PackedMatrix::new(1, 8);
        let spec = {
            let comb = parse_bench("INPUT(a)\nOUTPUT(y)\ny = BUF(a)\n").unwrap();
            let mut sim = Simulator::new();
            Response::capture(&comb, &sim.run(&comb, &pi))
        };
        match Rectifier::new(n, pi, spec, RectifyConfig::dedc(1)) {
            Err(IncdxError::SequentialNetlist { dffs }) => assert_eq!(dffs, 1),
            other => panic!("expected SequentialNetlist, got {other:?}"),
        }
    }

    #[test]
    fn hazardous_netlists_are_rejected_by_the_preflight_lint() {
        use incdx_netlist::{Gate, GateKind};
        // A combinational 2-cycle the parser could never produce, built
        // through the unchecked escape hatch: g1 = AND(a, g2),
        // g2 = AND(g1, a).
        let gates = vec![
            Gate::new(GateKind::Input, vec![]),
            Gate::new(GateKind::And, vec![GateId(0), GateId(2)]),
            Gate::new(GateKind::And, vec![GateId(1), GateId(0)]),
        ];
        let names = vec![Some("a".into()), Some("g1".into()), Some("g2".into())];
        let cyclic = Netlist::from_parts_unchecked(gates, names, vec![GateId(1)]);
        let pi = PackedMatrix::new(1, 8);
        let spec = Response::capture(&cyclic, &PackedMatrix::new(cyclic.len(), 8));
        match Rectifier::new(cyclic, pi, spec, RectifyConfig::dedc(1)) {
            Err(IncdxError::Lint(diags)) => {
                assert!(diags
                    .iter()
                    .any(|d| d.code == incdx_lint::LintCode::CombinationalCycle));
            }
            other => panic!("expected Lint rejection, got {other:?}"),
        }

        // Two drivers for one wire name: also a pre-flight error.
        let gates = vec![
            Gate::new(GateKind::Input, vec![]),
            Gate::new(GateKind::Not, vec![GateId(0)]),
            Gate::new(GateKind::Not, vec![GateId(0)]),
        ];
        let names = vec![Some("a".into()), Some("y".into()), Some("y".into())];
        let multi = Netlist::from_parts_unchecked(gates, names, vec![GateId(1)]);
        let pi = PackedMatrix::new(1, 8);
        let spec = Response::capture(&multi, &PackedMatrix::new(multi.len(), 8));
        match Rectifier::new(multi, pi, spec, RectifyConfig::dedc(1)) {
            Err(IncdxError::Lint(diags)) => {
                assert!(diags
                    .iter()
                    .any(|d| d.code == incdx_lint::LintCode::MultiDrivenWire));
            }
            other => panic!("expected Lint rejection, got {other:?}"),
        }
    }

    #[test]
    fn audited_run_passes_with_zero_violations() {
        let good =
            parse_bench("INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nt = AND(a, b)\ny = OR(t, c)\n")
                .unwrap();
        let bad =
            parse_bench("INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nt = AND(a, b)\ny = AND(t, c)\n")
                .unwrap();
        let (pi, spec) = spec_and_vectors(&good, 64, 11);
        let mut config = RectifyConfig::dedc(1);
        config.audit = true;
        let r = Rectifier::new(bad, pi, spec, config).unwrap().run();
        assert!(!r.solutions.is_empty());
        assert_eq!(r.stats.evaluator, "audit+incremental");
        assert!(r.stats.audit_checks > 0, "audit layer must have run");
        assert_eq!(r.stats.audit_violations, 0, "healthy engine audits clean");
    }

    #[test]
    fn shape_mismatches_are_rejected_not_panicked() {
        let n = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n").unwrap();
        let (pi, spec) = spec_and_vectors(&n, 64, 7);
        // Wrong number of vector rows.
        let bad_pi = PackedMatrix::new(3, 64);
        assert!(matches!(
            Rectifier::new(n.clone(), bad_pi, spec.clone(), RectifyConfig::dedc(1)),
            Err(IncdxError::ShapeMismatch {
                expected: 2,
                got: 3,
                ..
            })
        ));
        // Wrong vector count in the reference.
        let (short_pi, short_spec) = spec_and_vectors(&n, 32, 7);
        let _ = short_pi;
        assert!(matches!(
            Rectifier::new(n, pi, short_spec, RectifyConfig::dedc(1)),
            Err(IncdxError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn reset_reproduces_a_fresh_run_exactly() {
        let good =
            parse_bench("INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nx = AND(a, b)\ny = OR(x, c)\n")
                .unwrap();
        let bad =
            parse_bench("INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nx = NOR(a, b)\ny = OR(x, c)\n")
                .unwrap();
        let (pi, spec) = spec_and_vectors(&good, 64, 8);
        let mut engine = Rectifier::new(bad, pi, spec, RectifyConfig::dedc(1)).unwrap();
        let first = engine.run();
        engine.reset();
        let second = engine.run();
        assert_eq!(first.solutions, second.solutions);
        assert_eq!(first.stats.nodes, second.stats.nodes);
        assert_eq!(first.stats.words_simulated, second.stats.words_simulated);
        assert_eq!(
            first.stats.matrix_cache_hits,
            second.stats.matrix_cache_hits
        );
        // Without reset the engine still finds the same solutions (cached
        // matrices are pure functions of base + corrections).
        let third = engine.run();
        assert_eq!(first.solutions, third.solutions);
    }

    /// Two independent chains: the OR chain collapses into a super-gate
    /// (so the abstraction is non-degenerate), the AND chain carries the
    /// injected error.
    fn two_chain_pair() -> (Netlist, Netlist) {
        let good = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(y)\nOUTPUT(z)\n\
             t1 = AND(a, b)\ny = AND(t1, c)\nu1 = OR(c, d)\nz = OR(u1, a)\n",
        )
        .unwrap();
        let bad = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(y)\nOUTPUT(z)\n\
             t1 = NAND(a, b)\ny = AND(t1, c)\nu1 = OR(c, d)\nz = OR(u1, a)\n",
        )
        .unwrap();
        (good, bad)
    }

    #[test]
    fn hierarchical_dedc_fixes_and_reports_abstraction() {
        let (good, bad) = two_chain_pair();
        let (pi, spec) = spec_and_vectors(&good, 128, 11);
        let mut config = RectifyConfig::dedc(1);
        config.hierarchical = true;
        let r = Rectifier::new(bad.clone(), pi.clone(), spec.clone(), config)
            .unwrap()
            .run();
        assert!(!r.solutions.is_empty(), "hierarchical run must find a fix");
        let mut fixed = bad.clone();
        for c in &r.solutions[0].corrections {
            c.apply(&mut fixed).unwrap();
        }
        let mut sim = Simulator::new();
        let vals = sim.run_for_inputs(&fixed, bad.inputs(), &pi);
        assert!(Response::compare(&fixed, &vals, &spec).matches());
        let a = r.stats.abstraction.expect("abstraction telemetry");
        assert!(a.super_gates >= 1, "the OR chain must collapse");
        assert!(a.abstract_gates < a.concrete_gates);
        assert!(a.collapse_ratio < 1.0);
        assert!(a.refinement_rounds >= 1);
        assert!(a.phase1_nodes >= 1);
    }

    #[test]
    fn hierarchical_exhaustive_matches_flat_solution_set() {
        let (good, bad) = two_chain_pair();
        let mut device = bad.clone();
        StuckAt::new(bad.find_by_name("t1").unwrap(), true)
            .apply(&mut device)
            .unwrap();
        let (pi, _) = spec_and_vectors(&good, 64, 12);
        let mut sim = Simulator::new();
        let resp = Response::capture(&device, &sim.run_for_inputs(&device, bad.inputs(), &pi));
        let flat = Rectifier::new(
            bad.clone(),
            pi.clone(),
            resp.clone(),
            RectifyConfig::stuck_at_exhaustive(1),
        )
        .unwrap()
        .run();
        let mut hier_cfg = RectifyConfig::stuck_at_exhaustive(1);
        hier_cfg.hierarchical = true;
        let hier = Rectifier::new(bad.clone(), pi, resp, hier_cfg)
            .unwrap()
            .run();
        let canon = |r: &RectifyResult| {
            let mut v: Vec<Vec<Correction>> = r
                .solutions
                .iter()
                .map(|s| {
                    let mut c = s.corrections.clone();
                    c.sort();
                    c
                })
                .collect();
            v.sort();
            v
        };
        assert_eq!(canon(&flat), canon(&hier));
    }

    #[test]
    fn hierarchical_already_correct_returns_empty_tuple() {
        let (good, _) = two_chain_pair();
        let (pi, spec) = spec_and_vectors(&good, 64, 13);
        let mut config = RectifyConfig::dedc(1);
        config.hierarchical = true;
        let r = Rectifier::new(good, pi, spec, config).unwrap().run();
        assert_eq!(r.solutions.len(), 1);
        assert!(r.solutions[0].corrections.is_empty());
    }

    #[test]
    fn degenerate_abstraction_falls_back_to_flat() {
        // A single multi-fanout-free gate pair where nothing collapses:
        // every internal gate is a stem (multi-fanout or PO).
        let good = parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nOUTPUT(z)\nx = AND(a, b)\ny = OR(x, a)\nz = NOR(x, b)\n",
        )
        .unwrap();
        let bad = parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nOUTPUT(z)\nx = NAND(a, b)\ny = OR(x, a)\nz = NOR(x, b)\n",
        )
        .unwrap();
        let (pi, spec) = spec_and_vectors(&good, 64, 14);
        let mut config = RectifyConfig::dedc(1);
        config.hierarchical = true;
        let r = Rectifier::new(bad, pi, spec, config).unwrap().run();
        assert!(!r.solutions.is_empty());
        assert!(
            r.stats.abstraction.is_none(),
            "degenerate abstraction reports no telemetry (flat fallback)"
        );
    }

    #[test]
    fn batched_observations_match_unbatched_solutions() {
        let (good, bad) = two_chain_pair();
        let (pi, spec) = spec_and_vectors(&good, 128, 15);
        let plain = Rectifier::new(
            bad.clone(),
            pi.clone(),
            spec.clone(),
            RectifyConfig::dedc(1),
        )
        .unwrap()
        .run();
        let mut batched_cfg = RectifyConfig::dedc(1);
        batched_cfg.batch_obs = true;
        let batched = Rectifier::new(bad, pi, spec, batched_cfg).unwrap().run();
        assert_eq!(plain.solutions, batched.solutions);
        assert_eq!(plain.stats.nodes, batched.stats.nodes);
        assert_eq!(plain.stats.path_trace_batches, 0);
        assert!(batched.stats.path_trace_batches > 0);
        assert!(batched.stats.observations_batched > 0);
    }

    #[test]
    fn dispatched_cache_merge_keeps_solution_fingerprints() {
        // The worker-to-master cache merge (commit_speculation) must not
        // perturb results: a dispatched multi-correction search carries
        // the exact solution fingerprints of the serial engine.
        let (good, bad) = two_chain_pair();
        let mut device = bad.clone();
        StuckAt::new(bad.find_by_name("t1").unwrap(), true)
            .apply(&mut device)
            .unwrap();
        let (pi, _) = spec_and_vectors(&good, 64, 17);
        let mut sim = Simulator::new();
        let resp = Response::capture(&device, &sim.run_for_inputs(&device, bad.inputs(), &pi));
        let run = |dispatch: bool, jobs: usize| {
            let mut config = RectifyConfig::stuck_at_exhaustive(2);
            config.dispatch = dispatch;
            config.jobs = jobs;
            Rectifier::new(bad.clone(), pi.clone(), resp.clone(), config)
                .unwrap()
                .run()
        };
        let serial = run(false, 1);
        let dispatched = run(true, 3);
        let fingerprint = |r: &RectifyResult| {
            let mut v: Vec<Vec<Correction>> = r
                .solutions
                .iter()
                .map(|s| {
                    let mut c = s.corrections.clone();
                    c.sort();
                    c
                })
                .collect();
            v.sort();
            v
        };
        assert_eq!(fingerprint(&serial), fingerprint(&dispatched));
        assert_eq!(serial.stats.nodes, dispatched.stats.nodes);
        assert!(dispatched.stats.dispatch.is_some());
    }

    #[test]
    fn focus_restricts_solutions_to_the_suspect_set() {
        let (good, bad) = two_chain_pair();
        let (pi, spec) = spec_and_vectors(&good, 128, 16);
        let t1 = bad.find_by_name("t1").unwrap();
        let y = bad.find_by_name("y").unwrap();
        let mut focus = vec![t1, y];
        focus.sort();
        let mut config = RectifyConfig::dedc(1);
        config.focus = Some(focus.clone());
        let r = Rectifier::new(bad, pi, spec, config).unwrap().run();
        assert!(!r.solutions.is_empty());
        for s in &r.solutions {
            for line in s.lines() {
                assert!(
                    focus.binary_search(&line).is_ok(),
                    "solution line {line:?} outside the focus set"
                );
            }
        }
    }
}
