//! The rectification session: node evaluation (simulate → diagnose →
//! screen → rank) and the round-based decision-tree traversal.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use incdx_fault::{enumerate_corrections, Correction, CorrectionAction, CorrectionModel, StuckAt};
use incdx_netlist::{ConeCache, ConeSet, GateId, GateKind, Netlist};
use incdx_sim::{xor_masked_count_ones, PackedBits, PackedMatrix, Response, Simulator};

use crate::cache::NodeMatrixCache;
use crate::parallel::{run_parallel_with, ParallelTelemetry};
use crate::params::{default_ladder, ParamLevel};
use crate::path_trace::path_trace_counts;
use crate::screen::{correction_output_row_into, CorrectionScratch};
use crate::tree::{Node, RankedCorrection};

/// How the decision tree is traversed (§3.3 compares these; the paper's
/// contribution is [`Traversal::Rounds`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Traversal {
    /// The paper's BFS/DFS trade-off: each round applies the next-best
    /// candidate of every node present at the round's start.
    #[default]
    Rounds,
    /// Greedy depth-first: always extend the most recently created open
    /// node (the paper's "a wrong decision at the top may strand the
    /// search" strawman).
    Dfs,
    /// Naive breadth-first: exhaust every candidate of a node before
    /// moving to the next (the paper's "excessive computation" strawman).
    Bfs,
}

/// Configuration for a [`Rectifier`] run.
#[derive(Debug, Clone)]
pub struct RectifyConfig {
    /// Which correction repertoire to search (stuck-at vs design errors).
    pub model: CorrectionModel,
    /// Maximum tuple size — the decision tree's depth bound.
    pub max_corrections: usize,
    /// Exhaustive traversal (collect every minimal tuple) vs stop at the
    /// first solution.
    pub exhaustive: bool,
    /// Round budget for the traversal (each round at most doubles the
    /// node count, so `max_rounds = r` explores ≤ 2^r nodes).
    pub max_rounds: usize,
    /// Hard cap on tree nodes.
    pub max_nodes: usize,
    /// Stop after this many solutions (exhaustive mode).
    pub max_solutions: usize,
    /// Failing vectors sampled by path-trace.
    pub path_trace_vector_cap: usize,
    /// Minimum fraction of path-trace-marked lines promoted to
    /// heuristic 1 (the effective fraction per node is the maximum of
    /// this and the current ladder level's
    /// [`ParamLevel::promote`]).
    pub path_trace_fraction: f64,
    /// Hard cap on lines promoted to the correction stage per node.
    pub max_candidate_lines: usize,
    /// Candidate source signals per line for wire corrections
    /// (0 = every cycle-safe signal; > 0 = stride-sample to that many,
    /// with the drop count reported in the stats).
    pub wire_source_limit: usize,
    /// Ranked candidates kept per node (cap is recorded in the stats, not
    /// silent).
    pub max_candidates_per_node: usize,
    /// The `h1/h2/h3` relaxation ladder.
    pub ladder: Vec<ParamLevel>,
    /// Apply Theorem 1's `|V_err|/N` floor to the `h2` threshold (with
    /// `N` = remaining correction slots), so the guaranteed-to-exist
    /// high-excitation correction is never screened out.
    pub theorem_floor: bool,
    /// Wall-clock budget; exceeded ⇒ stop with `stats.truncated = true`.
    pub time_limit: Option<Duration>,
    /// Tree traversal order (rounds by default; DFS/BFS for ablations).
    pub traversal: Traversal,
    /// Worker threads for candidate screening (`0` = all available
    /// cores, `1` = serial). Results are bit-identical for every value:
    /// per-candidate evaluations run against worker-private simulator
    /// state and merge in candidate-rank order.
    pub jobs: usize,
    /// Event-driven incremental node evaluation: reuse the parent node's
    /// cached value matrix and resimulate only the corrected line's fanout
    /// cone (change-bounded), instead of cloning and fully resimulating the
    /// base circuit per node. Bit-identical to the from-scratch path for
    /// every `jobs` value — only `words_simulated` (and the event/skip
    /// counters) differ.
    pub incremental: bool,
    /// Byte budget for the node value-matrix cache used by the incremental
    /// path (LRU beyond this; `0` disables the cache but keeps the
    /// change-bounded cone propagation).
    pub matrix_cache_bytes: usize,
}

impl RectifyConfig {
    /// The DEDC setting: design-error corrections, first solution wins.
    pub fn dedc(num_errors: usize) -> Self {
        RectifyConfig {
            model: CorrectionModel::DesignErrors,
            max_corrections: num_errors,
            exhaustive: false,
            max_rounds: 48,
            max_nodes: 1024,
            max_solutions: 1,
            path_trace_vector_cap: 32,
            path_trace_fraction: 0.05,
            max_candidate_lines: 256,
            wire_source_limit: 0,
            max_candidates_per_node: 48,
            ladder: default_ladder(),
            theorem_floor: true,
            time_limit: None,
            traversal: Traversal::Rounds,
            jobs: 1,
            incremental: true,
            matrix_cache_bytes: 256 << 20,
        }
    }

    /// The stuck-at diagnosis setting: exhaustive search for every minimal
    /// equivalent fault tuple of size ≤ `num_faults`. Screening runs on
    /// Theorem 1 alone (`h2 = |V_err|/N` via the theorem floor; `h1`/`h3`
    /// disabled) so no valid tuple is pruned by the aggressive heuristics
    /// — the paper's "exact performance" requirement of §4.1.
    pub fn stuck_at_exhaustive(num_faults: usize) -> Self {
        RectifyConfig {
            model: CorrectionModel::StuckAt,
            max_corrections: num_faults,
            exhaustive: true,
            max_rounds: 100_000,
            max_nodes: 20_000,
            max_solutions: 10_000,
            path_trace_vector_cap: 32,
            path_trace_fraction: 1.0,
            max_candidate_lines: usize::MAX,
            wire_source_limit: 0,
            max_candidates_per_node: usize::MAX,
            ladder: vec![ParamLevel::new(0.0, 1.0, 0.0).with_promote(1.0)],
            theorem_floor: true,
            time_limit: None,
            traversal: Traversal::Rounds,
            jobs: 1,
            incremental: true,
            matrix_cache_bytes: 256 << 20,
        }
    }
}

/// A valid correction tuple: applying `corrections` to the base netlist
/// makes it match the reference on every vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Solution {
    /// The corrections, in application order.
    pub corrections: Vec<Correction>,
}

impl Solution {
    /// The distinct lines of the tuple.
    pub fn lines(&self) -> Vec<GateId> {
        let mut v: Vec<GateId> = self.corrections.iter().map(|c| c.line()).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Interprets the tuple as stuck-at faults, if every correction is a
    /// constant (always true in [`CorrectionModel::StuckAt`] runs).
    pub fn stuck_at_tuple(&self) -> Option<Vec<StuckAt>> {
        let mut out = Vec::with_capacity(self.corrections.len());
        for c in &self.corrections {
            out.push(StuckAt::new(c.line(), c.as_stuck_at()?));
        }
        out.sort();
        Some(out)
    }
}

/// Counters and timings of a run (Table 2's diagnosis/correction columns
/// come straight from here).
#[derive(Debug, Clone, Default)]
pub struct RectifyStats {
    /// Decision-tree nodes evaluated (the paper's "nodes" column).
    pub nodes: usize,
    /// Node evaluations that skipped diagnosis + screening because the
    /// child could never join the tree (depth or node cap reached) — the
    /// node was still prepared and solution-checked.
    pub expansions_skipped: usize,
    /// Rounds executed.
    pub rounds: usize,
    /// Time in the diagnosis stage (path-trace + heuristic 1).
    pub diagnosis_time: Duration,
    /// Time in the correction stage (enumeration + screening + ranking).
    pub correction_time: Duration,
    /// Time simulating node circuits.
    pub simulation_time: Duration,
    /// Time in path-trace marking (a component of `diagnosis_time`).
    pub path_trace_time: Duration,
    /// Time ranking suspect lines with heuristic 1 (the flip-and-propagate
    /// pass; the other component of `diagnosis_time`).
    pub rank_time: Duration,
    /// Time in [`Rectifier`]'s screening stage proper — heuristic-2
    /// enumeration plus heuristic-3 cone propagation (`correction_time`
    /// minus final sorting/truncation).
    pub screen_time: Duration,
    /// Total time evaluating decision-tree nodes (simulate + diagnose +
    /// screen; the sum over all nodes).
    pub evaluate_time: Duration,
    /// Corrections evaluated against heuristic 2.
    pub corrections_screened: usize,
    /// Corrections surviving both screens (before the per-node cap).
    pub corrections_qualified: usize,
    /// Suspect lines rejected because their heuristic-1 correcting
    /// potential fell below the ladder level's `h1` threshold.
    pub lines_rejected_h1: usize,
    /// Corrections rejected by heuristic 2 (the `V_err` bit-complement
    /// test of Theorem 1), including candidates with no evaluable output
    /// row.
    pub corrections_rejected_h2: usize,
    /// Corrections rejected by heuristic 3 (the `V_corr` preservation
    /// test). Invariant: `corrections_screened ==
    /// corrections_rejected_h2 + corrections_rejected_h3 +
    /// corrections_qualified`.
    pub corrections_rejected_h3: usize,
    /// Packed 64-vector words evaluated across every simulator, worker
    /// simulators included — the machine-independent measure of
    /// simulation work (see `incdx_sim::Simulator::words_simulated`).
    pub words_simulated: u64,
    /// Gate evaluations triggered by change-bounded cone propagation
    /// (`Simulator::run_cone_events`), across every simulator.
    pub events_propagated: u64,
    /// Packed words *not* evaluated because the change-bounded walk saw no
    /// changed fanin — simulation work avoided relative to plain cone
    /// resimulation.
    pub words_skipped: u64,
    /// Memoized fanout-cone lookups served from a [`ConeCache`] instead of
    /// recomputed.
    pub cone_cache_hits: u64,
    /// Node evaluations that started from a cached parent value matrix
    /// instead of a from-scratch resimulation.
    pub matrix_cache_hits: u64,
    /// Entries evicted from the node value-matrix cache by the byte budget.
    pub matrix_cache_evictions: u64,
    /// Worker-utilization telemetry aggregated over every parallel
    /// screening section of the run.
    pub parallel: ParallelTelemetry,
    /// Wire-source candidates dropped by the per-line cap, summed.
    pub wire_sources_truncated: usize,
    /// Candidates dropped by `max_candidates_per_node`, summed.
    pub candidates_truncated: usize,
    /// Suspect lines dropped by `max_candidate_lines`, summed.
    pub lines_truncated: usize,
    /// Deepest parameter-ladder level any node had to relax to.
    pub deepest_ladder_level: usize,
    /// True when a budget (rounds, nodes, solutions, time) cut the search.
    pub truncated: bool,
}

/// The outcome of [`Rectifier::run`].
#[derive(Debug, Clone)]
pub struct RectifyResult {
    /// Valid correction tuples, in discovery order. In exhaustive mode
    /// these are deduplicated and minimal (no tuple is a superset of
    /// another). An empty-corrections solution means the netlist already
    /// matched the reference.
    pub solutions: Vec<Solution>,
    /// Search statistics.
    pub stats: RectifyStats,
}

impl RectifyResult {
    /// Distinct lines over all solutions — the paper's "# sites" column.
    pub fn distinct_sites(&self) -> usize {
        let mut lines: Vec<GateId> = self
            .solutions
            .iter()
            .flat_map(|s| s.lines())
            .collect();
        lines.sort();
        lines.dedup();
        lines.len()
    }
}

enum NodeEval {
    Solved,
    Dead,
    Open { candidates: Vec<RankedCorrection> },
}

/// The incremental rectification engine (see the crate docs for the
/// algorithm and the crate example for usage).
#[derive(Debug)]
pub struct Rectifier {
    base: Netlist,
    base_inputs: Vec<GateId>,
    vectors: PackedMatrix,
    spec: Response,
    config: RectifyConfig,
    sim: Simulator,
    stats: RectifyStats,
    /// Memoized fanout cones of the *base* netlist, reused across every
    /// root evaluation and ladder level (swapped into the node-local cone
    /// cache while the root node is being evaluated).
    base_cones: ConeCache,
    /// The base netlist's fully simulated value matrix, memoized on the
    /// first root evaluation (incremental mode only): ladder restarts
    /// re-evaluate the root, and every matrix-cache miss replays its
    /// corrections incrementally from this matrix instead of
    /// resimulating the whole circuit.
    base_vals: Option<PackedMatrix>,
    /// Value matrices of open tree nodes, keyed by correction prefix.
    matrix_cache: NodeMatrixCache,
}

impl Rectifier {
    /// Creates a session rectifying `netlist` toward the reference
    /// responses `spec` under the test vectors `vectors` (one row per
    /// primary input of `netlist`).
    ///
    /// `spec` must have been captured/compared against the same vector
    /// set and an identical output ordering.
    ///
    /// # Panics
    ///
    /// Panics if the netlist is sequential (scan-convert first) or the
    /// shapes disagree.
    pub fn new(
        netlist: Netlist,
        vectors: PackedMatrix,
        spec: Response,
        config: RectifyConfig,
    ) -> Self {
        assert!(netlist.is_combinational(), "scan-convert sequential circuits first");
        assert_eq!(
            vectors.rows(),
            netlist.inputs().len(),
            "one vector row per primary input"
        );
        assert_eq!(
            spec.po_values().rows(),
            netlist.outputs().len(),
            "reference output count mismatch"
        );
        assert_eq!(
            spec.po_values().num_vectors(),
            vectors.num_vectors(),
            "reference vector count mismatch"
        );
        let base_inputs = netlist.inputs().to_vec();
        let base_cones = ConeCache::new(&netlist);
        let matrix_cache = NodeMatrixCache::new(if config.incremental {
            config.matrix_cache_bytes
        } else {
            0
        });
        Rectifier {
            base: netlist,
            base_inputs,
            vectors,
            spec,
            config,
            sim: Simulator::new(),
            stats: RectifyStats::default(),
            base_cones,
            base_vals: None,
            matrix_cache,
        }
    }

    /// Runs the search.
    pub fn run(mut self) -> RectifyResult {
        let started = Instant::now();
        // Global parameter relaxation (§3.3): the whole tree search runs at
        // one `h1/h2/h3` level; only if it "returns with no corrections" —
        // no solution — does the run restart at the next, looser level.
        let ladder = self.config.ladder.clone();
        let mut solutions = Vec::new();
        for (level_idx, level) in ladder.iter().enumerate() {
            self.stats.deepest_ladder_level = level_idx;
            solutions = self.search_level(level, started);
            let out_of_time = self
                .config
                .time_limit
                .is_some_and(|limit| started.elapsed() > limit);
            if !solutions.is_empty() || out_of_time {
                break;
            }
        }
        // Exhaustive mode reports only minimal tuples.
        if self.config.exhaustive {
            solutions = minimal_solutions(solutions);
        }
        RectifyResult {
            solutions,
            stats: self.stats,
        }
    }

    /// One full round-based tree traversal at a fixed parameter level.
    fn search_level(&mut self, level: &ParamLevel, started: Instant) -> Vec<Solution> {
        let mut solutions: Vec<Solution> = Vec::new();
        let mut seen_solutions: HashSet<Vec<Correction>> = HashSet::new();
        let mut visited: HashSet<Vec<Correction>> = HashSet::new();
        let mut nodes: Vec<Node> = Vec::new();
        let mut rounds_this_level = 0usize;

        let out_of_time = |s: &Self| {
            s.config
                .time_limit
                .is_some_and(|limit| started.elapsed() > limit)
        };

        match self.evaluate(&[], level, true) {
            NodeEval::Solved => {
                return vec![Solution { corrections: vec![] }];
            }
            NodeEval::Dead => {
                return vec![];
            }
            NodeEval::Open { candidates } => {
                nodes.push(Node {
                    corrections: vec![],
                    candidates,
                    next: 0,
                });
            }
        }
        visited.insert(vec![]);

        // Rounds mode: each iteration is one round of Fig. 2. DFS/BFS
        // ablation modes: each iteration is a single node expansion, so
        // their budget scales with the node cap instead of the round cap.
        let iteration_budget = match self.config.traversal {
            Traversal::Rounds => self.config.max_rounds,
            Traversal::Dfs | Traversal::Bfs => self
                .config
                .max_nodes
                .saturating_mul(4)
                .min(self.config.max_rounds.saturating_mul(1 << 12)),
        };
        'rounds: while rounds_this_level < iteration_budget {
            if nodes.iter().all(|n| !n.open()) {
                break;
            }
            rounds_this_level += 1;
            self.stats.rounds += 1;
            // Rounds: only nodes present at the start of the round expand
            // (Fig. 2: the tree at most doubles per round). DFS: the most
            // recently created open node. BFS: the oldest open node.
            let plan: Vec<usize> = match self.config.traversal {
                Traversal::Rounds => (0..nodes.len()).collect(),
                Traversal::Dfs => nodes.iter().rposition(Node::open).into_iter().collect(),
                Traversal::Bfs => nodes.iter().position(Node::open).into_iter().collect(),
            };
            for idx in plan {
                if out_of_time(self) {
                    self.stats.truncated = true;
                    break 'rounds;
                }
                if !nodes[idx].open() {
                    // Closed nodes can never spawn children again; their
                    // cached matrix is dead weight.
                    self.matrix_cache.remove(&nodes[idx].corrections);
                    continue;
                }
                let cand = nodes[idx].candidates[nodes[idx].next];
                nodes[idx].next += 1;
                let mut corrections = nodes[idx].corrections.clone();
                corrections.push(cand.correction);
                let mut canonical = corrections.clone();
                canonical.sort();
                if !visited.insert(canonical.clone()) {
                    continue;
                }
                // A superset of a known solution cannot be minimal.
                if self.config.exhaustive
                    && seen_solutions
                        .iter()
                        .any(|s| s.iter().all(|c| canonical.contains(c)))
                {
                    continue;
                }
                // A child at the depth or node cap can never join the
                // tree; evaluate it lazily — solution check only, no
                // diagnosis/screening for a candidate list nobody reads.
                let expandable = corrections.len() < self.config.max_corrections
                    && nodes.len() < self.config.max_nodes;
                match self.evaluate(&corrections, level, expandable) {
                    NodeEval::Solved => {
                        let mut key = corrections.clone();
                        key.sort();
                        if seen_solutions.insert(key) {
                            solutions.push(Solution { corrections });
                        }
                        if !self.config.exhaustive {
                            break 'rounds;
                        }
                        if solutions.len() >= self.config.max_solutions {
                            self.stats.truncated = true;
                            break 'rounds;
                        }
                    }
                    NodeEval::Dead => {}
                    NodeEval::Open { candidates } => {
                        if corrections.len() < self.config.max_corrections
                            && nodes.len() < self.config.max_nodes
                        {
                            nodes.push(Node {
                                corrections,
                                candidates,
                                next: 0,
                            });
                        } else if nodes.len() >= self.config.max_nodes {
                            // (The unexpanded child cached no matrix, so
                            // there is nothing to evict here.)
                            self.stats.truncated = true;
                        }
                    }
                }
                if !nodes[idx].open() {
                    self.matrix_cache.remove(&nodes[idx].corrections);
                }
            }
        }
        if (self.config.exhaustive || solutions.is_empty())
            && rounds_this_level >= iteration_budget
            && nodes.iter().any(|n| n.open())
        {
            self.stats.truncated = true;
        }
        solutions
    }

    /// Evaluates one hypothetical node — the base netlist with
    /// `corrections` applied — at a parameter level and returns its
    /// ranked, screened candidate list: the engine's view of "what would
    /// I try next here". Empty when the node is already consistent, dead,
    /// or nothing qualifies at this level. Intended for debugging,
    /// visualisation and the ablation benches.
    pub fn rank_candidates(
        &mut self,
        corrections: &[Correction],
        level: &ParamLevel,
    ) -> Vec<RankedCorrection> {
        match self.evaluate(corrections, level, true) {
            NodeEval::Open { candidates } => candidates,
            _ => Vec::new(),
        }
    }

    /// Evaluates one decision-tree node: replay corrections, simulate,
    /// and — if still failing — produce its ranked candidate list.
    ///
    /// `expand = false` is the lazy path for children that can never join
    /// the tree (depth or node cap reached): the node is still prepared
    /// and checked for being a solution, but diagnosis and screening —
    /// whose only product is the discarded candidate list — are skipped
    /// and an empty `Open` is returned for any still-failing node.
    fn evaluate(
        &mut self,
        corrections: &[Correction],
        level: &ParamLevel,
        expand: bool,
    ) -> NodeEval {
        let t_eval = Instant::now();
        let outcome = self.evaluate_node(corrections, level, expand);
        self.stats.evaluate_time += t_eval.elapsed();
        outcome
    }

    fn evaluate_node(
        &mut self,
        corrections: &[Correction],
        level: &ParamLevel,
        expand: bool,
    ) -> NodeEval {
        self.stats.nodes += 1;
        let t0 = Instant::now();
        let words_before = self.sim.words_simulated();
        let events_before = self.sim.events_propagated();
        let skipped_before = self.sim.words_skipped();
        let prepared = self.prepare_node(corrections);
        self.stats.words_simulated += self.sim.words_simulated() - words_before;
        self.stats.events_propagated += self.sim.events_propagated() - events_before;
        self.stats.words_skipped += self.sim.words_skipped() - skipped_before;
        let Some((netlist, vals, mut cones)) = prepared else {
            self.stats.simulation_time += t0.elapsed();
            return NodeEval::Dead;
        };
        let response = Response::compare(&netlist, &vals, &self.spec);
        self.stats.simulation_time += t0.elapsed();
        let outcome = if response.matches() {
            NodeEval::Solved
        } else if corrections.len() >= self.config.max_corrections {
            NodeEval::Dead
        } else if !expand {
            self.stats.expansions_skipped += 1;
            NodeEval::Open {
                candidates: Vec::new(),
            }
        } else {
            self.expand_node(&netlist, &vals, &response, corrections, level, &mut cones)
        };
        self.stats.cone_cache_hits += cones.take_hits();
        if corrections.is_empty() {
            // Hand the base netlist's cones back for the next root
            // evaluation (ladder restarts re-evaluate the root).
            self.base_cones = cones;
        }
        // Only open nodes can become parents, so only their matrices are
        // worth caching for child reuse — and an unexpanded child can
        // never join the tree, so its matrix would be dead weight too.
        if self.config.incremental
            && expand
            && corrections.len() < self.config.max_corrections
            && matches!(outcome, NodeEval::Open { .. })
        {
            self.stats.matrix_cache_evictions +=
                self.matrix_cache.insert(corrections.to_vec(), netlist, vals);
        }
        outcome
    }

    /// Builds the node's netlist, fully simulated value matrix, and cone
    /// cache. Incremental path: clone the parent's cached matrix, apply
    /// only the last correction, evaluate any appended gates plus the
    /// corrected line, and propagate change-bounded through the line's
    /// fanout cone — bit-identical to the from-scratch fallback because a
    /// correction rewrites exactly one existing gate (appended gates feed
    /// only the corrected line) and gate evaluation is a pure function of
    /// whole fanin words.
    ///
    /// Returns `None` when a correction fails to apply (a dead node).
    fn prepare_node(
        &mut self,
        corrections: &[Correction],
    ) -> Option<(Netlist, PackedMatrix, ConeCache)> {
        if corrections.is_empty() {
            let netlist = self.base.clone();
            let vals = self.base_values();
            let cones = std::mem::take(&mut self.base_cones);
            return Some((netlist, vals, cones));
        }
        if self.config.incremental {
            let (prefix, last) = corrections.split_at(corrections.len() - 1);
            if let Some((mut netlist, mut vals)) = self.matrix_cache.get_clone(prefix) {
                self.stats.matrix_cache_hits += 1;
                if !self.apply_and_propagate(&mut netlist, &mut vals, &last[0]) {
                    return None;
                }
                let cones = ConeCache::new(&netlist);
                return Some((netlist, vals, cones));
            }
            // Miss: replay every correction incrementally from the base
            // matrix — k cone resimulations instead of a whole-circuit
            // pass.
            let mut netlist = self.base.clone();
            let mut vals = self.base_values();
            for c in corrections {
                if !self.apply_and_propagate(&mut netlist, &mut vals, c) {
                    return None;
                }
            }
            let cones = ConeCache::new(&netlist);
            return Some((netlist, vals, cones));
        }
        // From scratch: clone the base, replay every correction, simulate
        // everything.
        let mut netlist = self.base.clone();
        for c in corrections {
            if c.apply(&mut netlist).is_err() {
                return None;
            }
        }
        let vals = self
            .sim
            .run_for_inputs(&netlist, &self.base_inputs, &self.vectors);
        let cones = ConeCache::new(&netlist);
        Some((netlist, vals, cones))
    }

    /// The base netlist's fully simulated value matrix. Memoized in
    /// incremental mode (the matrix is a pure function of the base
    /// netlist and the vector set); recomputed per call otherwise so
    /// `incremental = false` keeps the original engine's work profile.
    fn base_values(&mut self) -> PackedMatrix {
        if !self.config.incremental {
            return self
                .sim
                .run_for_inputs(&self.base, &self.base_inputs, &self.vectors);
        }
        if self.base_vals.is_none() {
            self.base_vals =
                Some(self.sim.run_for_inputs(&self.base, &self.base_inputs, &self.vectors));
        }
        self.base_vals.clone().expect("just filled")
    }

    /// Applies one correction to a consistent (netlist, matrix) pair and
    /// restores consistency incrementally: evaluate any appended gates,
    /// then the corrected line, then propagate change-bounded through its
    /// fanout cone. Returns `false` when the correction does not apply.
    fn apply_and_propagate(
        &mut self,
        netlist: &mut Netlist,
        vals: &mut PackedMatrix,
        c: &Correction,
    ) -> bool {
        let rows_before = netlist.len();
        if c.apply(netlist).is_err() {
            return false;
        }
        if netlist.len() > rows_before {
            // Appended gates (an InvertInput NOT, an InsertGate aux gate)
            // read only pre-existing lines and feed only the corrected
            // line: evaluate them once, in id order.
            vals.grow_rows(netlist.len());
            for idx in rows_before..netlist.len() {
                self.sim.eval_gate(netlist, GateId::from_index(idx), vals);
            }
        }
        self.sim.eval_gate(netlist, c.line(), vals);
        let cone = netlist.fanout_cone_sorted(c.line());
        self.sim.run_cone_events(netlist, vals, &cone);
        true
    }

    /// Diagnosis + correction for a node that is still failing: path-trace,
    /// heuristic-1 line ranking, and the screened, ranked candidate list.
    #[allow(clippy::too_many_arguments)]
    fn expand_node(
        &mut self,
        netlist: &Netlist,
        vals: &PackedMatrix,
        response: &Response,
        corrections: &[Correction],
        level: &ParamLevel,
        cones: &mut ConeCache,
    ) -> NodeEval {
        // ---- Diagnosis (§3.1) ----
        let t1 = Instant::now();
        let counts = path_trace_counts(
            netlist,
            vals,
            response,
            &self.spec,
            self.config.path_trace_vector_cap,
        );
        let mut marked: Vec<GateId> = netlist
            .ids()
            .filter(|id| counts[id.index()] > 0)
            .collect();
        marked.sort_by_key(|id| std::cmp::Reverse(counts[id.index()]));
        let fraction = self.config.path_trace_fraction.max(level.promote);
        let mut take = ((marked.len() as f64 * fraction).ceil() as usize)
            .max(8)
            .min(marked.len());
        // Never cut inside a tie class: lines with equal path-trace counts
        // are indistinguishable to this heuristic, and the dropped half
        // could contain the only marked member of a valid tuple.
        while take < marked.len()
            && counts[marked[take].index()] == counts[marked[take - 1].index()]
        {
            take += 1;
        }
        if take > self.config.max_candidate_lines {
            self.stats.lines_truncated += take - self.config.max_candidate_lines;
            take = self.config.max_candidate_lines;
        }
        let promoted = &marked[..take];
        self.stats.path_trace_time += t1.elapsed();
        // When the level disables the h1 filter (exhaustive stuck-at
        // mode), skip the flip-and-propagate pass and order lines by
        // path-trace count alone.
        let t_rank = Instant::now();
        let scored_lines: Vec<(GateId, f64)> = if level.h1 <= 0.0 {
            let max_count = promoted
                .first()
                .map(|l| counts[l.index()] as f64)
                .unwrap_or(1.0)
                .max(1.0);
            promoted
                .iter()
                .map(|&l| (l, counts[l.index()] as f64 / max_count))
                .collect()
        } else {
            self.heuristic1(netlist, vals, response, promoted, cones)
        };
        self.stats.rank_time += t_rank.elapsed();
        self.stats.diagnosis_time += t1.elapsed();

        // ---- Correction (§3.2) at the run's current parameter level ----
        let t2 = Instant::now();
        let n_err = response.num_failing();
        let nv = self.vectors.num_vectors();
        let n_corr = nv - n_err;
        let remaining = (self.config.max_corrections - corrections.len()).max(1);
        let h2_threshold = if self.config.theorem_floor {
            level.h2.min(1.0 / remaining as f64)
        } else {
            level.h2
        };
        let mut ranked = self.screen_level(
            netlist,
            vals,
            response,
            &scored_lines,
            level,
            h2_threshold,
            n_err,
            n_corr,
            cones,
        );
        let outcome = if ranked.is_empty() {
            // "A leaf with failure" (§3.3).
            NodeEval::Dead
        } else {
            ranked.sort_by(|a, b| b.rank.total_cmp(&a.rank));
            if ranked.len() > self.config.max_candidates_per_node {
                self.stats.candidates_truncated +=
                    ranked.len() - self.config.max_candidates_per_node;
                ranked.truncate(self.config.max_candidates_per_node);
            }
            NodeEval::Open { candidates: ranked }
        };
        self.stats.correction_time += t2.elapsed();
        outcome
    }

    /// Heuristic 1: flip each promoted line on the failing vectors,
    /// propagate through its fanout cone, and score by the fraction of
    /// erroneous PO bits rectified.
    ///
    /// Lines are scored in parallel ([`RectifyConfig::jobs`]); each
    /// worker owns a simulator and a private copy of the value matrix
    /// (every task restores the cone rows it perturbs, so the copy stays
    /// equal to `vals` between tasks). Scores merge in input order and
    /// the final sort is stable, so the ranking is bit-identical to the
    /// serial one.
    fn heuristic1(
        &mut self,
        netlist: &Netlist,
        vals: &PackedMatrix,
        response: &Response,
        lines: &[GateId],
        cones: &mut ConeCache,
    ) -> Vec<(GateId, f64)> {
        let err_words: Vec<u64> = response.failing_vectors().words().to_vec();
        // Planting XORs the error mask into the stem row, so only word
        // columns with a failing vector can ever change anywhere in the
        // cone — propagation, save, and restore all restrict to them.
        let err_cols: Vec<u32> = err_words
            .iter()
            .enumerate()
            .filter(|&(_, &m)| m != 0)
            .map(|(w, _)| w as u32)
            .collect();
        let total_bad = response.mismatch_bits().max(1);
        let wpr = vals.words_per_row();
        let nv = vals.num_vectors();
        let spec = &self.spec;
        let incremental = self.config.incremental;
        // Memoize every line's cone up front (serially), then share the
        // `Arc`s read-only across workers.
        let cone_refs: Vec<Arc<ConeSet>> =
            lines.iter().map(|&l| cones.get(netlist, l)).collect();
        let outcome = run_parallel_with(
            lines.len(),
            self.config.jobs,
            || (Simulator::new(), vals.clone(), Vec::<u64>::new()),
            |(sim, vals, saved), i| {
                let line = lines[i];
                let words_before = sim.words_simulated();
                let events_before = sim.events_propagated();
                let skipped_before = sim.words_skipped();
                let cone = &cone_refs[i];
                saved.clear();
                if incremental {
                    for &g in cone.sorted() {
                        let row = vals.row(g.index());
                        for &w in &err_cols {
                            saved.push(row[w as usize]);
                        }
                    }
                } else {
                    for &g in cone.sorted() {
                        saved.extend_from_slice(vals.row(g.index()));
                    }
                }
                {
                    let row = vals.row_mut(line.index());
                    for (w, &m) in row.iter_mut().zip(&err_words) {
                        *w ^= m;
                    }
                }
                if incremental {
                    sim.run_cone_events_cols(netlist, vals, cone.sorted(), &err_cols);
                } else {
                    sim.run_cone(netlist, vals, cone.sorted());
                }
                // Count rectified erroneous (vector, PO) bits.
                let mut rectified = 0usize;
                for (po_idx, &po) in netlist.outputs().iter().enumerate() {
                    if !cone.contains(po) {
                        continue;
                    }
                    let after = vals.row(po.index());
                    let spec_row = spec.po_values().row(po_idx);
                    let before = response.po_values().row(po_idx);
                    for w in 0..wpr {
                        let was_bad = before[w] ^ spec_row[w];
                        let now_bad = after[w] ^ spec_row[w];
                        let mut fixed = was_bad & !now_bad;
                        if w == wpr - 1 {
                            fixed &= PackedBits::new(nv).tail_mask();
                        }
                        rectified += fixed.count_ones() as usize;
                    }
                }
                if incremental {
                    let nc = err_cols.len();
                    for (k, &g) in cone.sorted().iter().enumerate() {
                        let row = vals.row_mut(g.index());
                        for (j, &w) in err_cols.iter().enumerate() {
                            row[w as usize] = saved[k * nc + j];
                        }
                    }
                } else {
                    for (k, &g) in cone.sorted().iter().enumerate() {
                        vals.row_mut(g.index())
                            .copy_from_slice(&saved[k * wpr..(k + 1) * wpr]);
                    }
                }
                (
                    rectified,
                    sim.words_simulated() - words_before,
                    sim.events_propagated() - events_before,
                    sim.words_skipped() - skipped_before,
                )
            },
        );
        let mut scored = Vec::with_capacity(lines.len());
        for (i, (rectified, words, events, skipped)) in outcome.results.into_iter().enumerate() {
            self.stats.words_simulated += words;
            self.stats.events_propagated += events;
            self.stats.words_skipped += skipped;
            scored.push((lines[i], rectified as f64 / total_bad as f64));
        }
        self.stats.parallel.merge(&outcome.telemetry);
        scored.sort_by(|a, b| b.1.total_cmp(&a.1));
        scored
    }

    /// One ladder level of the correction stage: enumerate, screen with
    /// heuristics 2 and 3, and rank the survivors.
    ///
    /// Suspect lines fan out across [`RectifyConfig::jobs`] workers, one
    /// task per line covering both screening phases. Workers carry a
    /// private simulator plus a private copy of the value matrix (phase B
    /// restores every cone row it perturbs, so the copy stays equal to
    /// `vals` between tasks); survivors merge in line order, preserving
    /// the serial candidate sequence bit for bit.
    #[allow(clippy::too_many_arguments)]
    fn screen_level(
        &mut self,
        netlist: &Netlist,
        vals: &PackedMatrix,
        response: &Response,
        scored_lines: &[(GateId, f64)],
        level: &ParamLevel,
        h2_threshold: f64,
        n_err: usize,
        n_corr: usize,
        cones: &mut ConeCache,
    ) -> Vec<RankedCorrection> {
        let t_screen = Instant::now();
        let nv = self.vectors.num_vectors();
        let wpr = vals.words_per_row();
        let tail = PackedBits::new(nv).tail_mask();
        let err_words: Vec<u64> = response.failing_vectors().words().to_vec();
        let v_ratio = n_err as f64 / nv as f64;
        // Old per-PO diff rows (for the after-failing-mask of POs outside
        // a candidate's cone).
        let old_diff: Vec<Vec<u64>> = netlist
            .outputs()
            .iter()
            .enumerate()
            .map(|(po_idx, _)| {
                let got = response.po_values().row(po_idx);
                let want = self.spec.po_values().row(po_idx);
                got.iter().zip(want).map(|(a, b)| a ^ b).collect()
            })
            .collect();
        // scored_lines is sorted descending, so the h1 threshold keeps a
        // prefix; everything after it is rejected wholesale.
        let keep = scored_lines
            .iter()
            .take_while(|&&(_, s)| s + 1e-12 >= level.h1)
            .count();
        self.stats.lines_rejected_h1 += scored_lines.len() - keep;
        let active = &scored_lines[..keep];
        let spec = &self.spec;
        let config = &self.config;
        let incremental = config.incremental;
        // Memoize the active lines' cones up front (serially) and share the
        // `Arc`s read-only across workers — both screening phases and the
        // wire-source eligibility test walk the same cones.
        let cone_refs: Vec<Arc<ConeSet>> = active
            .iter()
            .map(|&(l, _)| cones.get(netlist, l))
            .collect();
        let outcome = run_parallel_with(
            active.len(),
            config.jobs,
            || {
                (
                    Simulator::new(),
                    vals.clone(),
                    Vec::<u64>::new(),
                    CorrectionScratch::default(),
                    Vec::<u32>::new(),
                )
            },
            |(sim, vals, saved, scratch, cols), li| {
                let (line, _) = active[li];
                let cone = &cone_refs[li];
                let mut delta = ScreenDelta::default();
                let words_before = sim.words_simulated();
                let events_before = sim.events_propagated();
                let skipped_before = sim.words_skipped();
                // ---- Phase A: heuristic 2 on every candidate (cheap,
                // local, allocation-free for the wire corrections that
                // dominate). ----
                let mut pass: Vec<(Correction, f64)> = Vec::new();
                let cur = vals.row(line.index()).to_vec();
                let qualifies = |complemented: usize| -> bool {
                    complemented as f64 / n_err.max(1) as f64 + 1e-12 >= h2_threshold
                };
                // Non-wire candidates through the generic evaluator
                // (borrowed rows into the worker's scratch; the fused
                // masked popcount avoids a diff temporary — err_words is
                // already tail-masked).
                for corr in enumerate_corrections(netlist, line, config.model, &[]) {
                    delta.screened += 1;
                    let Some(new_row) = correction_output_row_into(netlist, vals, &corr, scratch)
                    else {
                        continue;
                    };
                    let complemented = xor_masked_count_ones(new_row, &cur, &err_words);
                    if qualifies(complemented) {
                        pass.push((corr, complemented as f64 / n_err.max(1) as f64));
                    }
                }
                // Wire candidates: exhaustive over every cycle-safe source,
                // fused evaluation per gate family.
                if config.model == CorrectionModel::DesignErrors
                    && netlist.gate(line).kind().is_logic()
                {
                    let gate = netlist.gate(line);
                    let kind = gate.kind();
                    let fanins = gate.fanins().to_vec();
                    // Folded fanin rows: `core` over all fanins, `base_wo[p]`
                    // over all but port p, under the gate's core operation
                    // (AND / OR / XOR, inversion applied at the end).
                    enum Family {
                        And,
                        Or,
                        Xor,
                    }
                    let (family, identity, invert) = match kind {
                        GateKind::And => (Family::And, !0u64, false),
                        GateKind::Nand => (Family::And, !0u64, true),
                        GateKind::Buf => (Family::And, !0u64, false),
                        GateKind::Not => (Family::And, !0u64, true),
                        GateKind::Or => (Family::Or, 0u64, false),
                        GateKind::Nor => (Family::Or, 0u64, true),
                        GateKind::Xor => (Family::Xor, 0u64, false),
                        GateKind::Xnor => (Family::Xor, 0u64, true),
                        _ => unreachable!("is_logic checked"),
                    };
                    let fold = |skip: Option<usize>| -> Vec<u64> {
                        let mut acc = vec![identity; wpr];
                        for (p, &f) in fanins.iter().enumerate() {
                            if Some(p) == skip {
                                continue;
                            }
                            let row = vals.row(f.index());
                            for (a, &r) in acc.iter_mut().zip(row) {
                                match family {
                                    Family::And => *a &= r,
                                    Family::Or => *a |= r,
                                    Family::Xor => *a ^= r,
                                }
                            }
                        }
                        acc
                    };
                    let core = fold(None);
                    let base_wo: Vec<Vec<u64>> =
                        (0..fanins.len()).map(|p| fold(Some(p))).collect();
                    let combine = |base: &[u64], src: &[u64], w: usize| -> u64 {
                        let v = match family {
                            Family::And => base[w] & src[w],
                            Family::Or => base[w] | src[w],
                            Family::Xor => base[w] ^ src[w],
                        };
                        if invert {
                            !v
                        } else {
                            v
                        }
                    };
                    let can_add = matches!(
                        kind,
                        GateKind::And
                            | GateKind::Nand
                            | GateKind::Or
                            | GateKind::Nor
                            | GateKind::Xor
                            | GateKind::Xnor
                    );
                    // Eligible sources, optionally stride-sampled.
                    let mut eligible: Vec<GateId> = netlist
                        .ids()
                        .filter(|&s| {
                            s != line
                                && !cone.contains(s)
                                && !matches!(
                                    netlist.gate(s).kind(),
                                    GateKind::Const0 | GateKind::Const1 | GateKind::Dff
                                )
                        })
                        .collect();
                    if config.wire_source_limit > 0
                        && eligible.len() > config.wire_source_limit
                    {
                        delta.wire_sources_truncated +=
                            eligible.len() - config.wire_source_limit;
                        let stride = eligible.len().div_ceil(config.wire_source_limit);
                        eligible = eligible.into_iter().step_by(stride).collect();
                    }
                    for src in eligible {
                        let srow = vals.row(src.index());
                        // AddInput.
                        if can_add && !fanins.contains(&src) {
                            delta.screened += 1;
                            let mut complemented = 0usize;
                            for w in 0..wpr {
                                let diff = (combine(&core, srow, w) ^ cur[w]) & err_words[w];
                                complemented += diff.count_ones() as usize;
                            }
                            if qualifies(complemented) {
                                pass.push((
                                    Correction::new(
                                        line,
                                        CorrectionAction::AddInput { source: src },
                                    ),
                                    complemented as f64 / n_err.max(1) as f64,
                                ));
                            }
                        }
                        // ReplaceInput on every port.
                        for (p, &old) in fanins.iter().enumerate() {
                            if old == src {
                                continue;
                            }
                            delta.screened += 1;
                            let mut complemented = 0usize;
                            for w in 0..wpr {
                                let diff =
                                    (combine(&base_wo[p], srow, w) ^ cur[w]) & err_words[w];
                                complemented += diff.count_ones() as usize;
                            }
                            if qualifies(complemented) {
                                pass.push((
                                    Correction::new(
                                        line,
                                        CorrectionAction::ReplaceInput { port: p, source: src },
                                    ),
                                    complemented as f64 / n_err.max(1) as f64,
                                ));
                            }
                        }
                        // InsertGate over the basic 2-input kinds (restores a
                        // dropped "simple gate" in one correction). The
                        // inverting kinds complement almost every V_err bit and
                        // so pass heuristic 2 for free, flooding the expensive
                        // heuristic-3 stage; they only join once the ladder has
                        // relaxed h3 — the point where such repairs become
                        // admissible at all.
                        let insert_kinds: &[GateKind] = if level.h3 <= 0.85 {
                            &[GateKind::And, GateKind::Or, GateKind::Nand, GateKind::Nor]
                        } else {
                            &[GateKind::And, GateKind::Or]
                        };
                        for &k2 in insert_kinds {
                            delta.screened += 1;
                            let mut complemented = 0usize;
                            for w in 0..wpr {
                                let v = match k2 {
                                    GateKind::And => cur[w] & srow[w],
                                    GateKind::Or => cur[w] | srow[w],
                                    GateKind::Nand => !(cur[w] & srow[w]),
                                    _ => !(cur[w] | srow[w]),
                                };
                                let diff = (v ^ cur[w]) & err_words[w];
                                complemented += diff.count_ones() as usize;
                            }
                            if qualifies(complemented) {
                                pass.push((
                                    Correction::new(
                                        line,
                                        CorrectionAction::InsertGate { kind: k2, other: src },
                                    ),
                                    complemented as f64 / n_err.max(1) as f64,
                                ));
                            }
                        }
                    }
                }
                delta.rejected_h2 = delta.screened - pass.len();
                // ---- Phase B: heuristic 3 (cone propagation) on
                // survivors. ----
                let mut line_ranked: Vec<RankedCorrection> = Vec::new();
                for (corr, h2_fraction) in pass {
                    // The raw (unmasked-tail) output row is exactly what a
                    // full resimulation of the corrected circuit would
                    // store for the line, so it can be planted verbatim.
                    let Some(new_row) = correction_output_row_into(netlist, vals, &corr, scratch)
                    else {
                        delta.rejected_h3 += 1;
                        continue;
                    };
                    saved.clear();
                    if incremental {
                        // Planting replaces the stem row wholesale, but
                        // only the word columns where it actually differs
                        // from the current row can change anywhere in the
                        // cone — propagate, save, and restore just those.
                        cols.clear();
                        for (w, (&n, &c)) in new_row.iter().zip(&cur).enumerate() {
                            if n != c {
                                cols.push(w as u32);
                            }
                        }
                        for &g in cone.sorted() {
                            let row = vals.row(g.index());
                            for &w in cols.iter() {
                                saved.push(row[w as usize]);
                            }
                        }
                    } else {
                        for &g in cone.sorted() {
                            saved.extend_from_slice(vals.row(g.index()));
                        }
                    }
                    vals.row_mut(line.index()).copy_from_slice(new_row);
                    if incremental {
                        sim.run_cone_events_cols(netlist, vals, cone.sorted(), cols);
                    } else {
                        sim.run_cone(netlist, vals, cone.sorted());
                    }
                    let mut after_fail = vec![0u64; wpr];
                    for (po_idx, &po) in netlist.outputs().iter().enumerate() {
                        if cone.contains(po) {
                            let got = vals.row(po.index());
                            let want = spec.po_values().row(po_idx);
                            for w in 0..wpr {
                                after_fail[w] |= got[w] ^ want[w];
                            }
                        } else {
                            for w in 0..wpr {
                                after_fail[w] |= old_diff[po_idx][w];
                            }
                        }
                    }
                    let mut newly_err = 0usize;
                    let mut fixed = 0usize;
                    for w in 0..wpr {
                        let mut ne = after_fail[w] & !err_words[w];
                        let mut fx = err_words[w] & !after_fail[w];
                        if w == wpr - 1 {
                            ne &= tail;
                            fx &= tail;
                        }
                        newly_err += ne.count_ones() as usize;
                        fixed += fx.count_ones() as usize;
                    }
                    if incremental {
                        let nc = cols.len();
                        for (k, &g) in cone.sorted().iter().enumerate() {
                            let row = vals.row_mut(g.index());
                            for (j, &w) in cols.iter().enumerate() {
                                row[w as usize] = saved[k * nc + j];
                            }
                        }
                    } else {
                        for (k, &g) in cone.sorted().iter().enumerate() {
                            vals.row_mut(g.index())
                                .copy_from_slice(&saved[k * wpr..(k + 1) * wpr]);
                        }
                    }
                    let h3_score = 1.0 - newly_err as f64 / n_corr.max(1) as f64;
                    if h3_score + 1e-12 < level.h3 {
                        delta.rejected_h3 += 1;
                        continue;
                    }
                    delta.qualified += 1;
                    let corr_h1 = fixed as f64 / n_err.max(1) as f64;
                    line_ranked.push(RankedCorrection {
                        correction: corr,
                        rank: (1.0 - v_ratio) * h3_score + v_ratio * corr_h1,
                        h1_score: corr_h1,
                        h2_fraction,
                        h3_score,
                    });
                }
                delta.words = sim.words_simulated() - words_before;
                delta.events = sim.events_propagated() - events_before;
                delta.skipped = sim.words_skipped() - skipped_before;
                (line_ranked, delta)
            },
        );
        let mut ranked = Vec::new();
        for (line_ranked, delta) in outcome.results {
            ranked.extend(line_ranked);
            self.stats.corrections_screened += delta.screened;
            self.stats.corrections_qualified += delta.qualified;
            self.stats.corrections_rejected_h2 += delta.rejected_h2;
            self.stats.corrections_rejected_h3 += delta.rejected_h3;
            self.stats.wire_sources_truncated += delta.wire_sources_truncated;
            self.stats.words_simulated += delta.words;
            self.stats.events_propagated += delta.events;
            self.stats.words_skipped += delta.skipped;
        }
        self.stats.parallel.merge(&outcome.telemetry);
        self.stats.screen_time += t_screen.elapsed();
        ranked
    }
}

/// Per-line stat deltas produced inside a screening task and merged, in
/// line order, into the session's [`RectifyStats`].
#[derive(Default)]
struct ScreenDelta {
    screened: usize,
    qualified: usize,
    rejected_h2: usize,
    rejected_h3: usize,
    wire_sources_truncated: usize,
    words: u64,
    events: u64,
    skipped: u64,
}

/// Keeps only tuples that are minimal as sets (no other solution's
/// correction set is a strict subset).
fn minimal_solutions(mut solutions: Vec<Solution>) -> Vec<Solution> {
    let sets: Vec<Vec<Correction>> = solutions
        .iter()
        .map(|s| {
            let mut v = s.corrections.clone();
            v.sort();
            v
        })
        .collect();
    let mut keep = vec![true; solutions.len()];
    for i in 0..sets.len() {
        for j in 0..sets.len() {
            if i != j
                && keep[i]
                && sets[j].len() < sets[i].len()
                && sets[j].iter().all(|c| sets[i].contains(c))
            {
                keep[i] = false;
            }
        }
    }
    let mut idx = 0;
    solutions.retain(|_| {
        let k = keep[idx];
        idx += 1;
        k
    });
    solutions
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdx_fault::CorrectionAction;
    use incdx_netlist::parse_bench;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spec_and_vectors(
        golden: &Netlist,
        vectors: usize,
        seed: u64,
    ) -> (PackedMatrix, Response) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pi = PackedMatrix::random(golden.inputs().len(), vectors, &mut rng);
        let mut sim = Simulator::new();
        let spec = Response::capture(golden, &sim.run(golden, &pi));
        (pi, spec)
    }

    #[test]
    fn already_correct_returns_empty_tuple() {
        let n = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n").unwrap();
        let (pi, spec) = spec_and_vectors(&n, 64, 1);
        let r = Rectifier::new(n, pi, spec, RectifyConfig::dedc(1)).run();
        assert_eq!(r.solutions.len(), 1);
        assert!(r.solutions[0].corrections.is_empty());
    }

    #[test]
    fn fixes_single_gate_replacement() {
        let good = parse_bench("INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nx = AND(a, b)\ny = OR(x, c)\n").unwrap();
        let bad = parse_bench("INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nx = NOR(a, b)\ny = OR(x, c)\n").unwrap();
        let (pi, spec) = spec_and_vectors(&good, 64, 2);
        let r = Rectifier::new(bad.clone(), pi.clone(), spec.clone(), RectifyConfig::dedc(1)).run();
        assert!(!r.solutions.is_empty(), "must find a fix");
        // Verify the fix really works.
        let mut fixed = bad.clone();
        for c in &r.solutions[0].corrections {
            c.apply(&mut fixed).unwrap();
        }
        let mut sim = Simulator::new();
        let vals = sim.run_for_inputs(&fixed, bad.inputs(), &pi);
        assert!(Response::compare(&fixed, &vals, &spec).matches());
    }

    #[test]
    fn exhaustive_single_stuck_at_finds_equivalent_class() {
        // y = AND(a, b): y/0, a/0 and b/0 are all single-fault
        // explanations of the device "y stuck at 0".
        let good = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n").unwrap();
        let mut device = good.clone();
        let y = good.find_by_name("y").unwrap();
        StuckAt::new(y, false).apply(&mut device).unwrap();

        // Exhaustive vectors so equivalence is exact.
        let mut pi = PackedMatrix::new(2, 4);
        for v in 0..4 {
            pi.set(0, v, v & 1 == 1);
            pi.set(1, v, v & 2 == 2);
        }
        let mut sim = Simulator::new();
        let device_resp =
            Response::capture(&device, &sim.run_for_inputs(&device, good.inputs(), &pi));
        let r = Rectifier::new(
            good.clone(),
            pi,
            device_resp,
            RectifyConfig::stuck_at_exhaustive(1),
        )
        .run();
        let mut tuples: Vec<Vec<StuckAt>> = r
            .solutions
            .iter()
            .map(|s| s.stuck_at_tuple().expect("stuck-at run"))
            .collect();
        tuples.sort();
        let a = good.find_by_name("a").unwrap();
        let b = good.find_by_name("b").unwrap();
        let mut expect = vec![
            vec![StuckAt::new(a, false)],
            vec![StuckAt::new(b, false)],
            vec![StuckAt::new(y, false)],
        ];
        expect.sort();
        assert_eq!(tuples, expect);
        assert_eq!(r.distinct_sites(), 3);
    }

    #[test]
    fn exhaustive_results_are_minimal() {
        let sols = vec![
            Solution {
                corrections: vec![Correction::new(GateId(1), CorrectionAction::SetConst(true))],
            },
            Solution {
                corrections: vec![
                    Correction::new(GateId(1), CorrectionAction::SetConst(true)),
                    Correction::new(GateId(2), CorrectionAction::SetConst(false)),
                ],
            },
            Solution {
                corrections: vec![Correction::new(GateId(3), CorrectionAction::SetConst(false))],
            },
        ];
        let min = minimal_solutions(sols);
        assert_eq!(min.len(), 2);
        assert!(min.iter().all(|s| s.corrections.len() == 1));
    }

    #[test]
    fn double_error_needs_two_rounds_of_depth() {
        let good = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(y)\nOUTPUT(z)\n\
             x1 = AND(a, b)\nx2 = OR(c, d)\ny = XOR(x1, c)\nz = NAND(x2, a)\n",
        )
        .unwrap();
        let bad = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(y)\nOUTPUT(z)\n\
             x1 = NAND(a, b)\nx2 = AND(c, d)\ny = XOR(x1, c)\nz = NAND(x2, a)\n",
        )
        .unwrap();
        let (pi, spec) = spec_and_vectors(&good, 128, 3);
        let r = Rectifier::new(bad.clone(), pi.clone(), spec.clone(), RectifyConfig::dedc(2)).run();
        assert!(!r.solutions.is_empty(), "two-error case must solve");
        let sol = &r.solutions[0];
        assert!(sol.corrections.len() <= 2);
        let mut fixed = bad.clone();
        for c in &sol.corrections {
            c.apply(&mut fixed).unwrap();
        }
        let mut sim = Simulator::new();
        let vals = sim.run_for_inputs(&fixed, bad.inputs(), &pi);
        assert!(Response::compare(&fixed, &vals, &spec).matches());
        assert!(r.stats.rounds >= 1 && r.stats.nodes >= 2);
    }

    #[test]
    fn respects_node_and_round_budgets() {
        let good = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n").unwrap();
        let mut device = good.clone();
        StuckAt::new(good.find_by_name("y").unwrap(), false)
            .apply(&mut device)
            .unwrap();
        let (pi, _) = spec_and_vectors(&good, 16, 4);
        let mut sim = Simulator::new();
        let resp = Response::capture(&device, &sim.run_for_inputs(&device, good.inputs(), &pi));
        let mut cfg = RectifyConfig::stuck_at_exhaustive(1);
        cfg.max_rounds = 0;
        let r = Rectifier::new(good, pi, resp, cfg).run();
        assert!(r.solutions.is_empty());
        assert!(r.stats.truncated || r.stats.rounds == 0);
    }

    #[test]
    fn dead_when_model_cannot_explain() {
        // Device behaviour needs 2 faults but only 1 correction allowed:
        // no solution, engine terminates cleanly.
        let good = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(y)\nOUTPUT(z)\ny = AND(a, b)\nz = OR(c, d)\n",
        )
        .unwrap();
        let mut device = good.clone();
        StuckAt::new(good.find_by_name("y").unwrap(), true)
            .apply(&mut device)
            .unwrap();
        StuckAt::new(good.find_by_name("z").unwrap(), false)
            .apply(&mut device)
            .unwrap();
        // Exhaustive input space: y and z cones are disjoint, so no single
        // stuck-at explains both.
        let mut pi = PackedMatrix::new(4, 16);
        for v in 0..16 {
            for i in 0..4 {
                pi.set(i, v, v >> i & 1 == 1);
            }
        }
        let mut sim = Simulator::new();
        let resp = Response::capture(&device, &sim.run_for_inputs(&device, good.inputs(), &pi));
        let r = Rectifier::new(good, pi, resp, RectifyConfig::stuck_at_exhaustive(1)).run();
        assert!(r.solutions.is_empty());
    }

    #[test]
    fn dfs_and_bfs_traversals_also_solve() {
        let good = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nx = AND(a, b)\ny = OR(x, c)\n",
        )
        .unwrap();
        let bad = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nx = NOR(a, b)\ny = OR(x, c)\n",
        )
        .unwrap();
        let (pi, spec) = spec_and_vectors(&good, 64, 9);
        for traversal in [Traversal::Rounds, Traversal::Dfs, Traversal::Bfs] {
            let mut cfg = RectifyConfig::dedc(1);
            cfg.traversal = traversal;
            let r = Rectifier::new(bad.clone(), pi.clone(), spec.clone(), cfg).run();
            assert!(!r.solutions.is_empty(), "{traversal:?} must solve");
            let mut fixed = bad.clone();
            for c in &r.solutions[0].corrections {
                c.apply(&mut fixed).unwrap();
            }
            let mut sim = Simulator::new();
            let vals = sim.run_for_inputs(&fixed, bad.inputs(), &pi);
            assert!(Response::compare(&fixed, &vals, &spec).matches());
        }
    }

    #[test]
    fn stats_accumulate() {
        let good = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n").unwrap();
        let bad = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NOR(a, b)\n").unwrap();
        let (pi, spec) = spec_and_vectors(&good, 64, 6);
        let r = Rectifier::new(bad, pi, spec, RectifyConfig::dedc(1)).run();
        assert!(!r.solutions.is_empty());
        assert!(r.stats.corrections_screened > 0);
        assert!(r.stats.corrections_qualified > 0);
        assert!(r.stats.rounds >= 1);
    }
}
