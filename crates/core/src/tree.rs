//! Decision-tree node types for the round-based traversal of §3.3
//! (Fig. 2): every node holds its ranked correction candidates; each
//! *round* applies the next-best candidate of every node present at the
//! start of the round, so the tree grows in both depth and breadth and at
//! most doubles per round.

use incdx_fault::Correction;

/// A correction candidate that survived screening, with its scores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedCorrection {
    /// The screened correction.
    pub correction: Correction,
    /// The ranking value `(1 − V_ratio)·h3 + V_ratio·h1` of §3.3.
    pub rank: f64,
    /// Fraction of failing vectors this correction fixes (its `h1`).
    pub h1_score: f64,
    /// Fraction of `V_err` bit-list entries it complements (heuristic 2).
    pub h2_fraction: f64,
    /// Fraction of previously-correct vectors it keeps correct (its `h3`).
    pub h3_score: f64,
}

/// One node of the decision tree.
#[derive(Debug, Clone)]
pub(crate) struct Node {
    /// The corrections applied on the path from the root.
    pub corrections: Vec<Correction>,
    /// Screened candidates, best rank first.
    pub candidates: Vec<RankedCorrection>,
    /// Index of the next candidate to expand.
    pub next: usize,
}

impl Node {
    /// Is there anything left to expand?
    pub fn open(&self) -> bool {
        self.next < self.candidates.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdx_fault::CorrectionAction;
    use incdx_netlist::GateId;

    #[test]
    fn node_open_tracks_cursor() {
        let c = Correction::new(GateId(0), CorrectionAction::SetConst(true));
        let rc = RankedCorrection {
            correction: c,
            rank: 1.0,
            h1_score: 1.0,
            h2_fraction: 1.0,
            h3_score: 1.0,
        };
        let mut n = Node {
            corrections: vec![],
            candidates: vec![rc],
            next: 0,
        };
        assert!(n.open());
        n.next = 1;
        assert!(!n.open());
    }
}
