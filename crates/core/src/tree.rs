//! The decision tree of §3.3 (Fig. 2): an arena of nodes, each holding
//! its ranked correction candidates and a cursor to the next untried
//! one. The [`Tree`] owns the depth bound (maximum tuple size) and the
//! node cap; [`Traversal`](crate::Traversal) strategies decide *which*
//! open node expands next, but admission is policed here so every
//! strategy shares identical cap semantics.
//!
//! Under dispatched runs (`RectifyConfig::dispatch` with `jobs > 1`)
//! the tree is also the *only* durable frontier: the dispatcher's
//! speculation queue in `dispatch.rs` predicts future expansions from
//! the arena state but never owns it, so checkpoints and resume see
//! exactly the serial tree.

use incdx_fault::Correction;

/// A correction candidate that survived screening, with its scores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedCorrection {
    /// The screened correction.
    pub correction: Correction,
    /// The ranking value `(1 − V_ratio)·h3 + V_ratio·h1` of §3.3.
    pub rank: f64,
    /// Fraction of failing vectors this correction fixes (its `h1`).
    pub h1_score: f64,
    /// Fraction of `V_err` bit-list entries it complements (heuristic 2).
    pub h2_fraction: f64,
    /// Fraction of previously-correct vectors it keeps correct (its `h3`).
    pub h3_score: f64,
}

/// One node of the decision tree.
#[derive(Debug, Clone)]
pub struct Node {
    /// The corrections applied on the path from the root.
    pub corrections: Vec<Correction>,
    /// Screened candidates, best rank first.
    pub candidates: Vec<RankedCorrection>,
    /// Index of the next candidate to expand.
    pub next: usize,
    /// Failing vectors observed when the node was evaluated (priority
    /// signal for [`BestFirst`](crate::BestFirst)).
    pub failing: usize,
}

impl Node {
    /// A fresh node with its cursor at the first candidate.
    pub fn new(
        corrections: Vec<Correction>,
        candidates: Vec<RankedCorrection>,
        failing: usize,
    ) -> Self {
        Node {
            corrections,
            candidates,
            next: 0,
            failing,
        }
    }

    /// Is there anything left to expand?
    pub fn open(&self) -> bool {
        self.next < self.candidates.len()
    }

    /// Depth in the tree — the length of the correction tuple.
    pub fn depth(&self) -> usize {
        self.corrections.len()
    }

    /// The next untried candidate, if any.
    pub fn peek(&self) -> Option<&RankedCorrection> {
        self.candidates.get(self.next)
    }
}

/// Outcome of [`Tree::push`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// The node joined the tree at this index.
    Added(usize),
    /// Rejected: the tree is at its node cap (the search is truncated).
    NodeCapped,
    /// Rejected: the node sits at the depth bound, so it could never
    /// spawn children — keeping it would be dead weight, not truncation.
    DepthCapped,
}

/// Arena of decision-tree nodes with the engine's admission rules.
#[derive(Debug, Clone)]
pub struct Tree {
    nodes: Vec<Node>,
    max_depth: usize,
    max_nodes: usize,
}

impl Tree {
    /// An empty tree bounded by tuple size `max_depth` and node count
    /// `max_nodes`.
    pub fn new(max_depth: usize, max_nodes: usize) -> Self {
        Tree {
            nodes: Vec::new(),
            max_depth,
            max_nodes,
        }
    }

    /// All nodes, in creation order (index = node id).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Node by index.
    pub fn get(&self, idx: usize) -> Option<&Node> {
        self.nodes.get(idx)
    }

    /// Mutable node by index.
    pub fn get_mut(&mut self, idx: usize) -> Option<&mut Node> {
        self.nodes.get_mut(idx)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// No nodes yet?
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Any node with untried candidates left?
    pub fn has_open(&self) -> bool {
        self.nodes.iter().any(Node::open)
    }

    /// Would a child at `depth` be admitted *and* be allowed to expand?
    /// (Both caps: depth bound and node count.)
    pub fn expandable(&self, depth: usize) -> bool {
        depth < self.max_depth && self.nodes.len() < self.max_nodes
    }

    /// Admits the root unconditionally. The root is never subject to the
    /// caps: even a zero-budget search must evaluate it to detect an
    /// already-consistent circuit.
    pub fn push_root(&mut self, node: Node) {
        self.nodes.push(node);
    }

    /// Audit hook: counts violated structural invariants — the node cap
    /// (root exempt), the depth bound for non-root nodes, candidate
    /// cursors inside bounds, and candidate lists sorted best-rank-first.
    /// Returns 0 on a healthy tree; used by the opt-in engine audit
    /// ([`RectifyConfig::audit`](crate::RectifyConfig)).
    pub fn invariant_violations(&self) -> usize {
        let mut bad = 0;
        if self.nodes.len() > self.max_nodes.max(1) {
            bad += 1;
        }
        for n in &self.nodes {
            if n.depth() > 0 && n.depth() >= self.max_depth {
                bad += 1;
            }
            if n.next > n.candidates.len() {
                bad += 1;
            }
            if n.candidates
                .windows(2)
                .any(|w| w[0].rank.total_cmp(&w[1].rank).is_lt())
            {
                bad += 1;
            }
        }
        bad
    }

    /// Admits a child node under the cap rules: the node cap wins over
    /// the depth bound (a full tree is *truncation*, reported to the
    /// caller; a depth-capped child is merely uninteresting).
    pub fn push(&mut self, node: Node) -> PushOutcome {
        if self.nodes.len() >= self.max_nodes {
            return PushOutcome::NodeCapped;
        }
        if node.depth() >= self.max_depth {
            return PushOutcome::DepthCapped;
        }
        self.nodes.push(node);
        PushOutcome::Added(self.nodes.len() - 1)
    }

    /// Rehydrates a tree from checkpointed nodes, bypassing the
    /// admission rules (every node was admitted under them when the
    /// checkpoint was captured). Callers must re-validate with
    /// [`Tree::invariant_violations`]; `Checkpoint` resume does.
    pub fn from_saved(nodes: Vec<Node>, max_depth: usize, max_nodes: usize) -> Self {
        Tree {
            nodes,
            max_depth,
            max_nodes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdx_fault::CorrectionAction;
    use incdx_netlist::GateId;

    fn rc(rank: f64) -> RankedCorrection {
        RankedCorrection {
            correction: Correction::new(GateId(0), CorrectionAction::SetConst(true)),
            rank,
            h1_score: rank,
            h2_fraction: 1.0,
            h3_score: 1.0,
        }
    }

    #[test]
    fn node_open_tracks_cursor() {
        let mut n = Node::new(vec![], vec![rc(1.0)], 3);
        assert!(n.open());
        assert_eq!(n.depth(), 0);
        assert_eq!(n.failing, 3);
        assert!(n.peek().is_some());
        n.next = 1;
        assert!(!n.open());
        assert!(n.peek().is_none());
    }

    #[test]
    fn push_respects_node_cap() {
        let mut t = Tree::new(4, 2);
        t.push_root(Node::new(vec![], vec![rc(1.0)], 1));
        let child = |k: u32| {
            Node::new(
                vec![Correction::new(
                    GateId(k),
                    CorrectionAction::SetConst(false),
                )],
                vec![rc(0.5)],
                1,
            )
        };
        assert_eq!(t.push(child(1)), PushOutcome::Added(1));
        assert_eq!(t.push(child(2)), PushOutcome::NodeCapped);
        assert_eq!(t.len(), 2);
        assert!(!t.expandable(1), "full tree admits nothing");
    }

    #[test]
    fn push_respects_depth_cap_without_truncating() {
        let mut t = Tree::new(1, 100);
        t.push_root(Node::new(vec![], vec![rc(1.0)], 1));
        // A depth-1 child in a depth-1 tree can never have children.
        let deep = Node::new(
            vec![Correction::new(GateId(1), CorrectionAction::SetConst(true))],
            vec![rc(0.5)],
            1,
        );
        assert_eq!(t.push(deep), PushOutcome::DepthCapped);
        assert_eq!(t.len(), 1);
        assert!(!t.expandable(1));
        assert!(t.expandable(0));
    }

    #[test]
    fn node_cap_wins_over_depth_cap() {
        // When both caps bind, the engine must see NodeCapped — that is
        // what sets `stats.truncated` (matching the pre-refactor logic).
        let mut t = Tree::new(1, 1);
        t.push_root(Node::new(vec![], vec![rc(1.0)], 1));
        let deep = Node::new(
            vec![Correction::new(GateId(1), CorrectionAction::SetConst(true))],
            vec![],
            0,
        );
        assert_eq!(t.push(deep), PushOutcome::NodeCapped);
    }

    #[test]
    fn root_bypasses_caps() {
        let mut t = Tree::new(0, 0);
        t.push_root(Node::new(vec![], vec![], 0));
        assert_eq!(t.len(), 1);
        assert!(!t.has_open());
    }

    #[test]
    fn open_bookkeeping_over_the_arena() {
        let mut t = Tree::new(3, 10);
        t.push_root(Node::new(vec![], vec![rc(1.0), rc(0.5)], 2));
        assert!(t.has_open());
        if let Some(n) = t.get_mut(0) {
            n.next = 2;
        }
        assert!(!t.has_open());
        assert!(t.get(1).is_none());
    }
}
