//! Candidate source signals for wire corrections.
//!
//! The correction space for missing/wrong-wire errors is quadratic in
//! circuit size if every signal is a candidate source. Like practical DEDC
//! tools, we bound it to *structural neighbours* (fanins of fanins,
//! siblings through common readers) plus a deterministic level-matched
//! sample — the signals real wiring errors overwhelmingly involve. The
//! bound is explicit and the caller can observe truncation (no silent
//! caps: see [`WireSources::truncated`]).

use incdx_netlist::{DenseBitSet, GateId, GateKind, Netlist};

/// Result of [`wire_sources`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireSources {
    /// The candidate source lines, deduplicated, cycle-safe
    /// (never inside `line`'s fanout cone), capped at the requested limit.
    pub sources: Vec<GateId>,
    /// How many eligible candidates the cap dropped (0 = the list is
    /// exhaustive for the neighbourhood policy).
    pub truncated: usize,
}

/// Collects up to `limit` candidate wire sources for corrections at
/// `line`: grandparent signals (fanins of fanins), sibling signals (other
/// fanins of `line`'s readers), and a deterministic sweep of lines within
/// two levels of `line`'s own level. The target's fanout cone and the
/// target itself are excluded (combinational-cycle guard); constants and
/// DFFs are excluded as sources.
pub fn wire_sources(netlist: &Netlist, line: GateId, limit: usize) -> WireSources {
    let cone = netlist.fanout_cone(line);
    let mut seen = DenseBitSet::new(netlist.len());
    let mut ordered: Vec<GateId> = Vec::new();
    let mut eligible_beyond = 0usize;
    let push = |id: GateId, ordered: &mut Vec<GateId>, seen: &mut DenseBitSet| {
        let bad_kind = matches!(
            netlist.gate(id).kind(),
            GateKind::Const0 | GateKind::Const1 | GateKind::Dff
        );
        if id == line || cone.contains(id.index()) || bad_kind {
            return;
        }
        if seen.insert(id.index()) {
            ordered.push(id);
        }
    };
    // Grandparents: fanins of fanins (and the fanins themselves are
    // already connected, so corrections skip them where relevant — they
    // are still useful for AddInput of a duplicate path and are included).
    for &f in netlist.gate(line).fanins() {
        push(f, &mut ordered, &mut seen);
        for &ff in netlist.gate(f).fanins() {
            push(ff, &mut ordered, &mut seen);
        }
    }
    // Siblings: other fanins of the gates reading `line`.
    for &reader in netlist.fanouts(line) {
        for &sib in netlist.gate(reader).fanins() {
            push(sib, &mut ordered, &mut seen);
        }
    }
    // Level-matched sweep: deterministic stride over lines within ±2
    // levels.
    let lvl = netlist.level(line) as i64;
    let mut leveled: Vec<GateId> = netlist
        .ids()
        .filter(|&id| (netlist.level(id) as i64 - lvl).abs() <= 2)
        .collect();
    // Stride so the sample spreads across the circuit instead of
    // clustering at low ids.
    let stride = (leveled.len() / limit.max(1)).max(1);
    leveled = leveled.into_iter().step_by(stride).collect();
    for id in leveled {
        if ordered.len() >= limit.saturating_mul(2) {
            // Collect a little beyond the cap so truncation is measurable,
            // then stop scanning.
            eligible_beyond += 1;
            continue;
        }
        push(id, &mut ordered, &mut seen);
    }
    let truncated = ordered.len().saturating_sub(limit) + eligible_beyond;
    ordered.truncate(limit);
    WireSources {
        sources: ordered,
        truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdx_gen::generate;

    #[test]
    fn sources_exclude_self_and_fanout_cone() {
        let n = generate("c880a").unwrap();
        for line in n.ids().step_by(37) {
            let ws = wire_sources(&n, line, 12);
            let cone = n.fanout_cone(line);
            assert!(ws.sources.len() <= 12);
            for &s in &ws.sources {
                assert_ne!(s, line);
                assert!(!cone.contains(s.index()), "{s} is in the cone of {line}");
            }
        }
    }

    #[test]
    fn sources_are_deduplicated() {
        let n = generate("c432a").unwrap();
        for line in n.ids().step_by(11) {
            let ws = wire_sources(&n, line, 16);
            let mut v = ws.sources.clone();
            v.sort();
            v.dedup();
            assert_eq!(v.len(), ws.sources.len());
        }
    }

    #[test]
    fn truncation_is_reported_not_silent() {
        let n = generate("c6288a").unwrap();
        // A mid-circuit line in a big multiplier has far more than 4
        // neighbours at its level.
        let line = GateId::from_index(n.len() / 2);
        let small = wire_sources(&n, line, 4);
        assert_eq!(small.sources.len(), 4);
        assert!(small.truncated > 0, "cap must be visible");
        let large = wire_sources(&n, line, 4000);
        assert!(large.sources.len() > small.sources.len());
    }

    #[test]
    fn includes_structural_neighbours_first() {
        let n = generate("c17").unwrap();
        let g16 = n.find_by_name("16").unwrap();
        let ws = wire_sources(&n, g16, 8);
        // 16 = NAND(2, 11): its fanins are natural candidates.
        let two = n.find_by_name("2").unwrap();
        assert!(ws.sources.contains(&two));
    }
}
