//! The engine's unified error type.
//!
//! Every fallible public entry point of `incdx-core` returns
//! [`IncdxError`] instead of panicking, so malformed inputs (sequential
//! netlists, shape mismatches between vectors/responses/netlists,
//! out-of-range thresholds) surface as values a caller can match on.
//! Hand-rolled in the `thiserror` style — the workspace builds offline
//! with no derive-macro dependencies.

use std::error::Error;
use std::fmt;

use incdx_lint::Diagnostic;
use incdx_netlist::NetlistError;

/// Everything that can go wrong constructing or driving a
/// [`Rectifier`](crate::Rectifier).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum IncdxError {
    /// The netlist contains state elements; the engine diagnoses
    /// combinational logic (scan-convert first, as `incdx scan` does).
    SequentialNetlist {
        /// Number of offending state elements.
        dffs: usize,
    },
    /// Two inputs that must agree on a dimension don't.
    ShapeMismatch {
        /// What was being matched (e.g. `"vector rows"`).
        what: &'static str,
        /// The dimension implied by the netlist/config.
        expected: usize,
        /// The dimension actually supplied.
        got: usize,
    },
    /// A value matrix has fewer rows than the netlist it is evaluated
    /// against — some gate has no row to read or write.
    WidthMismatch {
        /// Rows required (the netlist's gate count).
        expected: usize,
        /// Rows present in the matrix.
        got: usize,
    },
    /// A tuning parameter is outside its legal range.
    InvalidParam {
        /// Parameter name (e.g. `"h2"`, `"promote"`).
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A traversal-strategy name that no
    /// [`TraversalKind`](crate::TraversalKind) matches.
    UnknownTraversal(String),
    /// An underlying netlist operation failed.
    Netlist(NetlistError),
    /// The pre-flight lint pass found error-severity hazards (cycles,
    /// undriven wires, arity violations, …) — diagnosing such a netlist
    /// would produce undefined simulation results, so the engine refuses
    /// up front. Carries every error-severity finding; warnings and
    /// advisories never block construction.
    Lint(Vec<Diagnostic>),
    /// A checkpoint could not be parsed, or does not match the session
    /// it is being resumed into (version, circuit fingerprint or vector
    /// count mismatch).
    Checkpoint {
        /// What went wrong.
        reason: String,
    },
    /// A checkpoint file could not be read or written (the durability
    /// layer around [`Checkpoint`](crate::Checkpoint): atomic saves and
    /// spool recovery). Distinct from [`IncdxError::Checkpoint`], which
    /// covers a file that was read fine but holds a torn or mismatched
    /// document.
    CheckpointIo {
        /// The file being read or written.
        path: String,
        /// The underlying I/O failure.
        detail: String,
    },
    /// A malformed flag-style specification string (e.g. a `--chaos
    /// seed,rate` spec that does not parse).
    InvalidSpec {
        /// The flag/parameter name.
        name: &'static str,
        /// The offending input.
        value: String,
    },
}

impl fmt::Display for IncdxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IncdxError::SequentialNetlist { dffs } => write!(
                f,
                "netlist is sequential ({dffs} state element(s)); scan-convert first"
            ),
            IncdxError::ShapeMismatch {
                what,
                expected,
                got,
            } => write!(f, "{what}: expected {expected}, got {got}"),
            IncdxError::WidthMismatch { expected, got } => write!(
                f,
                "value matrix too narrow: netlist has {expected} gates, matrix has {got} rows"
            ),
            IncdxError::InvalidParam { name, value } => {
                write!(f, "parameter {name} = {value} out of range")
            }
            IncdxError::UnknownTraversal(s) => write!(
                f,
                "unknown traversal {s:?} (expected bfs, dfs, naive-bfs or best-first)"
            ),
            IncdxError::Netlist(e) => write!(f, "netlist error: {e}"),
            IncdxError::Lint(diags) => {
                write!(
                    f,
                    "netlist failed pre-flight lint ({} error(s)):",
                    diags.len()
                )?;
                for d in diags {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
            IncdxError::Checkpoint { reason } => write!(f, "checkpoint error: {reason}"),
            IncdxError::CheckpointIo { path, detail } => {
                write!(f, "checkpoint I/O error at {path}: {detail}")
            }
            IncdxError::InvalidSpec { name, value } => {
                write!(f, "invalid {name} spec {value:?}")
            }
        }
    }
}

impl Error for IncdxError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IncdxError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for IncdxError {
    fn from(e: NetlistError) -> Self {
        IncdxError::Netlist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = IncdxError::ShapeMismatch {
            what: "vector rows",
            expected: 4,
            got: 3,
        };
        assert_eq!(e.to_string(), "vector rows: expected 4, got 3");
        assert!(IncdxError::SequentialNetlist { dffs: 2 }
            .to_string()
            .contains("scan-convert"));
        assert!(IncdxError::WidthMismatch {
            expected: 10,
            got: 7
        }
        .to_string()
        .contains("10"));
        assert!(IncdxError::InvalidParam {
            name: "h2",
            value: 1.5
        }
        .to_string()
        .contains("h2"));
        assert!(IncdxError::UnknownTraversal("zigzag".into())
            .to_string()
            .contains("zigzag"));
        assert!(IncdxError::Checkpoint {
            reason: "version 9 unsupported".into()
        }
        .to_string()
        .contains("version 9"));
        assert!(IncdxError::InvalidSpec {
            name: "chaos",
            value: "7;0.05".into()
        }
        .to_string()
        .contains("chaos"));
        let io = IncdxError::CheckpointIo {
            path: "/spool/job-3.json".into(),
            detail: "No such file or directory".into(),
        }
        .to_string();
        assert!(io.contains("/spool/job-3.json"), "{io}");
    }

    #[test]
    fn lint_variant_lists_findings() {
        use incdx_lint::{LintCode, Severity};
        let d = Diagnostic::global(
            LintCode::FloatingOutput,
            Severity::Error,
            "netlist declares no primary outputs",
            "declare at least one OUTPUT",
        );
        let e = IncdxError::Lint(vec![d]);
        let s = e.to_string();
        assert!(s.contains("pre-flight lint"), "{s}");
        assert!(s.contains("NL005"), "{s}");
    }

    #[test]
    fn wraps_netlist_errors_with_source() {
        let src = incdx_netlist::parse_bench("y = AND(a)\n").unwrap_err();
        let e = IncdxError::from(src.clone());
        assert_eq!(e, IncdxError::Netlist(src));
        assert!(Error::source(&e).is_some());
    }
}
