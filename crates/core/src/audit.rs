//! The opt-in engine invariant audit ([`RectifyConfig::audit`]).
//!
//! [`Auditing`] decorates any [`Evaluator`] and cross-checks what the
//! backend produces against first principles:
//!
//! * **width consistency** — every prepared node's value matrix must
//!   have one row per gate and cover exactly the run's vector set;
//! * **structural sanity** — a corrected node circuit must stay acyclic
//!   (corrections are cycle-screened upstream; a cycle here is an
//!   engine bug);
//! * **sampled replay** — every [`SAMPLE_STRIDE`]-th preparation is
//!   rebuilt from the base circuit and fully resimulated on a private
//!   simulator, and the matrices compared bit-for-bit. This is the
//!   cache-coherence oracle for the incremental backend: a stale
//!   [`NodeMatrixCache`](crate::cache::NodeMatrixCache) entry or a
//!   mis-bounded cone propagation shows up as a matrix divergence.
//!
//! Checks are counted in [`SimCounters::audit_checks`] and failures in
//! [`SimCounters::audit_violations`]; the session folds both into
//! [`RectifyStats`](crate::RectifyStats) and the JSON reports. Audit
//! simulation runs on a private [`Simulator`] excluded from the work
//! counters, so an audited run reports the same `words_simulated`
//! profile as a plain one. In debug builds a violation additionally
//! fails fast via `debug_assert!`.
//!
//! [`RectifyConfig::audit`]: crate::RectifyConfig::audit

use incdx_fault::Correction;
use incdx_netlist::Netlist;
use incdx_sim::{PackedMatrix, Simulator};

use crate::evaluator::{EvalContext, Evaluator, PreparedNode, SimCounters};

/// Every `SAMPLE_STRIDE`-th preparation is replayed from scratch. Small
/// enough to exercise deep tuples, large enough that an audited run
/// stays within a small multiple of the plain run's wall clock.
const SAMPLE_STRIDE: u64 = 7;

/// Evaluator decorator running the invariant checks described in the
/// module docs. Wraps the configured backend (outermost, so it sees
/// exactly what the engine sees) when [`RectifyConfig::audit`] is set.
///
/// [`RectifyConfig::audit`]: crate::RectifyConfig::audit
#[derive(Debug)]
pub struct Auditing {
    inner: Box<dyn Evaluator>,
    /// Private simulator for replays; its words are deliberately *not*
    /// part of [`Evaluator::counters`] (see the module docs).
    sim: Simulator,
    prepares: u64,
    checks: u64,
    violations: u64,
}

impl Auditing {
    /// Wraps `inner` in the audit layer.
    pub fn new(inner: Box<dyn Evaluator>) -> Self {
        Auditing {
            inner,
            sim: Simulator::new(),
            prepares: 0,
            checks: 0,
            violations: 0,
        }
    }

    fn violation(&mut self, what: &str) {
        self.violations += 1;
        debug_assert!(false, "audit: {what}");
    }

    fn check_prepared(
        &mut self,
        ctx: &EvalContext<'_>,
        corrections: &[Correction],
        node: &PreparedNode,
    ) {
        // Width consistency: a row per gate, a column set matching the
        // vectors. The screening stages index the matrix by gate id and
        // by vector word, so either mismatch corrupts the search.
        self.checks += 1;
        if node.vals.rows() < node.netlist.len()
            || node.vals.num_vectors() != ctx.vectors.num_vectors()
        {
            self.violation("prepared matrix shape diverges from (gates × vectors)");
        }
        // Structural sanity of the corrected circuit.
        self.checks += 1;
        if !node.netlist.is_acyclic() {
            self.violation("corrected node circuit is cyclic");
        }
        // Sampled replay against a from-scratch rebuild.
        if self.prepares.is_multiple_of(SAMPLE_STRIDE) {
            self.checks += 1;
            if let Some(reference) = self.replay(ctx, corrections) {
                let agree = reference.rows() == node.vals.rows()
                    && (0..reference.rows()).all(|r| reference.row(r) == node.vals.row(r));
                if !agree {
                    self.violation("prepared matrix diverges from from-scratch replay");
                }
            } else {
                self.violation("corrections replayable by the backend failed to re-apply");
            }
        }
    }

    /// The from-scratch oracle: base circuit, corrections re-applied,
    /// full resimulation.
    fn replay(
        &mut self,
        ctx: &EvalContext<'_>,
        corrections: &[Correction],
    ) -> Option<PackedMatrix> {
        let mut netlist = ctx.base.clone();
        for c in corrections {
            c.apply(&mut netlist).ok()?;
        }
        Some(
            self.sim
                .run_for_inputs(&netlist, ctx.base_inputs, ctx.vectors),
        )
    }
}

impl Evaluator for Auditing {
    fn name(&self) -> &'static str {
        match self.inner.name() {
            "incremental" => "audit+incremental",
            "from-scratch" => "audit+from-scratch",
            "parallel+incremental" => "audit+parallel+incremental",
            "parallel+from-scratch" => "audit+parallel+from-scratch",
            _ => "audit",
        }
    }

    fn jobs(&self) -> usize {
        self.inner.jobs()
    }

    fn incremental(&self) -> bool {
        self.inner.incremental()
    }

    fn counters(&self) -> SimCounters {
        SimCounters {
            audit_checks: self.checks,
            audit_violations: self.violations,
            ..self.inner.counters()
        }
    }

    fn prepare(
        &mut self,
        ctx: &mut EvalContext<'_>,
        corrections: &[Correction],
    ) -> Option<PreparedNode> {
        let node = self.inner.prepare(ctx, corrections)?;
        // Counted after sampling, so the very first preparation (the
        // root) is always replayed.
        self.check_prepared(ctx, corrections, &node);
        self.prepares += 1;
        Some(node)
    }

    fn retain(&mut self, corrections: &[Correction], netlist: Netlist, vals: PackedMatrix) -> u64 {
        self.inner.retain(corrections, netlist, vals)
    }

    fn release(&mut self, corrections: &[Correction]) {
        self.inner.release(corrections)
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.sim = Simulator::new();
        self.prepares = 0;
        self.checks = 0;
        self.violations = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::{FromScratch, Incremental, Parallel};
    use incdx_netlist::{ConeCache, GateId};
    use incdx_sim::PackedMatrix;

    fn setup() -> (Netlist, PackedMatrix) {
        let n = incdx_netlist::parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nx = AND(a, b)\ny = OR(x, a)\n",
        )
        .unwrap();
        let mut pi = PackedMatrix::new(2, 8);
        for v in 0..8 {
            pi.set(0, v, v & 1 == 1);
            pi.set(1, v, v & 2 == 2);
        }
        (n, pi)
    }

    fn prepare(aud: &mut Auditing, n: &Netlist, pi: &PackedMatrix, c: &[Correction]) {
        let inputs: Vec<GateId> = n.inputs().to_vec();
        let mut cones = ConeCache::new(n);
        let mut ctx = EvalContext {
            base: n,
            base_inputs: &inputs,
            vectors: pi,
            base_cones: &mut cones,
        };
        aud.prepare(&mut ctx, c);
    }

    #[test]
    fn names_compose_with_the_wrapped_backend() {
        let a = Auditing::new(Box::new(Incremental::new(0)));
        assert_eq!(a.name(), "audit+incremental");
        assert!(a.incremental());
        let a = Auditing::new(Box::new(FromScratch::new()));
        assert_eq!(a.name(), "audit+from-scratch");
        let a = Auditing::new(Box::new(Parallel::new(Box::new(FromScratch::new()), 4)));
        assert_eq!(a.name(), "audit+parallel+from-scratch");
        assert_eq!(a.jobs(), 4);
    }

    #[test]
    fn healthy_backend_passes_with_checks_counted() {
        let (n, pi) = setup();
        let mut aud = Auditing::new(Box::new(Incremental::new(64 << 20)));
        // First prepare lands on the replay sample (prepares % 7 == 0).
        prepare(&mut aud, &n, &pi, &[]);
        let c = aud.counters();
        assert!(c.audit_checks >= 3, "width + acyclicity + replay");
        assert_eq!(c.audit_violations, 0);
        assert!(c.words > 0, "inner counters still reported");
    }

    #[test]
    fn reset_clears_audit_state() {
        let (n, pi) = setup();
        let mut aud = Auditing::new(Box::new(FromScratch::new()));
        prepare(&mut aud, &n, &pi, &[]);
        assert!(aud.counters().audit_checks > 0);
        aud.reset();
        assert_eq!(aud.counters(), SimCounters::default());
    }

    /// A backend that lies about the prepared matrix (truncated rows)
    /// must be caught by the width check — and in release builds (no
    /// `debug_assert`) by the replay too.
    #[derive(Debug)]
    struct Truncating(FromScratch);

    impl Evaluator for Truncating {
        fn name(&self) -> &'static str {
            "truncating"
        }
        fn counters(&self) -> SimCounters {
            self.0.counters()
        }
        fn prepare(
            &mut self,
            ctx: &mut EvalContext<'_>,
            corrections: &[Correction],
        ) -> Option<PreparedNode> {
            let mut node = self.0.prepare(ctx, corrections)?;
            node.vals = PackedMatrix::new(1, ctx.vectors.num_vectors());
            Some(node)
        }
        fn reset(&mut self) {
            self.0.reset()
        }
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "audit:"))]
    fn corrupted_preparation_is_flagged() {
        let (n, pi) = setup();
        let mut aud = Auditing::new(Box::new(Truncating(FromScratch::new())));
        prepare(&mut aud, &n, &pi, &[]);
        // Release builds record instead of panicking.
        assert!(aud.counters().audit_violations > 0);
    }
}
