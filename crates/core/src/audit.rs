//! The opt-in engine invariant audit ([`RectifyConfig::audit`]).
//!
//! [`Auditing`] decorates any [`Evaluator`] and cross-checks what the
//! backend produces against first principles:
//!
//! * **width consistency** — every prepared node's value matrix must
//!   have one row per gate and cover exactly the run's vector set;
//! * **structural sanity** — a corrected node circuit must stay acyclic
//!   (corrections are cycle-screened upstream; a cycle here is an
//!   engine bug);
//! * **sampled replay** — every `SAMPLE_STRIDE`-th preparation is
//!   rebuilt from the base circuit and fully resimulated on a private
//!   simulator, and the matrices compared bit-for-bit. This is the
//!   cache-coherence oracle for the incremental backend: a stale
//!   [`NodeMatrixCache`](crate::cache::NodeMatrixCache) entry or a
//!   mis-bounded cone propagation shows up as a matrix divergence.
//!
//! Checks are counted in [`SimCounters::audit_checks`] and failures in
//! [`SimCounters::audit_violations`]; the session folds both into
//! [`RectifyStats`](crate::RectifyStats) and the JSON reports. Audit
//! simulation runs on a private [`Simulator`] excluded from the work
//! counters, so an audited run reports the same `words_simulated`
//! profile as a plain one. In debug builds a violation additionally
//! fails fast via `debug_assert!`.
//!
//! [`RectifyConfig::audit`]: crate::RectifyConfig::audit

use incdx_fault::Correction;
use incdx_netlist::Netlist;
use incdx_sim::{PackedMatrix, Simulator};

use crate::evaluator::{EvalContext, Evaluator, PreparedNode, SimCounters};
use crate::limits::{DegradationEvent, DegradationKind};

/// Every `SAMPLE_STRIDE`-th preparation is replayed from scratch. Small
/// enough to exercise deep tuples, large enough that an audited run
/// stays within a small multiple of the plain run's wall clock.
const SAMPLE_STRIDE: u64 = 7;

/// Evaluator decorator running the invariant checks described in the
/// module docs. Wraps the configured backend (outermost, so it sees
/// exactly what the engine sees) when [`RectifyConfig::audit`] is set.
///
/// Two flavours:
///
/// * [`Auditing::new`] — the fail-fast audit: sampled replay (every
///   `SAMPLE_STRIDE`-th prepare), violations recorded and (in debug
///   builds) asserted on. A violation means an engine bug.
/// * [`Auditing::resilient`] — the repairing audit used under chaos
///   injection and evaluator fallback: *every* prepare is replayed,
///   a corrupted matrix is **substituted** with the from-scratch
///   reference instead of asserted on, and each repair is recorded as
///   a structured [`DegradationEvent`] the session folds into
///   [`RectifyStats`](crate::RectifyStats). Because the repaired
///   matrix is what the engine (and any retained cache entry) sees,
///   corruption can never poison downstream results.
///
/// [`RectifyConfig::audit`]: crate::RectifyConfig::audit
#[derive(Debug)]
pub struct Auditing {
    inner: Box<dyn Evaluator>,
    /// Private simulator for replays; its words are deliberately *not*
    /// part of [`Evaluator::counters`] (see the module docs).
    sim: Simulator,
    prepares: u64,
    checks: u64,
    violations: u64,
    /// Replay every `stride`-th prepare (1 = every prepare).
    stride: u64,
    /// Substitute the replay reference on divergence instead of only
    /// recording the violation.
    repair: bool,
    /// `debug_assert` on violations (the engine-bug audit) vs record
    /// and continue (the resilience audit).
    fail_fast: bool,
    degradations: Vec<DegradationEvent>,
}

impl Auditing {
    /// Wraps `inner` in the fail-fast audit layer.
    pub fn new(inner: Box<dyn Evaluator>) -> Self {
        Auditing {
            inner,
            sim: Simulator::new(),
            prepares: 0,
            checks: 0,
            violations: 0,
            stride: SAMPLE_STRIDE,
            repair: false,
            fail_fast: true,
            degradations: Vec::new(),
        }
    }

    /// Wraps `inner` in the repairing audit layer: full-coverage replay,
    /// divergence repaired by substitution and recorded as a
    /// degradation. The evaluator stack the session builds under
    /// `--chaos` (`audit(chaos(backend))`) relies on this layer to
    /// catch every injected corruption.
    pub fn resilient(inner: Box<dyn Evaluator>) -> Self {
        let mut audit = Auditing::new(inner);
        audit.stride = 1;
        audit.repair = true;
        audit.fail_fast = false;
        audit
    }

    fn violation(&mut self, what: &str) {
        self.violations += 1;
        if self.fail_fast {
            debug_assert!(false, "audit: {what}");
        }
    }

    fn check_prepared(
        &mut self,
        ctx: &EvalContext<'_>,
        corrections: &[Correction],
        node: &mut PreparedNode,
    ) {
        // Width consistency: a row per gate, a column set matching the
        // vectors. The screening stages index the matrix by gate id and
        // by vector word, so either mismatch corrupts the search.
        self.checks += 1;
        let width_bad = node.vals.rows() < node.netlist.len()
            || node.vals.num_vectors() != ctx.vectors.num_vectors();
        if width_bad {
            self.violation("prepared matrix shape diverges from (gates × vectors)");
        }
        // Structural sanity of the corrected circuit.
        self.checks += 1;
        if !node.netlist.is_acyclic() {
            self.violation("corrected node circuit is cyclic");
        }
        // Replay against a from-scratch rebuild: sampled in fail-fast
        // mode, forced whenever the width check already failed and a
        // repair is possible.
        if self.prepares.is_multiple_of(self.stride) || (width_bad && self.repair) {
            self.checks += 1;
            if let Some(reference) = self.replay(ctx, corrections) {
                let agree = reference.rows() == node.vals.rows()
                    && (0..reference.rows()).all(|r| reference.row(r) == node.vals.row(r));
                if !agree {
                    if !width_bad {
                        self.violation("prepared matrix diverges from from-scratch replay");
                    }
                    if self.repair {
                        let kind = if width_bad {
                            DegradationKind::AuditRepair
                        } else {
                            DegradationKind::EvaluatorFallback
                        };
                        self.degradations.push(DegradationEvent::new(
                            kind,
                            1,
                            format!(
                                "replay substituted for a {}-correction node",
                                corrections.len()
                            ),
                        ));
                        node.vals = reference;
                    }
                }
            } else {
                self.violation("corrections replayable by the backend failed to re-apply");
            }
        }
    }

    /// The from-scratch oracle: base circuit, corrections re-applied,
    /// full resimulation.
    fn replay(
        &mut self,
        ctx: &EvalContext<'_>,
        corrections: &[Correction],
    ) -> Option<PackedMatrix> {
        let mut netlist = ctx.base.clone();
        for c in corrections {
            c.apply(&mut netlist).ok()?;
        }
        Some(
            self.sim
                .run_for_inputs(&netlist, ctx.base_inputs, ctx.vectors),
        )
    }
}

impl Evaluator for Auditing {
    fn name(&self) -> &'static str {
        match self.inner.name() {
            "incremental" => "audit+incremental",
            "from-scratch" => "audit+from-scratch",
            "parallel+incremental" => "audit+parallel+incremental",
            "parallel+from-scratch" => "audit+parallel+from-scratch",
            "chaos+incremental" => "audit+chaos+incremental",
            "chaos+from-scratch" => "audit+chaos+from-scratch",
            "chaos+parallel+incremental" => "audit+chaos+parallel+incremental",
            "chaos+parallel+from-scratch" => "audit+chaos+parallel+from-scratch",
            _ => "audit",
        }
    }

    fn jobs(&self) -> usize {
        self.inner.jobs()
    }

    fn incremental(&self) -> bool {
        self.inner.incremental()
    }

    fn sparse(&self) -> bool {
        self.inner.sparse()
    }

    fn counters(&self) -> SimCounters {
        SimCounters {
            audit_checks: self.checks,
            audit_violations: self.violations,
            ..self.inner.counters()
        }
    }

    fn prepare(
        &mut self,
        ctx: &mut EvalContext<'_>,
        corrections: &[Correction],
    ) -> Option<PreparedNode> {
        let mut node = self.inner.prepare(ctx, corrections)?;
        // Counted after sampling, so the very first preparation (the
        // root) is always replayed.
        self.check_prepared(ctx, corrections, &mut node);
        self.prepares += 1;
        Some(node)
    }

    fn cached(&mut self, corrections: &[Correction]) -> Option<(Netlist, PackedMatrix)> {
        self.inner.cached(corrections)
    }

    fn retain(&mut self, corrections: &[Correction], netlist: Netlist, vals: PackedMatrix) -> u64 {
        self.inner.retain(corrections, netlist, vals)
    }

    fn release(&mut self, corrections: &[Correction]) {
        self.inner.release(corrections)
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.sim = Simulator::new();
        self.prepares = 0;
        self.checks = 0;
        self.violations = 0;
        self.degradations.clear();
    }

    fn retained_bytes(&self) -> usize {
        self.inner.retained_bytes()
    }

    fn take_degradations(&mut self) -> Vec<DegradationEvent> {
        let mut events = std::mem::take(&mut self.degradations);
        events.extend(self.inner.take_degradations());
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::{FromScratch, Incremental, Parallel};
    use incdx_netlist::{ConeCache, GateId};
    use incdx_sim::PackedMatrix;

    fn setup() -> (Netlist, PackedMatrix) {
        let n = incdx_netlist::parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nx = AND(a, b)\ny = OR(x, a)\n",
        )
        .unwrap();
        let mut pi = PackedMatrix::new(2, 8);
        for v in 0..8 {
            pi.set(0, v, v & 1 == 1);
            pi.set(1, v, v & 2 == 2);
        }
        (n, pi)
    }

    fn prepare(aud: &mut Auditing, n: &Netlist, pi: &PackedMatrix, c: &[Correction]) {
        let inputs: Vec<GateId> = n.inputs().to_vec();
        let mut cones = ConeCache::new(n);
        let mut ctx = EvalContext {
            base: n,
            base_inputs: &inputs,
            vectors: pi,
            base_cones: &mut cones,
        };
        aud.prepare(&mut ctx, c);
    }

    #[test]
    fn names_compose_with_the_wrapped_backend() {
        let a = Auditing::new(Box::new(Incremental::new(0)));
        assert_eq!(a.name(), "audit+incremental");
        assert!(a.incremental());
        let a = Auditing::new(Box::new(FromScratch::new()));
        assert_eq!(a.name(), "audit+from-scratch");
        let a = Auditing::new(Box::new(Parallel::new(Box::new(FromScratch::new()), 4)));
        assert_eq!(a.name(), "audit+parallel+from-scratch");
        assert_eq!(a.jobs(), 4);
    }

    #[test]
    fn healthy_backend_passes_with_checks_counted() {
        let (n, pi) = setup();
        let mut aud = Auditing::new(Box::new(Incremental::new(64 << 20)));
        // First prepare lands on the replay sample (prepares % 7 == 0).
        prepare(&mut aud, &n, &pi, &[]);
        let c = aud.counters();
        assert!(c.audit_checks >= 3, "width + acyclicity + replay");
        assert_eq!(c.audit_violations, 0);
        assert!(c.words > 0, "inner counters still reported");
    }

    #[test]
    fn reset_clears_audit_state() {
        let (n, pi) = setup();
        let mut aud = Auditing::new(Box::new(FromScratch::new()));
        prepare(&mut aud, &n, &pi, &[]);
        assert!(aud.counters().audit_checks > 0);
        aud.reset();
        assert_eq!(aud.counters(), SimCounters::default());
    }

    /// A backend that lies about the prepared matrix (truncated rows)
    /// must be caught by the width check — and in release builds (no
    /// `debug_assert`) by the replay too.
    #[derive(Debug)]
    struct Truncating(FromScratch);

    impl Evaluator for Truncating {
        fn name(&self) -> &'static str {
            "truncating"
        }
        fn counters(&self) -> SimCounters {
            self.0.counters()
        }
        fn prepare(
            &mut self,
            ctx: &mut EvalContext<'_>,
            corrections: &[Correction],
        ) -> Option<PreparedNode> {
            let mut node = self.0.prepare(ctx, corrections)?;
            node.vals = PackedMatrix::new(1, ctx.vectors.num_vectors());
            Some(node)
        }
        fn reset(&mut self) {
            self.0.reset()
        }
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "audit:"))]
    fn corrupted_preparation_is_flagged() {
        let (n, pi) = setup();
        let mut aud = Auditing::new(Box::new(Truncating(FromScratch::new())));
        prepare(&mut aud, &n, &pi, &[]);
        // Release builds record instead of panicking.
        assert!(aud.counters().audit_violations > 0);
    }

    #[test]
    fn resilient_mode_repairs_a_truncated_matrix() {
        let (n, pi) = setup();
        let mut aud = Auditing::resilient(Box::new(Truncating(FromScratch::new())));
        let inputs: Vec<GateId> = n.inputs().to_vec();
        let mut cones = ConeCache::new(&n);
        let mut ctx = EvalContext {
            base: &n,
            base_inputs: &inputs,
            vectors: &pi,
            base_cones: &mut cones,
        };
        let node = aud.prepare(&mut ctx, &[]).expect("repaired, not dead");
        assert_eq!(node.vals.rows(), n.len(), "full matrix substituted");
        let events = aud.take_degradations();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, crate::limits::DegradationKind::AuditRepair);
        assert!(aud.take_degradations().is_empty(), "drained");
        // The substituted matrix equals a from-scratch reference.
        let mut oracle = FromScratch::new();
        let mut cones2 = ConeCache::new(&n);
        let mut ctx2 = EvalContext {
            base: &n,
            base_inputs: &inputs,
            vectors: &pi,
            base_cones: &mut cones2,
        };
        let reference = oracle.prepare(&mut ctx2, &[]).expect("oracle prepares");
        for r in 0..reference.vals.rows() {
            assert_eq!(reference.vals.row(r), node.vals.row(r), "row {r}");
        }
    }

    #[test]
    fn resilient_mode_repairs_a_flipped_bit() {
        use crate::chaos::{Chaos, ChaosConfig, ChaosState};
        let (n, pi) = setup();
        // Rate 1.0 chaos guarantees a corruption on the first prepare;
        // the resilient audit must hand the engine a clean matrix and
        // record exactly one degradation per corruption.
        let state = ChaosState::new(ChaosConfig { seed: 2, rate: 1.0 });
        let chaotic = Chaos::new(Box::new(Incremental::new(0)), state.clone());
        let mut aud = Auditing::resilient(Box::new(chaotic));
        assert_eq!(aud.name(), "audit+chaos+incremental");
        let inputs: Vec<GateId> = n.inputs().to_vec();
        let mut cones = ConeCache::new(&n);
        let mut ctx = EvalContext {
            base: &n,
            base_inputs: &inputs,
            vectors: &pi,
            base_cones: &mut cones,
        };
        let node = aud.prepare(&mut ctx, &[]).expect("repaired");
        assert!(state.summary().total() >= 1, "chaos injected");
        assert_eq!(
            aud.take_degradations().len() as u64,
            state.summary().total(),
            "every injected fault shows up as a degradation event"
        );
        let mut oracle = FromScratch::new();
        let mut cones2 = ConeCache::new(&n);
        let mut ctx2 = EvalContext {
            base: &n,
            base_inputs: &inputs,
            vectors: &pi,
            base_cones: &mut cones2,
        };
        let reference = oracle.prepare(&mut ctx2, &[]).expect("oracle prepares");
        assert_eq!(reference.vals.rows(), node.vals.rows());
        for r in 0..reference.vals.rows() {
            assert_eq!(reference.vals.row(r), node.vals.row(r), "row {r}");
        }
    }
}
