//! Hierarchical sparse bitset kernel for failing-vector masks.
//!
//! Failing-vector masks (and the `V_err`/`V_corr` row splits derived from
//! them) are *mostly zero* once the diagnosis search gets a few levels
//! deep: a node with three remaining failing vectors occupies at most
//! three 64-bit words of a row that may span dozens. The dense kernels in
//! [`crate::PackedBits`] still touch every word. This module adds a
//! two-level view in the spirit of hierarchical sparse bitsets
//! (hi_sparse_bitset): the mask words are grouped into fixed-size blocks
//! of [`BLOCK_WORDS`] words, and a [`BlockSummary`] keeps one bit per
//! block — set iff the block holds any set mask bit. Screening kernels
//! then iterate *occupied blocks only*, skipping whole all-zero blocks
//! without reading them, and run an explicit `[u64; 4]`-chunked
//! (autovectorizable) inner loop within each block.
//!
//! # Equivalence contract
//!
//! Every sparse operation is bit-identical to its dense counterpart: a
//! skipped block contributes only zero mask bits, and `x & 0 == 0` for
//! every popcount the engine takes. The contract is pinned by the
//! property suites (`sparse ≡ dense` on masks, cone propagation, and the
//! full engine) and documented in `ARCHITECTURE.md`.

use crate::packed::{tail_mask, PackedBits};

/// Words per summary block (256 vectors). Chosen to match a `[u64; 4]`
/// chunk, so the per-block inner loops autovectorize to 256-bit lanes.
pub const BLOCK_WORDS: usize = 4;

/// One-bit-per-block occupancy summary over a word slice: bit `b` is set
/// iff block `b` (words `b * BLOCK_WORDS ..`) contains a nonzero word.
///
/// # Example
///
/// ```
/// use incdx_sim::{BlockSummary, BLOCK_WORDS};
///
/// // Ten words = three blocks; only the middle block is occupied.
/// let mut words = vec![0u64; 10];
/// words[BLOCK_WORDS + 1] = 0b100;
/// let summary = BlockSummary::from_words(&words);
/// assert_eq!(summary.num_blocks(), 3);
/// assert!(!summary.is_occupied(0) && summary.is_occupied(1));
/// assert_eq!(summary.iter_occupied().collect::<Vec<_>>(), vec![1]);
/// assert_eq!(summary.skipped_blocks(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockSummary {
    bits: Vec<u64>,
    num_blocks: usize,
}

impl BlockSummary {
    /// Builds the summary of `words` (empty slice ⇒ zero blocks).
    pub fn from_words(words: &[u64]) -> Self {
        let num_blocks = words.len().div_ceil(BLOCK_WORDS);
        let mut bits = vec![0u64; num_blocks.div_ceil(64)];
        for (b, block) in words.chunks(BLOCK_WORDS).enumerate() {
            if block.iter().any(|&w| w != 0) {
                bits[b / 64] |= 1u64 << (b % 64);
            }
        }
        BlockSummary { bits, num_blocks }
    }

    /// Number of blocks covered (including a trailing partial block).
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// Is block `b` occupied (does it hold any set bit)?
    ///
    /// # Panics
    ///
    /// Panics if `b >= num_blocks`.
    #[inline]
    pub fn is_occupied(&self, b: usize) -> bool {
        assert!(b < self.num_blocks, "block index {b} out of range");
        self.bits[b / 64] >> (b % 64) & 1 == 1
    }

    /// Iterates the indices of occupied blocks, ascending.
    pub fn iter_occupied(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Number of occupied blocks.
    pub fn occupied_blocks(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of all-zero blocks — the work a sparse pass skips.
    pub fn skipped_blocks(&self) -> usize {
        self.num_blocks - self.occupied_blocks()
    }

    /// Flips summary bit `b` in place. This deliberately breaks the
    /// summary/word invariant — it is the chaos harness's sparse-kernel
    /// fault-injection site, repaired by [`SparseMask::repair`].
    ///
    /// # Panics
    ///
    /// Panics if `b >= num_blocks`.
    pub fn flip_bit(&mut self, b: usize) {
        assert!(b < self.num_blocks, "block index {b} out of range");
        self.bits[b / 64] ^= 1u64 << (b % 64);
    }
}

/// A failing-vector mask with its block-occupancy summary: the sparse
/// counterpart of a raw `&[u64]` mask, carrying everything the screening
/// kernels need to skip all-zero blocks.
///
/// Invariant: summary bit `b` is set iff words `b * BLOCK_WORDS ..` of
/// the mask hold a set bit, and the mask's tail bits (beyond
/// [`Self::num_vectors`]) are zero. [`Self::repair`] re-establishes the
/// summary from the words (the chaos recovery path).
///
/// # Example
///
/// ```
/// use incdx_sim::{PackedBits, SparseMask};
///
/// // 600 vectors = 10 words = 3 blocks; two failing vectors, one block.
/// let mut failing = PackedBits::new(600);
/// failing.set(70, true);
/// failing.set(130, true);
/// let mask = SparseMask::from_bits(&failing);
/// assert_eq!(mask.summary().occupied_blocks(), 1);
///
/// // Fused sparse popcount of (a ^ b) & mask, skipping empty blocks.
/// let a = vec![!0u64; 10];
/// let b = vec![0u64; 10];
/// assert_eq!(mask.xor_count_ones(&a, &b), 2);
/// assert_eq!(mask.and_count_ones(&a), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparseMask {
    words: Vec<u64>,
    summary: BlockSummary,
    num_vectors: usize,
}

impl SparseMask {
    /// Builds the sparse view of a failing-vector row (tail bits are
    /// cleared so raw-word kernels need no vector count).
    pub fn from_bits(bits: &PackedBits) -> Self {
        let mut words = bits.words().to_vec();
        if let Some(last) = words.last_mut() {
            *last &= tail_mask(bits.num_vectors());
        }
        let summary = BlockSummary::from_words(&words);
        SparseMask {
            words,
            summary,
            num_vectors: bits.num_vectors(),
        }
    }

    /// The raw mask words (tail bits cleared).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Number of vectors the mask covers.
    #[inline]
    pub fn num_vectors(&self) -> usize {
        self.num_vectors
    }

    /// The block-occupancy summary.
    #[inline]
    pub fn summary(&self) -> &BlockSummary {
        &self.summary
    }

    /// Mutable access to the summary — the chaos harness's injection
    /// point ([`BlockSummary::flip_bit`]); production code never needs
    /// it.
    #[inline]
    pub fn summary_mut(&mut self) -> &mut BlockSummary {
        &mut self.summary
    }

    /// Are all mask bits zero?
    pub fn is_empty(&self) -> bool {
        self.summary.occupied_blocks() == 0
    }

    /// True when no whole block can be skipped — the sparse pass would
    /// touch every word anyway, so callers fall back to the dense
    /// kernels (counted as `dense_fallbacks` in the run stats).
    pub fn is_dense(&self) -> bool {
        self.summary.skipped_blocks() == 0
    }

    /// Maximal runs of occupied blocks as half-open word ranges
    /// `lo..hi` (clipped to the mask width). Iterating these covers
    /// every word that can contribute to a masked count and nothing
    /// else, with adjacent occupied blocks merged so inner loops stay
    /// long enough to vectorize.
    pub fn occupied_ranges(&self) -> Vec<(usize, usize)> {
        let mut ranges: Vec<(usize, usize)> = Vec::new();
        let nw = self.words.len();
        for b in self.summary.iter_occupied() {
            let lo = b * BLOCK_WORDS;
            let hi = (lo + BLOCK_WORDS).min(nw);
            match ranges.last_mut() {
                Some((_, end)) if *end == lo => *end = hi,
                _ => ranges.push((lo, hi)),
            }
        }
        ranges
    }

    /// Fused sparse popcount of `(a ^ b) & mask`: iterates occupied
    /// blocks only, wide-word chunked within each. Bit-identical to
    /// [`crate::xor_masked_count_ones`] over the full slices.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is narrower than the mask.
    pub fn xor_count_ones(&self, a: &[u64], b: &[u64]) -> usize {
        let nw = self.words.len();
        assert!(a.len() >= nw && b.len() >= nw, "row narrower than mask");
        let mut n = 0;
        for block in self.summary.iter_occupied() {
            let lo = block * BLOCK_WORDS;
            let hi = (lo + BLOCK_WORDS).min(nw);
            n += xor_masked_count_wide(&a[lo..hi], &b[lo..hi], &self.words[lo..hi]);
        }
        n
    }

    /// Fused sparse popcount of `a & mask`, iterating occupied blocks
    /// only.
    ///
    /// # Panics
    ///
    /// Panics if `a` is narrower than the mask.
    pub fn and_count_ones(&self, a: &[u64]) -> usize {
        let nw = self.words.len();
        assert!(a.len() >= nw, "row narrower than mask");
        let mut n = 0;
        for block in self.summary.iter_occupied() {
            let lo = block * BLOCK_WORDS;
            let hi = (lo + BLOCK_WORDS).min(nw);
            n += and_masked_count_wide(&a[lo..hi], &self.words[lo..hi]);
        }
        n
    }

    /// Does the summary match the words? (`true` on every mask that has
    /// not been corrupted.)
    pub fn verify(&self) -> bool {
        self.summary == BlockSummary::from_words(&self.words)
    }

    /// Rebuilds the summary from the words, returning `true` when it was
    /// inconsistent — the recovery path for an injected summary flip.
    /// The words themselves are ground truth and never change.
    pub fn repair(&mut self) -> bool {
        let fresh = BlockSummary::from_words(&self.words);
        if fresh == self.summary {
            false
        } else {
            self.summary = fresh;
            true
        }
    }
}

/// Wide-word fused popcount of `(a ^ b) & m` over equal-length slices.
/// The `[u64; 4]` chunking gives the optimizer straight-line 256-bit
/// lanes; the remainder loop covers a trailing partial block.
#[inline]
pub(crate) fn xor_masked_count_wide(a: &[u64], b: &[u64], m: &[u64]) -> usize {
    debug_assert!(a.len() == b.len() && a.len() == m.len());
    let (a4, at) = a.as_chunks::<4>();
    let (b4, bt) = b.as_chunks::<4>();
    let (m4, mt) = m.as_chunks::<4>();
    let mut n = 0usize;
    for ((x, y), z) in a4.iter().zip(b4).zip(m4) {
        for i in 0..4 {
            n += ((x[i] ^ y[i]) & z[i]).count_ones() as usize;
        }
    }
    for ((&x, &y), &z) in at.iter().zip(bt).zip(mt) {
        n += ((x ^ y) & z).count_ones() as usize;
    }
    n
}

/// Wide-word fused popcount of `a & m` over equal-length slices.
#[inline]
pub(crate) fn and_masked_count_wide(a: &[u64], m: &[u64]) -> usize {
    debug_assert_eq!(a.len(), m.len());
    let (a4, at) = a.as_chunks::<4>();
    let (m4, mt) = m.as_chunks::<4>();
    let mut n = 0usize;
    for (x, z) in a4.iter().zip(m4) {
        for i in 0..4 {
            n += (x[i] & z[i]).count_ones() as usize;
        }
    }
    for (&x, &z) in at.iter().zip(mt) {
        n += (x & z).count_ones() as usize;
    }
    n
}

/// `acc[i] &= rhs[i]`, `[u64; 4]`-chunked.
#[inline]
pub(crate) fn and_assign_wide(acc: &mut [u64], rhs: &[u64]) {
    binop_assign_wide(acc, rhs, |a, b| a & b);
}

/// `acc[i] |= rhs[i]`, `[u64; 4]`-chunked.
#[inline]
pub(crate) fn or_assign_wide(acc: &mut [u64], rhs: &[u64]) {
    binop_assign_wide(acc, rhs, |a, b| a | b);
}

/// `acc[i] ^= rhs[i]`, `[u64; 4]`-chunked.
#[inline]
pub(crate) fn xor_assign_wide(acc: &mut [u64], rhs: &[u64]) {
    binop_assign_wide(acc, rhs, |a, b| a ^ b);
}

/// `acc[i] = !acc[i]`, `[u64; 4]`-chunked.
#[inline]
pub(crate) fn not_wide(acc: &mut [u64]) {
    let (a4, at) = acc.as_chunks_mut::<4>();
    for x in a4 {
        for w in x {
            *w = !*w;
        }
    }
    for w in at {
        *w = !*w;
    }
}

#[inline]
fn binop_assign_wide(acc: &mut [u64], rhs: &[u64], op: impl Fn(u64, u64) -> u64) {
    debug_assert_eq!(acc.len(), rhs.len());
    let (a4, at) = acc.as_chunks_mut::<4>();
    let (r4, rt) = rhs.as_chunks::<4>();
    for (x, y) in a4.iter_mut().zip(r4) {
        for i in 0..4 {
            x[i] = op(x[i], y[i]);
        }
    }
    for (x, &y) in at.iter_mut().zip(rt) {
        *x = op(*x, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packed::xor_masked_count_ones;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_mask(nv: usize, density: f64, rng: &mut StdRng) -> PackedBits {
        let mut b = PackedBits::new(nv);
        for v in 0..nv {
            if rng.random::<f64>() < density {
                b.set(v, true);
            }
        }
        b
    }

    #[test]
    fn summary_tracks_occupancy() {
        let mut words = vec![0u64; 3 * BLOCK_WORDS + 2];
        words[0] = 1;
        words[3 * BLOCK_WORDS + 1] = 1 << 63;
        let s = BlockSummary::from_words(&words);
        assert_eq!(s.num_blocks(), 4);
        assert!(s.is_occupied(0));
        assert!(!s.is_occupied(1));
        assert!(!s.is_occupied(2));
        assert!(s.is_occupied(3), "trailing partial block counts");
        assert_eq!(s.occupied_blocks(), 2);
        assert_eq!(s.skipped_blocks(), 2);
        assert_eq!(s.iter_occupied().collect::<Vec<_>>(), vec![0, 3]);
    }

    #[test]
    fn summary_of_zero_width_row_is_empty() {
        // Regression companion to `PackedBits::iter_ones` on empty rows:
        // the block iterator over a zero-width row must yield nothing and
        // never index a word.
        let s = BlockSummary::from_words(&[]);
        assert_eq!(s.num_blocks(), 0);
        assert_eq!(s.occupied_blocks(), 0);
        assert_eq!(s.iter_occupied().count(), 0);
        let mask = SparseMask::from_bits(&PackedBits::new(0));
        assert!(mask.is_empty());
        assert!(mask.occupied_ranges().is_empty());
        assert_eq!(mask.xor_count_ones(&[], &[]), 0);
        assert_eq!(mask.and_count_ones(&[]), 0);
        assert!(mask.verify());
    }

    #[test]
    fn word_boundary_width_has_no_tail_artifacts() {
        // width % 64 == 0: `tail_mask` is all-ones, so from_bits must not
        // clear real bits of the last word, and block math must still
        // cover the final (full) word.
        for nv in [64, 256, 320, 1024] {
            let mut bits = PackedBits::new(nv);
            bits.set(nv - 1, true);
            bits.set(0, true);
            let mask = SparseMask::from_bits(&bits);
            assert_eq!(mask.words()[nv / 64 - 1] >> 63, 1, "nv={nv}");
            let ones = vec![!0u64; nv / 64];
            let zeros = vec![0u64; nv / 64];
            assert_eq!(mask.xor_count_ones(&ones, &zeros), 2, "nv={nv}");
            assert_eq!(mask.and_count_ones(&ones), 2, "nv={nv}");
        }
    }

    #[test]
    fn from_bits_clears_poisoned_tail() {
        let mut bits = PackedBits::new(70);
        bits.set(69, true);
        bits.words_mut()[1] |= !0u64 << 6; // poison tail bits
        let mask = SparseMask::from_bits(&bits);
        assert_eq!(mask.words()[1], 1 << 5, "tail cleared, real bit kept");
        let a = vec![!0u64; 2];
        let b = vec![0u64; 2];
        assert_eq!(mask.xor_count_ones(&a, &b), 1);
    }

    #[test]
    fn sparse_counts_match_dense_counts() {
        let mut rng = StdRng::seed_from_u64(41);
        for nv in [1, 63, 64, 65, 255, 256, 257, 600, 1024, 1500] {
            for density in [0.0, 0.002, 0.05, 0.5] {
                let mask = SparseMask::from_bits(&random_mask(nv, density, &mut rng));
                let nw = nv.div_ceil(64);
                let a: Vec<u64> = (0..nw).map(|_| rng.random()).collect();
                let b: Vec<u64> = (0..nw).map(|_| rng.random()).collect();
                assert_eq!(
                    mask.xor_count_ones(&a, &b),
                    xor_masked_count_ones(&a, &b, mask.words()),
                    "nv={nv} density={density}"
                );
                let dense_and: usize = a
                    .iter()
                    .zip(mask.words())
                    .map(|(&x, &m)| (x & m).count_ones() as usize)
                    .sum();
                assert_eq!(mask.and_count_ones(&a), dense_and);
            }
        }
    }

    #[test]
    fn occupied_ranges_merge_adjacent_blocks_and_clip() {
        // 9 words = 3 blocks (last partial); occupy blocks 1 and 2.
        let mut bits = PackedBits::new(9 * 64 - 3);
        bits.set(BLOCK_WORDS * 64, true);
        bits.set(2 * BLOCK_WORDS * 64 + 1, true);
        let mask = SparseMask::from_bits(&bits);
        assert_eq!(mask.occupied_ranges(), vec![(BLOCK_WORDS, 9)]);
    }

    #[test]
    fn flip_and_repair_round_trip() {
        let mut rng = StdRng::seed_from_u64(43);
        let mut mask = SparseMask::from_bits(&random_mask(1024, 0.01, &mut rng));
        let pristine = mask.clone();
        assert!(mask.verify());
        assert!(!mask.repair(), "repairing a healthy mask is a no-op");

        mask.summary_mut().flip_bit(2);
        assert!(!mask.verify());
        assert!(mask.repair());
        assert!(mask.verify());
        assert_eq!(mask, pristine, "repair restores the exact summary");
    }

    #[test]
    fn corrupted_summary_miscounts_then_repairs() {
        // A cleared occupancy bit silently drops that block's bits from
        // sparse counts — exactly the failure mode repair() guards.
        let mut bits = PackedBits::new(512);
        bits.set(10, true); // block 0
        bits.set(300, true); // block 1
        let mut mask = SparseMask::from_bits(&bits);
        let a = vec![!0u64; 8];
        let b = vec![0u64; 8];
        assert_eq!(mask.xor_count_ones(&a, &b), 2);
        mask.summary_mut().flip_bit(1);
        assert_eq!(mask.xor_count_ones(&a, &b), 1, "corruption drops a bit");
        assert!(mask.repair());
        assert_eq!(mask.xor_count_ones(&a, &b), 2);
    }

    #[test]
    fn wide_helpers_match_scalar() {
        let mut rng = StdRng::seed_from_u64(47);
        for len in [0usize, 1, 3, 4, 5, 7, 8, 11, 16] {
            let a: Vec<u64> = (0..len).map(|_| rng.random()).collect();
            let b: Vec<u64> = (0..len).map(|_| rng.random()).collect();
            let m: Vec<u64> = (0..len).map(|_| rng.random()).collect();
            assert_eq!(
                xor_masked_count_wide(&a, &b, &m),
                xor_masked_count_ones(&a, &b, &m),
                "len={len}"
            );
            let and_ref: usize = a
                .iter()
                .zip(&m)
                .map(|(&x, &z)| (x & z).count_ones() as usize)
                .sum();
            assert_eq!(and_masked_count_wide(&a, &m), and_ref);
            for (op, refop) in [
                (
                    and_assign_wide as fn(&mut [u64], &[u64]),
                    (|x: u64, y: u64| x & y) as fn(u64, u64) -> u64,
                ),
                (or_assign_wide, |x, y| x | y),
                (xor_assign_wide, |x, y| x ^ y),
            ] {
                let mut got = a.clone();
                op(&mut got, &b);
                let want: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| refop(x, y)).collect();
                assert_eq!(got, want, "len={len}");
            }
            let mut got = a.clone();
            not_wide(&mut got);
            let want: Vec<u64> = a.iter().map(|&x| !x).collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    #[should_panic(expected = "narrower than mask")]
    fn narrow_row_panics() {
        let mask = SparseMask::from_bits(&PackedBits::ones(128));
        mask.and_count_ones(&[0u64]);
    }
}
