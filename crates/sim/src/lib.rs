//! Bit-parallel logic simulation for the `incdx` workspace.
//!
//! The DATE 2002 engine is simulation-based: everything it knows about a
//! circuit comes from simulating test vectors and comparing primary-output
//! responses against a specification. This crate provides:
//!
//! * [`PackedBits`]/[`PackedMatrix`] — 64-way bit-parallel value storage
//!   (one bit per test vector per line),
//! * [`Simulator`] — full-circuit and fanout-cone event-driven simulation,
//! * [`SequentialSimulator`] — multi-timeframe simulation for circuits with
//!   DFFs (used by examples; the diagnosis engine itself runs on full-scan
//!   combinational cores),
//! * [`Response`] — PO capture, failing-vector masks and mismatch counts
//!   (the machinery behind the paper's `V_err`/`V_corr` bit-lists),
//! * [`SparseMask`]/[`BlockSummary`] — the hierarchical sparse bitset
//!   kernel: block-occupancy summaries over failing-vector masks, so
//!   screening popcounts skip whole all-zero blocks (see the
//!   "Simulation kernel" section of `ARCHITECTURE.md`),
//! * [`logic5`] — the 5-valued D-calculus used by the PODEM ATPG substrate.
//!
//! # Example
//!
//! ```
//! use incdx_netlist::parse_bench;
//! use incdx_sim::{PackedMatrix, Simulator};
//!
//! let n = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n")?;
//! // Four vectors: a = 0101, b = 0011 (bit i = vector i).
//! let mut pi = PackedMatrix::new(2, 4);
//! pi.row_mut(0)[0] = 0b0101;
//! pi.row_mut(1)[0] = 0b0011;
//! let vals = Simulator::new().run(&n, &pi);
//! assert_eq!(vals.row(2)[0] & 0xF, 0b0001); // y = a AND b
//! # Ok::<(), incdx_netlist::NetlistError>(())
//! ```

pub mod logic5;
mod packed;
mod response;
mod sequential;
mod simulator;
mod sparse;

pub use packed::{xor_masked_count_ones, PackedBits, PackedMatrix};
pub use response::Response;
pub use sequential::SequentialSimulator;
pub use simulator::Simulator;
pub use sparse::{BlockSummary, SparseMask, BLOCK_WORDS};
