use incdx_netlist::{GateId, GateKind, Netlist};

use crate::packed::{PackedBits, PackedMatrix};
use crate::simulator::Simulator;

/// Multi-timeframe simulator for sequential (DFF-bearing) netlists.
///
/// Bit position `v` of every row is an *independent parallel sequence*: the
/// simulator advances all of them one clock cycle per [`Self::step`]. DFF
/// rows carry the current state; after the combinational evaluation of a
/// frame, each DFF captures its data input for the next frame.
///
/// The diagnosis engine itself runs on full-scan combinational cores (see
/// `incdx_netlist::scan_convert`); this simulator exists so examples and
/// tests can validate those cores against true sequential behaviour.
///
/// # Example
///
/// ```
/// use incdx_netlist::parse_bench;
/// use incdx_sim::{PackedMatrix, SequentialSimulator};
///
/// // 1-bit toggle counter: q flips every cycle.
/// let n = parse_bench("OUTPUT(q)\nq = DFF(d)\nd = NOT(q)\n")?;
/// let mut sim = SequentialSimulator::new(&n, 1);
/// let empty = PackedMatrix::new(0, 1);
/// let f1 = sim.step(&n, &empty);
/// let f2 = sim.step(&n, &empty);
/// let q = n.find_by_name("q").unwrap().index();
/// assert!(!f1.get(q, 0)); // reset state 0
/// assert!(f2.get(q, 0)); // toggled
/// # Ok::<(), incdx_netlist::NetlistError>(())
/// ```
#[derive(Debug)]
pub struct SequentialSimulator {
    state: Vec<(GateId, PackedBits)>,
    num_vectors: usize,
    sim: Simulator,
}

impl SequentialSimulator {
    /// Creates a simulator with all DFFs reset to 0, advancing
    /// `num_vectors` parallel sequences.
    pub fn new(netlist: &Netlist, num_vectors: usize) -> Self {
        let state = netlist
            .dffs()
            .into_iter()
            .map(|d| (d, PackedBits::new(num_vectors)))
            .collect();
        SequentialSimulator {
            state,
            num_vectors,
            sim: Simulator::new(),
        }
    }

    /// Overrides the current state of one DFF.
    ///
    /// # Panics
    ///
    /// Panics if `dff` is not a DFF of the netlist this simulator was
    /// created for, or the vector counts disagree.
    pub fn set_state(&mut self, dff: GateId, value: &PackedBits) {
        assert_eq!(
            value.num_vectors(),
            self.num_vectors,
            "vector count mismatch"
        );
        let slot = self
            .state
            .iter_mut()
            .find(|(d, _)| *d == dff)
            .expect("unknown DFF");
        slot.1 = value.clone();
    }

    /// Current state of one DFF.
    ///
    /// # Panics
    ///
    /// Panics if `dff` is unknown.
    pub fn state(&self, dff: GateId) -> &PackedBits {
        &self
            .state
            .iter()
            .find(|(d, _)| *d == dff)
            .expect("unknown DFF")
            .1
    }

    /// Advances one clock cycle: evaluates the combinational logic of the
    /// frame under `pi_values` (row `i` = i-th primary input), returns the
    /// full value matrix of the frame, and latches every DFF's data input
    /// as the next state.
    ///
    /// # Panics
    ///
    /// Panics if `pi_values` has the wrong shape.
    pub fn step(&mut self, netlist: &Netlist, pi_values: &PackedMatrix) -> PackedMatrix {
        assert_eq!(
            pi_values.rows(),
            netlist.inputs().len(),
            "one row per primary input required"
        );
        assert_eq!(
            pi_values.num_vectors(),
            self.num_vectors,
            "vector count mismatch"
        );
        let mut vals = PackedMatrix::new(netlist.len(), self.num_vectors);
        for (i, &pi) in netlist.inputs().iter().enumerate() {
            vals.row_mut(pi.index()).copy_from_slice(pi_values.row(i));
        }
        for (d, bits) in &self.state {
            vals.set_row(d.index(), bits);
        }
        for &id in netlist.topo_order() {
            let kind = netlist.gate(id).kind();
            if kind == GateKind::Input || kind == GateKind::Dff {
                continue;
            }
            self.sim.eval_gate(netlist, id, &mut vals);
        }
        for (d, bits) in &mut self.state {
            let data_in = netlist.gate(*d).fanins()[0];
            *bits = vals.to_bits(data_in.index());
            bits.mask_tail();
        }
        vals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdx_netlist::parse_bench;

    #[test]
    fn two_bit_counter_counts() {
        // q1 q0 counts 00,01,10,11,00,... : d0 = !q0; d1 = q1 ^ q0.
        let src =
            "OUTPUT(q0)\nOUTPUT(q1)\nq0 = DFF(d0)\nq1 = DFF(d1)\nd0 = NOT(q0)\nd1 = XOR(q1, q0)\n";
        let n = parse_bench(src).unwrap();
        let mut sim = SequentialSimulator::new(&n, 1);
        let empty = PackedMatrix::new(0, 1);
        let q0 = n.find_by_name("q0").unwrap().index();
        let q1 = n.find_by_name("q1").unwrap().index();
        let mut seen = Vec::new();
        for _ in 0..5 {
            let f = sim.step(&n, &empty);
            seen.push((f.get(q1, 0) as u8) << 1 | f.get(q0, 0) as u8);
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 0]);
    }

    #[test]
    fn parallel_sequences_are_independent() {
        // q = DFF(d), d = XOR(q, x): q accumulates parity of input stream x.
        let n = parse_bench("INPUT(x)\nOUTPUT(q)\nq = DFF(d)\nd = XOR(q, x)\n").unwrap();
        let mut sim = SequentialSimulator::new(&n, 2);
        let q = n.find_by_name("q").unwrap().index();
        // Sequence 0 feeds 1,1 (parity 0 after 2 cycles); sequence 1 feeds 1,0.
        let mut pi = PackedMatrix::new(1, 2);
        pi.set(0, 0, true);
        pi.set(0, 1, true);
        sim.step(&n, &pi);
        let mut pi2 = PackedMatrix::new(1, 2);
        pi2.set(0, 0, true);
        pi2.set(0, 1, false);
        sim.step(&n, &pi2);
        let f = sim.step(&n, &PackedMatrix::new(1, 2));
        assert!(!f.get(q, 0)); // 1 ^ 1 = 0
        assert!(f.get(q, 1)); // 1 ^ 0 = 1
    }

    #[test]
    fn set_state_overrides_reset() {
        let n = parse_bench("OUTPUT(q)\nq = DFF(d)\nd = BUF(q)\n").unwrap();
        let q = n.find_by_name("q").unwrap();
        let mut sim = SequentialSimulator::new(&n, 1);
        let mut one = PackedBits::new(1);
        one.set(0, true);
        sim.set_state(q, &one);
        let f = sim.step(&n, &PackedMatrix::new(0, 1));
        assert!(f.get(q.index(), 0));
        assert!(sim.state(q).get(0)); // holds its value
    }
}
