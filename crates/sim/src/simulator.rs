use incdx_netlist::{GateId, GateKind, Netlist};

use crate::packed::PackedMatrix;
use crate::sparse::{and_assign_wide, not_wide, or_assign_wide, xor_assign_wide, BLOCK_WORDS};

/// Bit-parallel combinational simulator.
///
/// Holds reusable scratch so the hot paths (full runs and fanout-cone
/// resimulation inside the diagnosis loop) allocate nothing per call.
///
/// # Example
///
/// ```
/// use incdx_netlist::parse_bench;
/// use incdx_sim::{PackedMatrix, Simulator};
///
/// let n = parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")?;
/// let mut pi = PackedMatrix::new(1, 2);
/// pi.row_mut(0)[0] = 0b10;
/// let vals = Simulator::new().run(&n, &pi);
/// assert_eq!(vals.row(1)[0] & 0b11, 0b01);
/// # Ok::<(), incdx_netlist::NetlistError>(())
/// ```
#[derive(Debug, Default)]
pub struct Simulator {
    scratch: Vec<u64>,
    words_simulated: u64,
    events_propagated: u64,
    words_skipped: u64,
    // Generation-stamped changed set for `run_cone_events`: line `i` is
    // "changed this call" iff `changed_stamp[i] == stamp_gen`. Bumping the
    // generation clears the whole set in O(1), so the buffer is reused
    // across calls without per-call allocation.
    changed_stamp: Vec<u64>,
    stamp_gen: u64,
    sparse: bool,
    blocks_skipped: u64,
    sparse_rows: u64,
    dense_fallbacks: u64,
    // Per-line changed-*block* masks for the sparse walk, flat
    // (`line * summary_words ..`); valid only where `changed_stamp`
    // carries the current generation, so stale contents never need
    // zeroing.
    changed_blocks: Vec<u64>,
    // Reusable per-gate union of changed fanin block masks.
    block_union: Vec<u64>,
}

impl Simulator {
    /// Creates a simulator.
    pub fn new() -> Self {
        Simulator::default()
    }

    /// Packed 64-vector words evaluated since construction (or the last
    /// [`Self::reset_words_simulated`]) — one unit per gate evaluation
    /// per word, the engine's machine-independent measure of simulation
    /// work.
    ///
    /// ```
    /// use incdx_netlist::parse_bench;
    /// use incdx_sim::{PackedMatrix, Simulator};
    ///
    /// let n = parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")?;
    /// let mut sim = Simulator::new();
    /// sim.run(&n, &PackedMatrix::new(1, 128)); // 128 vectors = 2 words
    /// assert_eq!(sim.words_simulated(), 2); // one NOT gate × 2 words
    /// # Ok::<(), incdx_netlist::NetlistError>(())
    /// ```
    pub fn words_simulated(&self) -> u64 {
        self.words_simulated
    }

    /// Resets the [`Self::words_simulated`] counter to zero.
    pub fn reset_words_simulated(&mut self) {
        self.words_simulated = 0;
    }

    /// Gate evaluations triggered by [`Self::run_cone_events`] since
    /// construction — each one is an "event" whose fanin rows actually
    /// changed (the stem always counts as changed).
    pub fn events_propagated(&self) -> u64 {
        self.events_propagated
    }

    /// Packed words *not* evaluated by [`Self::run_cone_events`] because no
    /// fanin of the cone gate had changed — the work the change-bounded walk
    /// avoided relative to a plain [`Self::run_cone`] over the same cone.
    pub fn words_skipped(&self) -> u64 {
        self.words_skipped
    }

    /// Enables the hierarchical sparse kernel for change-bounded cone
    /// propagation: [`Self::run_cone_events`] tracks which
    /// [`BLOCK_WORDS`]-word blocks of each row actually changed and
    /// re-evaluates occupied blocks only. Results are bit-identical to
    /// the dense walk for every circuit and planting — only the work
    /// counters move (see `ARCHITECTURE.md`, "Simulation kernel").
    pub fn set_sparse(&mut self, on: bool) {
        self.sparse = on;
    }

    /// Is the sparse block-propagation kernel enabled?
    pub fn sparse(&self) -> bool {
        self.sparse
    }

    /// All-zero blocks the sparse walk skipped without touching
    /// (0 unless [`Self::set_sparse`] is on).
    pub fn blocks_skipped(&self) -> u64 {
        self.blocks_skipped
    }

    /// Gate rows evaluated block-restricted by the sparse walk.
    pub fn sparse_rows(&self) -> u64 {
        self.sparse_rows
    }

    /// Cone walks that requested the sparse kernel but ran dense because
    /// the rows were too narrow to hold more than one block.
    pub fn dense_fallbacks(&self) -> u64 {
        self.dense_fallbacks
    }

    /// Simulates the whole circuit on the given primary-input values
    /// (row `i` of `pi_values` is the i-th primary input, in
    /// [`Netlist::inputs`] order), returning a full `lines × vectors`
    /// value matrix.
    ///
    /// # Panics
    ///
    /// Panics if the netlist is not combinational or `pi_values` has the
    /// wrong row count.
    pub fn run(&mut self, netlist: &Netlist, pi_values: &PackedMatrix) -> PackedMatrix {
        assert_eq!(
            pi_values.rows(),
            netlist.inputs().len(),
            "one row per primary input required"
        );
        self.run_for_inputs(netlist, netlist.inputs(), pi_values)
    }

    /// Like [`Self::run`], but row `i` of `pi_values` feeds the line
    /// `input_ids[i]` — which need not be every input of `netlist`, and may
    /// name lines that are no longer inputs (those rows are ignored, the
    /// line's driver wins).
    ///
    /// This is the convention the diagnosis engine relies on: fault models
    /// and corrections may rewrite a primary-input line into a constant,
    /// and the *base* circuit's input list keeps vector rows aligned across
    /// all derived circuits.
    ///
    /// # Panics
    ///
    /// Panics if the netlist is not combinational, shapes disagree, or an
    /// id is out of range.
    pub fn run_for_inputs(
        &mut self,
        netlist: &Netlist,
        input_ids: &[GateId],
        pi_values: &PackedMatrix,
    ) -> PackedMatrix {
        assert_eq!(
            pi_values.rows(),
            input_ids.len(),
            "one row per listed input required"
        );
        let mut vals = PackedMatrix::new(netlist.len(), pi_values.num_vectors());
        for (i, &id) in input_ids.iter().enumerate() {
            if netlist.gate(id).kind() == GateKind::Input {
                vals.row_mut(id.index()).copy_from_slice(pi_values.row(i));
            }
        }
        self.run_in_place(netlist, &mut vals);
        vals
    }

    /// Recomputes every non-input line of `vals` in topological order,
    /// leaving primary-input rows untouched.
    ///
    /// # Panics
    ///
    /// Panics if the netlist is not combinational or the matrix shape does
    /// not match the netlist.
    pub fn run_in_place(&mut self, netlist: &Netlist, vals: &mut PackedMatrix) {
        assert_eq!(vals.rows(), netlist.len(), "one row per line required");
        for &id in netlist.topo_order() {
            let kind = netlist.gate(id).kind();
            if kind == GateKind::Input {
                continue;
            }
            assert!(kind != GateKind::Dff, "combinational simulation only");
            self.eval_gate(netlist, id, vals);
        }
    }

    /// Resimulates exactly the gates of `cone` (which must be
    /// topologically sorted, as produced by
    /// [`Netlist::fanout_cone_sorted`]), *excluding* its first element —
    /// the cone stem keeps whatever values the caller planted there. This
    /// is the "propagate this difference throughout the fan-out cone of l"
    /// primitive of the paper's heuristic 1.
    ///
    /// # Panics
    ///
    /// Panics if a cone gate is a DFF.
    pub fn run_cone(&mut self, netlist: &Netlist, vals: &mut PackedMatrix, cone: &[GateId]) {
        for &id in cone.iter().skip(1) {
            let kind = netlist.gate(id).kind();
            assert!(kind != GateKind::Dff, "combinational simulation only");
            if kind == GateKind::Input {
                continue;
            }
            self.eval_gate(netlist, id, vals);
        }
    }

    /// Change-bounded variant of [`Self::run_cone`]: walks the same
    /// topologically-sorted cone, but recomputes a gate only when at least
    /// one of its fanin rows actually changed during this call, and marks
    /// the gate as changed only when its freshly evaluated row differs from
    /// the stored one. The stem (`cone[0]`) is treated as changed
    /// unconditionally — the caller plants its new values, exactly as with
    /// [`Self::run_cone`].
    ///
    /// Given a value matrix that is *consistent* (every non-stem row equals
    /// the evaluation of its fanin rows, tail bits included), this produces
    /// a matrix bit-identical to [`Self::run_cone`]: a skipped gate's fanins
    /// all hold their pre-call values, so re-evaluating it would reproduce
    /// the row it already stores. Once the difference wave dies out (rows
    /// converge back to their prior values), everything downstream is
    /// skipped — that is where the work saving comes from.
    ///
    /// Returns the number of non-stem cone gates whose row changed.
    /// Evaluated words are metered in [`Self::words_simulated`] /
    /// [`Self::events_propagated`]; avoided words in
    /// [`Self::words_skipped`].
    ///
    /// With [`Self::set_sparse`] on, the walk additionally tracks
    /// change at [`BLOCK_WORDS`]-block granularity and skips all-zero
    /// blocks within evaluated rows — bit-identical, fewer words
    /// touched. Rows of at most one block fall back to this dense walk
    /// (metered in [`Self::dense_fallbacks`]).
    ///
    /// # Panics
    ///
    /// Panics if a cone gate is a DFF.
    pub fn run_cone_events(
        &mut self,
        netlist: &Netlist,
        vals: &mut PackedMatrix,
        cone: &[GateId],
    ) -> usize {
        if self.sparse {
            if vals.words_per_row() > BLOCK_WORDS {
                return self.run_cone_events_sparse(netlist, vals, cone);
            }
            self.dense_fallbacks += 1;
        }
        let Some((&stem, rest)) = cone.split_first() else {
            return 0;
        };
        if self.changed_stamp.len() < netlist.len() {
            self.changed_stamp.resize(netlist.len(), 0);
        }
        self.stamp_gen += 1;
        let gen = self.stamp_gen;
        self.changed_stamp[stem.index()] = gen;
        let wpr = vals.words_per_row();
        self.scratch.resize(wpr, 0);
        let mut changed_gates = 0;
        for &id in rest {
            let gate = netlist.gate(id);
            let kind = gate.kind();
            assert!(kind != GateKind::Dff, "combinational simulation only");
            if kind == GateKind::Input {
                continue;
            }
            if !gate
                .fanins()
                .iter()
                .any(|f| self.changed_stamp[f.index()] == gen)
            {
                self.words_skipped += wpr as u64;
                continue;
            }
            eval_packed_into(kind, gate.fanins(), vals, &mut self.scratch);
            self.words_simulated += wpr as u64;
            self.events_propagated += 1;
            let row = vals.row_mut(id.index());
            if row != self.scratch.as_slice() {
                row.copy_from_slice(&self.scratch);
                self.changed_stamp[id.index()] = gen;
                changed_gates += 1;
            }
        }
        changed_gates
    }

    /// The sparse-kernel walk behind [`Self::run_cone_events`]: identical
    /// change-bounded traversal, but each changed line carries a *block*
    /// mask (one bit per [`BLOCK_WORDS`]-word block) instead of a single
    /// changed flag. A gate whose fanins changed is re-evaluated only on
    /// the union of their changed blocks — every other block of its row
    /// is already consistent, because column `w` of a row depends on
    /// column `w` of its fanin rows alone (the same independence argument
    /// as [`Self::run_cone_events_cols`], at block granularity).
    fn run_cone_events_sparse(
        &mut self,
        netlist: &Netlist,
        vals: &mut PackedMatrix,
        cone: &[GateId],
    ) -> usize {
        let Some((&stem, rest)) = cone.split_first() else {
            return 0;
        };
        let wpr = vals.words_per_row();
        let nblocks = wpr.div_ceil(BLOCK_WORDS);
        let sw = nblocks.div_ceil(64);
        if self.changed_stamp.len() < netlist.len() {
            self.changed_stamp.resize(netlist.len(), 0);
        }
        if self.changed_blocks.len() < netlist.len() * sw {
            self.changed_blocks.resize(netlist.len() * sw, 0);
        }
        self.stamp_gen += 1;
        let gen = self.stamp_gen;
        self.changed_stamp[stem.index()] = gen;
        // The caller plants arbitrary stem values, so every stem block
        // counts as changed.
        {
            let m = &mut self.changed_blocks[stem.index() * sw..(stem.index() + 1) * sw];
            m.fill(!0);
            if !nblocks.is_multiple_of(64) {
                m[sw - 1] = (1u64 << (nblocks % 64)) - 1;
            }
        }
        let mut full_union = vec![!0u64; sw];
        if !nblocks.is_multiple_of(64) {
            full_union[sw - 1] = (1u64 << (nblocks % 64)) - 1;
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        scratch.resize(wpr, 0);
        let mut union = std::mem::take(&mut self.block_union);
        union.clear();
        union.resize(sw, 0);
        let mut changed_gates = 0;
        for &id in rest {
            let gate = netlist.gate(id);
            let kind = gate.kind();
            assert!(kind != GateKind::Dff, "combinational simulation only");
            if kind == GateKind::Input {
                continue;
            }
            union.fill(0);
            let mut any = false;
            for f in gate.fanins() {
                if self.changed_stamp[f.index()] == gen {
                    any = true;
                    let m = &self.changed_blocks[f.index() * sw..(f.index() + 1) * sw];
                    for (u, &w) in union.iter_mut().zip(m) {
                        *u |= w;
                    }
                }
            }
            if !any {
                self.words_skipped += wpr as u64;
                self.blocks_skipped += nblocks as u64;
                continue;
            }
            // Wide changes (every block in the union) take the dense
            // walk's exact fast path — one full-width evaluation, one
            // whole-row compare — so the block machinery only spends
            // per-block overhead where it can also skip words. Narrowing
            // to genuinely-changed blocks still happens in the
            // comparison, at both widths.
            let full = union.iter().zip(&full_union).all(|(&u, &f)| u == f);
            let mut evaluated = 0usize;
            let mut occupied = 0u64;
            if full {
                eval_packed_range_into(kind, gate.fanins(), vals, 0, &mut scratch[..wpr]);
                evaluated = wpr;
                occupied = nblocks as u64;
            } else {
                for b in iter_set_bits(&union) {
                    let lo = b * BLOCK_WORDS;
                    let hi = (lo + BLOCK_WORDS).min(wpr);
                    eval_packed_range_into(kind, gate.fanins(), vals, lo, &mut scratch[lo..hi]);
                    evaluated += hi - lo;
                    occupied += 1;
                }
            }
            self.words_simulated += evaluated as u64;
            self.words_skipped += (wpr - evaluated) as u64;
            self.blocks_skipped += nblocks as u64 - occupied;
            self.events_propagated += 1;
            self.sparse_rows += 1;
            let row = vals.row_mut(id.index());
            if full && row[..wpr] == scratch[..wpr] {
                // Unchanged wide evaluation: one memcmp, no mask writes —
                // the stamp stays stale, so downstream gates never read
                // this gate's (garbage) block mask.
                continue;
            }
            // Compare per evaluated block; the gate's own changed mask is
            // the subset of blocks whose fresh value differs. The mask
            // slice may hold stale garbage from an earlier generation, so
            // it is rewritten wholesale before the stamp declares it live.
            let out_mask = &mut self.changed_blocks[id.index() * sw..(id.index() + 1) * sw];
            out_mask.fill(0);
            let mut changed = false;
            for b in iter_set_bits(&union) {
                let lo = b * BLOCK_WORDS;
                let hi = (lo + BLOCK_WORDS).min(wpr);
                if row[lo..hi] != scratch[lo..hi] {
                    row[lo..hi].copy_from_slice(&scratch[lo..hi]);
                    out_mask[b / 64] |= 1u64 << (b % 64);
                    changed = true;
                }
            }
            if changed {
                self.changed_stamp[id.index()] = gen;
                changed_gates += 1;
            }
        }
        self.scratch = scratch;
        self.block_union = union;
        changed_gates
    }

    /// Column-restricted variant of [`Self::run_cone_events`]: propagates
    /// the stem's difference through the cone touching only the word
    /// columns listed in `cols` (sorted, deduplicated indices into a row,
    /// each `< words_per_row`).
    ///
    /// In bit-parallel simulation every word column evolves independently:
    /// column `w` of any row is a function of column `w` of its fanin rows
    /// alone. So when the caller's stem planting changed *only* the
    /// columns in `cols`, every other column of every cone row is already
    /// consistent and stays untouched — recomputing just the listed
    /// columns produces a matrix bit-identical to a full-width
    /// [`Self::run_cone`]. This is what makes screening cheap late in the
    /// search, when the failing vectors (and hence the planted
    /// differences) concentrate in a few words of the row.
    ///
    /// Returns the number of non-stem cone gates whose row changed.
    ///
    /// # Panics
    ///
    /// Panics if a cone gate is a DFF (debug builds also check `cols`
    /// bounds via the indexed row accesses).
    pub fn run_cone_events_cols(
        &mut self,
        netlist: &Netlist,
        vals: &mut PackedMatrix,
        cone: &[GateId],
        cols: &[u32],
    ) -> usize {
        let wpr = vals.words_per_row();
        if cols.len() >= wpr {
            // Full-width: the unrestricted walk avoids the indexed gather.
            return self.run_cone_events(netlist, vals, cone);
        }
        let Some((&stem, rest)) = cone.split_first() else {
            return 0;
        };
        if self.changed_stamp.len() < netlist.len() {
            self.changed_stamp.resize(netlist.len(), 0);
        }
        self.stamp_gen += 1;
        let gen = self.stamp_gen;
        self.changed_stamp[stem.index()] = gen;
        let nw = cols.len();
        self.scratch.resize(nw, 0);
        let mut changed_gates = 0;
        for &id in rest {
            let gate = netlist.gate(id);
            let kind = gate.kind();
            assert!(kind != GateKind::Dff, "combinational simulation only");
            if kind == GateKind::Input {
                continue;
            }
            if !gate
                .fanins()
                .iter()
                .any(|f| self.changed_stamp[f.index()] == gen)
            {
                self.words_skipped += nw as u64;
                continue;
            }
            eval_packed_cols_into(kind, gate.fanins(), vals, cols, &mut self.scratch);
            self.words_simulated += nw as u64;
            self.events_propagated += 1;
            let row = vals.row_mut(id.index());
            let mut changed = false;
            for (i, &w) in cols.iter().enumerate() {
                if row[w as usize] != self.scratch[i] {
                    row[w as usize] = self.scratch[i];
                    changed = true;
                }
            }
            if changed {
                self.changed_stamp[id.index()] = gen;
                changed_gates += 1;
            }
        }
        changed_gates
    }

    /// Evaluates a single gate into its row of `vals`.
    pub fn eval_gate(&mut self, netlist: &Netlist, id: GateId, vals: &mut PackedMatrix) {
        let wpr = vals.words_per_row();
        self.scratch.resize(wpr, 0);
        let gate = netlist.gate(id);
        eval_packed_into(gate.kind(), gate.fanins(), vals, &mut self.scratch);
        vals.row_mut(id.index()).copy_from_slice(&self.scratch);
        self.words_simulated += wpr as u64;
    }
}

/// Iterates the set-bit positions of a word slice, ascending.
fn iter_set_bits(words: &[u64]) -> impl Iterator<Item = usize> + '_ {
    words.iter().enumerate().flat_map(|(wi, &w)| {
        let mut w = w;
        std::iter::from_fn(move || {
            if w == 0 {
                None
            } else {
                let b = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * 64 + b)
            }
        })
    })
}

/// Evaluates `kind` over the fanin rows of `vals` into `out` (whole words;
/// tail bits are garbage-in/garbage-out and must be masked by counters).
pub(crate) fn eval_packed_into(
    kind: GateKind,
    fanins: &[GateId],
    vals: &PackedMatrix,
    out: &mut [u64],
) {
    eval_packed_range_into(kind, fanins, vals, 0, out);
}

/// Range-restricted core of [`eval_packed_into`]: evaluates word columns
/// `lo .. lo + out.len()` of the fanin rows into `out`, with `[u64; 4]`
/// wide-word chunked inner loops (straight-line per chunk, so the
/// optimizer vectorizes the AND/OR/XOR folds).
pub(crate) fn eval_packed_range_into(
    kind: GateKind,
    fanins: &[GateId],
    vals: &PackedMatrix,
    lo: usize,
    out: &mut [u64],
) {
    let hi = lo + out.len();
    match kind {
        GateKind::Const0 => out.fill(0),
        GateKind::Const1 => out.fill(!0),
        GateKind::Buf => out.copy_from_slice(&vals.row(fanins[0].index())[lo..hi]),
        GateKind::Not => {
            out.copy_from_slice(&vals.row(fanins[0].index())[lo..hi]);
            not_wide(out);
        }
        GateKind::And | GateKind::Nand => {
            out.copy_from_slice(&vals.row(fanins[0].index())[lo..hi]);
            for &f in &fanins[1..] {
                and_assign_wide(out, &vals.row(f.index())[lo..hi]);
            }
            if kind == GateKind::Nand {
                not_wide(out);
            }
        }
        GateKind::Or | GateKind::Nor => {
            out.copy_from_slice(&vals.row(fanins[0].index())[lo..hi]);
            for &f in &fanins[1..] {
                or_assign_wide(out, &vals.row(f.index())[lo..hi]);
            }
            if kind == GateKind::Nor {
                not_wide(out);
            }
        }
        GateKind::Xor | GateKind::Xnor => {
            out.copy_from_slice(&vals.row(fanins[0].index())[lo..hi]);
            for &f in &fanins[1..] {
                xor_assign_wide(out, &vals.row(f.index())[lo..hi]);
            }
            if kind == GateKind::Xnor {
                not_wide(out);
            }
        }
        GateKind::Input | GateKind::Dff => {
            unreachable!("{kind:?} is not combinationally evaluable")
        }
    }
}

/// Column-restricted variant of [`eval_packed_into`]: evaluates `kind`
/// over the fanin rows of `vals`, but only at the word columns listed in
/// `cols`. `out[i]` receives the result for column `cols[i]`; `out` must
/// have the same length as `cols`.
pub(crate) fn eval_packed_cols_into(
    kind: GateKind,
    fanins: &[GateId],
    vals: &PackedMatrix,
    cols: &[u32],
    out: &mut [u64],
) {
    match kind {
        GateKind::Const0 => out.fill(0),
        GateKind::Const1 => out.fill(!0),
        GateKind::Buf => {
            let row = vals.row(fanins[0].index());
            for (o, &w) in out.iter_mut().zip(cols) {
                *o = row[w as usize];
            }
        }
        GateKind::Not => {
            let row = vals.row(fanins[0].index());
            for (o, &w) in out.iter_mut().zip(cols) {
                *o = !row[w as usize];
            }
        }
        GateKind::And | GateKind::Nand => {
            let row = vals.row(fanins[0].index());
            for (o, &w) in out.iter_mut().zip(cols) {
                *o = row[w as usize];
            }
            for &f in &fanins[1..] {
                let row = vals.row(f.index());
                for (o, &w) in out.iter_mut().zip(cols) {
                    *o &= row[w as usize];
                }
            }
            if kind == GateKind::Nand {
                for o in out.iter_mut() {
                    *o = !*o;
                }
            }
        }
        GateKind::Or | GateKind::Nor => {
            let row = vals.row(fanins[0].index());
            for (o, &w) in out.iter_mut().zip(cols) {
                *o = row[w as usize];
            }
            for &f in &fanins[1..] {
                let row = vals.row(f.index());
                for (o, &w) in out.iter_mut().zip(cols) {
                    *o |= row[w as usize];
                }
            }
            if kind == GateKind::Nor {
                for o in out.iter_mut() {
                    *o = !*o;
                }
            }
        }
        GateKind::Xor | GateKind::Xnor => {
            let row = vals.row(fanins[0].index());
            for (o, &w) in out.iter_mut().zip(cols) {
                *o = row[w as usize];
            }
            for &f in &fanins[1..] {
                let row = vals.row(f.index());
                for (o, &w) in out.iter_mut().zip(cols) {
                    *o ^= row[w as usize];
                }
            }
            if kind == GateKind::Xnor {
                for o in out.iter_mut() {
                    *o = !*o;
                }
            }
        }
        GateKind::Input | GateKind::Dff => {
            unreachable!("{kind:?} is not combinationally evaluable")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdx_netlist::parse_bench;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const C17: &str = "\
INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\nOUTPUT(22)\nOUTPUT(23)\n\
10 = NAND(1, 3)\n11 = NAND(3, 6)\n16 = NAND(2, 11)\n19 = NAND(11, 7)\n\
22 = NAND(10, 16)\n23 = NAND(16, 19)\n";

    /// Scalar reference simulator.
    fn eval_naive(n: &Netlist, inputs: &[bool]) -> Vec<bool> {
        let mut vals = vec![false; n.len()];
        for (i, &pi) in n.inputs().iter().enumerate() {
            vals[pi.index()] = inputs[i];
        }
        for &id in n.topo_order() {
            let g = n.gate(id);
            if g.kind() == GateKind::Input {
                continue;
            }
            let f: Vec<bool> = g.fanins().iter().map(|&x| vals[x.index()]).collect();
            vals[id.index()] = g.kind().eval(&f);
        }
        vals
    }

    #[test]
    fn packed_matches_naive_on_c17_exhaustively() {
        let n = parse_bench(C17).unwrap();
        let nv = 32; // all 2^5 input combinations
        let mut pi = PackedMatrix::new(5, nv);
        for v in 0..nv {
            for i in 0..5 {
                pi.set(i, v, v >> i & 1 == 1);
            }
        }
        let vals = Simulator::new().run(&n, &pi);
        for v in 0..nv {
            let scalar: Vec<bool> = (0..5).map(|i| v >> i & 1 == 1).collect();
            let expect = eval_naive(&n, &scalar);
            for id in n.ids() {
                assert_eq!(
                    vals.get(id.index(), v),
                    expect[id.index()],
                    "line {id} vector {v}"
                );
            }
        }
    }

    #[test]
    fn packed_matches_naive_on_all_gate_kinds() {
        let src = "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(o1)\nOUTPUT(o2)\nOUTPUT(o3)\n\
                   OUTPUT(o4)\nOUTPUT(o5)\nOUTPUT(o6)\nOUTPUT(o7)\nOUTPUT(o8)\n\
                   o1 = AND(a, b, c)\no2 = OR(a, b, c)\no3 = NAND(a, b)\no4 = NOR(b, c)\n\
                   o5 = XOR(a, b, c)\no6 = XNOR(a, c)\no7 = NOT(a)\no8 = BUF(c)\n";
        let n = parse_bench(src).unwrap();
        let mut pi = PackedMatrix::new(3, 8);
        for v in 0..8 {
            for i in 0..3 {
                pi.set(i, v, v >> i & 1 == 1);
            }
        }
        let vals = Simulator::new().run(&n, &pi);
        for v in 0..8 {
            let scalar: Vec<bool> = (0..3).map(|i| v >> i & 1 == 1).collect();
            let expect = eval_naive(&n, &scalar);
            for id in n.ids() {
                assert_eq!(vals.get(id.index(), v), expect[id.index()], "{id} v{v}");
            }
        }
    }

    #[test]
    fn cone_resimulation_matches_full_resimulation() {
        let n = parse_bench(C17).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let pi = PackedMatrix::random(5, 256, &mut rng);
        let mut sim = Simulator::new();
        let base = sim.run(&n, &pi);

        // Flip line 11 (a stem with reconvergent fanout) everywhere and
        // propagate through its cone only.
        let stem = n.find_by_name("11").unwrap();
        let mut coned = base.clone();
        for w in coned.row_mut(stem.index()) {
            *w = !*w;
        }
        let cone = n.fanout_cone_sorted(stem);
        sim.run_cone(&n, &mut coned, &cone);

        // Reference: rebuild a netlist where that line is inverted by
        // simulating with the stem forced.
        let mut full = base.clone();
        for w in full.row_mut(stem.index()) {
            *w = !*w;
        }
        // Recompute everything downstream by running all gates except the
        // stem (treat stem like an input).
        for &id in n.topo_order() {
            if id == stem || n.gate(id).kind() == GateKind::Input {
                continue;
            }
            sim.eval_gate(&n, id, &mut full);
        }
        assert_eq!(coned, full);
    }

    #[test]
    fn event_driven_cone_matches_plain_cone() {
        let n = parse_bench(C17).unwrap();
        let mut rng = StdRng::seed_from_u64(23);
        let pi = PackedMatrix::random(5, 192, &mut rng);
        let mut sim = Simulator::new();
        let base = sim.run(&n, &pi);

        for stem_name in ["10", "11", "16", "19"] {
            let stem = n.find_by_name(stem_name).unwrap();
            let cone = n.fanout_cone_sorted(stem);

            // Flip only a few vectors of the stem so the difference can
            // converge (a NAND with the difference masked off propagates
            // nothing).
            let mut a = base.clone();
            a.row_mut(stem.index())[0] ^= 0b1011;
            let mut b = a.clone();

            sim.run_cone(&n, &mut a, &cone);
            let skipped_before = sim.words_skipped();
            let changed = sim.run_cone_events(&n, &mut b, &cone);
            assert_eq!(a, b, "stem {stem_name}");
            assert!(changed < cone.len());
            assert!(sim.words_skipped() >= skipped_before);
        }
    }

    #[test]
    fn column_restricted_cone_matches_plain_cone() {
        let n = parse_bench(C17).unwrap();
        let mut rng = StdRng::seed_from_u64(31);
        // 192 vectors = 3 words per row; plant differences in columns 0
        // and 2 only, so column 1 must stay untouched.
        let pi = PackedMatrix::random(5, 192, &mut rng);
        let mut sim = Simulator::new();
        let base = sim.run(&n, &pi);

        for stem_name in ["10", "11", "16", "19"] {
            let stem = n.find_by_name(stem_name).unwrap();
            let cone = n.fanout_cone_sorted(stem);

            let mut a = base.clone();
            a.row_mut(stem.index())[0] ^= 0b1011;
            a.row_mut(stem.index())[2] ^= 0b0110;
            let mut b = a.clone();

            sim.run_cone(&n, &mut a, &cone);
            let words_before = sim.words_simulated();
            let changed = sim.run_cone_events_cols(&n, &mut b, &cone, &[0, 2]);
            assert_eq!(a, b, "stem {stem_name}");
            assert!(changed < cone.len());
            // Each evaluated gate is metered at 2 words, not 3.
            assert_eq!((sim.words_simulated() - words_before) % 2, 0);
        }
    }

    #[test]
    fn column_restricted_cone_full_width_delegates() {
        let n = parse_bench(C17).unwrap();
        let mut rng = StdRng::seed_from_u64(37);
        let pi = PackedMatrix::random(5, 128, &mut rng);
        let mut sim = Simulator::new();
        let base = sim.run(&n, &pi);
        let stem = n.find_by_name("16").unwrap();
        let cone = n.fanout_cone_sorted(stem);

        let mut a = base.clone();
        for w in a.row_mut(stem.index()) {
            *w = !*w;
        }
        let mut b = a.clone();
        sim.run_cone(&n, &mut a, &cone);
        sim.run_cone_events_cols(&n, &mut b, &cone, &[0, 1]);
        assert_eq!(a, b);
    }

    #[test]
    fn event_driven_cone_skips_everything_when_stem_unchanged() {
        let n = parse_bench(C17).unwrap();
        let mut rng = StdRng::seed_from_u64(29);
        let pi = PackedMatrix::random(5, 128, &mut rng);
        let mut sim = Simulator::new();
        let mut vals = sim.run(&n, &pi);
        let stem = n.find_by_name("11").unwrap();
        let cone = n.fanout_cone_sorted(stem);

        // Replant the stem with its existing values: the stem is still
        // *marked* changed (the caller claims it planted something), so its
        // direct fanouts are evaluated, but their rows come out identical
        // and the wave dies immediately after.
        let words = sim.words_simulated();
        let changed = sim.run_cone_events(&n, &mut vals, &cone);
        assert_eq!(changed, 0);
        // Direct fanouts of the stem were evaluated; nothing deeper.
        let direct = n.fanouts(stem).len() as u64;
        assert_eq!(sim.words_simulated() - words, direct * 2); // 128 v = 2 words
    }

    #[test]
    fn const_gates_evaluate() {
        let n = parse_bench("INPUT(a)\nOUTPUT(y)\nz = CONST1\ny = AND(a, z)\n");
        // CONST1 with parens-free syntax is not valid bench; build manually.
        assert!(n.is_err());
        let mut b = Netlist::builder();
        let a = b.add_input("a");
        let one = b.add_gate(GateKind::Const1, vec![]);
        let zero = b.add_gate(GateKind::Const0, vec![]);
        let y = b.add_gate(GateKind::And, vec![a, one]);
        let z = b.add_gate(GateKind::Or, vec![a, zero]);
        b.add_output(y);
        b.add_output(z);
        let n = b.build().unwrap();
        let mut pi = PackedMatrix::new(1, 2);
        pi.row_mut(0)[0] = 0b10;
        let vals = Simulator::new().run(&n, &pi);
        assert_eq!(vals.row(y.index())[0] & 0b11, 0b10);
        assert_eq!(vals.row(z.index())[0] & 0b11, 0b10);
    }

    #[test]
    #[should_panic(expected = "one row per primary input")]
    fn run_rejects_wrong_pi_shape() {
        let n = parse_bench(C17).unwrap();
        let pi = PackedMatrix::new(2, 64);
        Simulator::new().run(&n, &pi);
    }

    #[test]
    fn sparse_cone_events_match_dense_cone_events() {
        let n = parse_bench(C17).unwrap();
        let mut rng = StdRng::seed_from_u64(53);
        // 600 vectors = 10 words = 3 blocks; plant a difference confined
        // to block 1, so blocks 0 and 2 are skippable everywhere.
        let pi = PackedMatrix::random(5, 600, &mut rng);
        let mut dense = Simulator::new();
        let mut sparse = Simulator::new();
        sparse.set_sparse(true);
        assert!(sparse.sparse() && !dense.sparse());
        let base = dense.run(&n, &pi);

        for stem_name in ["10", "11", "16", "19"] {
            let stem = n.find_by_name(stem_name).unwrap();
            let cone = n.fanout_cone_sorted(stem);
            let mut a = base.clone();
            a.row_mut(stem.index())[5] ^= 0b1011;
            let mut b = a.clone();
            let ca = dense.run_cone_events(&n, &mut a, &cone);
            let cb = sparse.run_cone_events(&n, &mut b, &cone);
            assert_eq!(a, b, "stem {stem_name}");
            assert_eq!(ca, cb, "stem {stem_name}");
        }
        assert!(sparse.blocks_skipped() > 0, "whole blocks were skipped");
        assert!(sparse.sparse_rows() > 0);
        assert_eq!(sparse.dense_fallbacks(), 0);
        // The sparse walk touches no more words than the dense one.
        assert!(sparse.words_simulated() <= dense.words_simulated());
    }

    #[test]
    fn sparse_cone_events_match_on_full_width_planting() {
        // Worst case for the kernel: the stem changes everywhere, so the
        // block masks are all-ones and sparse degenerates to dense work —
        // still bit-identical.
        let n = parse_bench(C17).unwrap();
        let mut rng = StdRng::seed_from_u64(59);
        let pi = PackedMatrix::random(5, 448, &mut rng); // 7 words, 2 blocks
        let mut dense = Simulator::new();
        let mut sparse = Simulator::new();
        sparse.set_sparse(true);
        let base = dense.run(&n, &pi);
        let stem = n.find_by_name("11").unwrap();
        let cone = n.fanout_cone_sorted(stem);
        let mut a = base.clone();
        for w in a.row_mut(stem.index()) {
            *w = !*w;
        }
        let mut b = a.clone();
        dense.run_cone_events(&n, &mut a, &cone);
        sparse.run_cone_events(&n, &mut b, &cone);
        assert_eq!(a, b);
    }

    #[test]
    fn sparse_narrow_rows_fall_back_to_dense() {
        let n = parse_bench(C17).unwrap();
        let mut rng = StdRng::seed_from_u64(61);
        let pi = PackedMatrix::random(5, 128, &mut rng); // 2 words < 1 block
        let mut sim = Simulator::new();
        sim.set_sparse(true);
        let base = sim.run(&n, &pi);
        let stem = n.find_by_name("16").unwrap();
        let cone = n.fanout_cone_sorted(stem);
        let mut vals = base.clone();
        vals.row_mut(stem.index())[0] ^= 1;
        sim.run_cone_events(&n, &mut vals, &cone);
        assert_eq!(sim.dense_fallbacks(), 1);
        assert_eq!(sim.sparse_rows(), 0);
    }
}
