//! Five-valued D-calculus (0, 1, X, D, D̄) for test generation.
//!
//! `D` means "1 in the good circuit, 0 in the faulty circuit"; `D̄` the
//! opposite. A value is represented by its (good, faulty) pair of
//! three-valued components, which makes gate evaluation a lift of ordinary
//! three-valued logic — the standard construction PODEM builds on.

use incdx_netlist::GateKind;

/// A three-valued logic value: 0, 1 or unknown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum V3 {
    /// Logic 0.
    Zero,
    /// Logic 1.
    One,
    /// Unassigned / unknown.
    X,
}

impl V3 {
    /// Lifts a bool.
    pub fn from_bool(b: bool) -> V3 {
        if b {
            V3::One
        } else {
            V3::Zero
        }
    }

    /// The known boolean value, if any.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            V3::Zero => Some(false),
            V3::One => Some(true),
            V3::X => None,
        }
    }

    /// Three-valued NOT.
    #[allow(clippy::should_implement_trait)] // domain name; V3 is not a bit type
    pub fn not(self) -> V3 {
        match self {
            V3::Zero => V3::One,
            V3::One => V3::Zero,
            V3::X => V3::X,
        }
    }

    /// Three-valued AND.
    pub fn and(self, other: V3) -> V3 {
        match (self, other) {
            (V3::Zero, _) | (_, V3::Zero) => V3::Zero,
            (V3::One, V3::One) => V3::One,
            _ => V3::X,
        }
    }

    /// Three-valued OR.
    pub fn or(self, other: V3) -> V3 {
        match (self, other) {
            (V3::One, _) | (_, V3::One) => V3::One,
            (V3::Zero, V3::Zero) => V3::Zero,
            _ => V3::X,
        }
    }

    /// Three-valued XOR.
    pub fn xor(self, other: V3) -> V3 {
        match (self, other) {
            (V3::X, _) | (_, V3::X) => V3::X,
            (a, b) => V3::from_bool((a == V3::One) != (b == V3::One)),
        }
    }
}

/// A five-valued D-calculus value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum V5 {
    /// 0 in both good and faulty circuit.
    Zero,
    /// 1 in both good and faulty circuit.
    One,
    /// Unknown.
    X,
    /// 1 good / 0 faulty.
    D,
    /// 0 good / 1 faulty.
    Dbar,
}

impl V5 {
    /// Lifts a bool (same value in good and faulty circuit).
    pub fn from_bool(b: bool) -> V5 {
        if b {
            V5::One
        } else {
            V5::Zero
        }
    }

    /// Decomposes into (good, faulty) three-valued components.
    pub fn components(self) -> (V3, V3) {
        match self {
            V5::Zero => (V3::Zero, V3::Zero),
            V5::One => (V3::One, V3::One),
            V5::X => (V3::X, V3::X),
            V5::D => (V3::One, V3::Zero),
            V5::Dbar => (V3::Zero, V3::One),
        }
    }

    /// Recomposes from (good, faulty) components; `X` in either component
    /// yields `X` (the conservative PODEM convention).
    pub fn from_components(good: V3, faulty: V3) -> V5 {
        match (good, faulty) {
            (V3::X, _) | (_, V3::X) => V5::X,
            (V3::Zero, V3::Zero) => V5::Zero,
            (V3::One, V3::One) => V5::One,
            (V3::One, V3::Zero) => V5::D,
            (V3::Zero, V3::One) => V5::Dbar,
        }
    }

    /// Is the value a fault effect (`D` or `D̄`)?
    pub fn is_fault_effect(self) -> bool {
        matches!(self, V5::D | V5::Dbar)
    }

    /// The good-circuit boolean, if known.
    pub fn good(self) -> Option<bool> {
        self.components().0.to_bool()
    }

    /// The faulty-circuit boolean, if known.
    pub fn faulty(self) -> Option<bool> {
        self.components().1.to_bool()
    }

    /// Five-valued complement.
    #[allow(clippy::should_implement_trait)] // domain name; V5 is not a bit type
    pub fn not(self) -> V5 {
        let (g, f) = self.components();
        V5::from_components(g.not(), f.not())
    }
}

/// Evaluates `kind` over five-valued fanins.
///
/// # Panics
///
/// Panics if `kind` has no combinational function (`Input`, `Dff`) or the
/// fanin list is empty for a kind that needs fanins.
pub fn eval5(kind: GateKind, fanins: &[V5]) -> V5 {
    let fold3 = |f: fn(V3, V3) -> V3, init: V3, comp: fn(V5) -> V3| -> V3 {
        fanins.iter().fold(init, |acc, &v| f(acc, comp(v)))
    };
    let good = |v: V5| v.components().0;
    let faulty = |v: V5| v.components().1;
    match kind {
        GateKind::Const0 => V5::Zero,
        GateKind::Const1 => V5::One,
        GateKind::Buf => fanins[0],
        GateKind::Not => fanins[0].not(),
        GateKind::And => V5::from_components(
            fold3(V3::and, V3::One, good),
            fold3(V3::and, V3::One, faulty),
        ),
        GateKind::Nand => V5::from_components(
            fold3(V3::and, V3::One, good).not(),
            fold3(V3::and, V3::One, faulty).not(),
        ),
        GateKind::Or => V5::from_components(
            fold3(V3::or, V3::Zero, good),
            fold3(V3::or, V3::Zero, faulty),
        ),
        GateKind::Nor => V5::from_components(
            fold3(V3::or, V3::Zero, good).not(),
            fold3(V3::or, V3::Zero, faulty).not(),
        ),
        GateKind::Xor => V5::from_components(
            fold3(V3::xor, V3::Zero, good),
            fold3(V3::xor, V3::Zero, faulty),
        ),
        GateKind::Xnor => V5::from_components(
            fold3(V3::xor, V3::Zero, good).not(),
            fold3(V3::xor, V3::Zero, faulty).not(),
        ),
        GateKind::Input | GateKind::Dff => panic!("{kind:?} has no combinational function"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v3_truth_tables() {
        assert_eq!(V3::Zero.and(V3::X), V3::Zero);
        assert_eq!(V3::One.and(V3::X), V3::X);
        assert_eq!(V3::One.or(V3::X), V3::One);
        assert_eq!(V3::Zero.or(V3::X), V3::X);
        assert_eq!(V3::X.not(), V3::X);
        assert_eq!(V3::One.xor(V3::One), V3::Zero);
        assert_eq!(V3::One.xor(V3::Zero), V3::One);
        assert_eq!(V3::Zero.xor(V3::Zero), V3::Zero);
        assert_eq!(V3::One.xor(V3::X), V3::X);
    }

    #[test]
    fn d_propagates_through_and_with_noncontrolling_side() {
        assert_eq!(eval5(GateKind::And, &[V5::D, V5::One]), V5::D);
        assert_eq!(eval5(GateKind::And, &[V5::D, V5::Zero]), V5::Zero);
        assert_eq!(eval5(GateKind::And, &[V5::D, V5::X]), V5::X);
        assert_eq!(eval5(GateKind::Nand, &[V5::D, V5::One]), V5::Dbar);
    }

    #[test]
    fn d_meets_dbar() {
        // D AND D̄: good = 1&0 = 0, faulty = 0&1 = 0 → Zero.
        assert_eq!(eval5(GateKind::And, &[V5::D, V5::Dbar]), V5::Zero);
        // D XOR D̄: good = 1^0 = 1, faulty = 0^1 = 1 → One.
        assert_eq!(eval5(GateKind::Xor, &[V5::D, V5::Dbar]), V5::One);
        // D XOR D: effects cancel.
        assert_eq!(eval5(GateKind::Xor, &[V5::D, V5::D]), V5::Zero);
    }

    #[test]
    fn not_and_components_roundtrip() {
        for v in [V5::Zero, V5::One, V5::X, V5::D, V5::Dbar] {
            let (g, f) = v.components();
            assert_eq!(V5::from_components(g, f), v);
            assert_eq!(v.not().not(), v);
        }
        assert_eq!(V5::D.not(), V5::Dbar);
        assert!(V5::D.is_fault_effect());
        assert!(!V5::X.is_fault_effect());
        assert_eq!(V5::D.good(), Some(true));
        assert_eq!(V5::D.faulty(), Some(false));
        assert_eq!(V5::X.good(), None);
    }

    #[test]
    fn eval5_consistent_with_boolean_eval_on_known_values() {
        use GateKind::*;
        for kind in [And, Nand, Or, Nor, Xor, Xnor] {
            for bits in 0..4u8 {
                let a = bits & 1 == 1;
                let b = bits & 2 == 2;
                let v = eval5(kind, &[V5::from_bool(a), V5::from_bool(b)]);
                assert_eq!(v.good(), Some(kind.eval(&[a, b])), "{kind:?} {a}{b}");
                assert_eq!(v.faulty(), Some(kind.eval(&[a, b])));
            }
        }
    }
}
