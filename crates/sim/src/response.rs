use incdx_netlist::Netlist;

use crate::packed::{tail_mask, PackedBits, PackedMatrix};

/// Comparison of a circuit's primary-output responses against a
/// specification's — the source of the paper's partition of the vector set
/// `V` into `V_err` (vectors with at least one erroneous PO) and `V_corr`.
///
/// # Example
///
/// ```
/// use incdx_netlist::parse_bench;
/// use incdx_sim::{PackedMatrix, Response, Simulator};
///
/// let good = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n")?;
/// let bad = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = OR(a, b)\n")?;
/// let mut pi = PackedMatrix::new(2, 4);
/// pi.row_mut(0)[0] = 0b0101;
/// pi.row_mut(1)[0] = 0b0011;
/// let mut sim = Simulator::new();
/// let spec = Response::capture(&good, &sim.run(&good, &pi));
/// let vals = sim.run(&bad, &pi);
/// let r = Response::compare(&bad, &vals, &spec);
/// // AND and OR differ exactly when a != b: vectors 1 and 2.
/// assert_eq!(r.failing_vectors().iter_ones().collect::<Vec<_>>(), vec![1, 2]);
/// # Ok::<(), incdx_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    po_values: PackedMatrix,
    failing: PackedBits,
    mismatch_bits: usize,
}

impl Response {
    /// Captures the primary-output rows of a full simulation matrix as a
    /// golden reference (no failing vectors).
    pub fn capture(netlist: &Netlist, vals: &PackedMatrix) -> Self {
        let nv = vals.num_vectors();
        let mut po_values = PackedMatrix::new(netlist.outputs().len(), nv);
        for (i, &o) in netlist.outputs().iter().enumerate() {
            po_values.row_mut(i).copy_from_slice(vals.row(o.index()));
        }
        Response {
            po_values,
            failing: PackedBits::new(nv),
            mismatch_bits: 0,
        }
    }

    /// Compares the PO rows of `vals` against the reference `spec`,
    /// computing the failing-vector mask (`V_err` membership) and the total
    /// erroneous `(vector, PO)` bit count.
    ///
    /// # Panics
    ///
    /// Panics if the output counts or vector counts disagree.
    pub fn compare(netlist: &Netlist, vals: &PackedMatrix, spec: &Response) -> Self {
        let nv = vals.num_vectors();
        assert_eq!(nv, spec.po_values.num_vectors(), "vector count mismatch");
        assert_eq!(
            netlist.outputs().len(),
            spec.po_values.rows(),
            "output count mismatch"
        );
        let mut po_values = PackedMatrix::new(netlist.outputs().len(), nv);
        let mut failing = PackedBits::new(nv);
        let mut mismatch_bits = 0usize;
        let last = nv.div_ceil(64).saturating_sub(1);
        let tail = tail_mask(nv);
        for (i, &o) in netlist.outputs().iter().enumerate() {
            po_values.row_mut(i).copy_from_slice(vals.row(o.index()));
            // Fused: accumulate the failing mask and count mismatches in
            // one pass, without a per-PO diff buffer.
            for (((w, f), &a), &b) in failing
                .words_mut()
                .iter_mut()
                .enumerate()
                .zip(po_values.row(i))
                .zip(spec.po_values.row(i))
            {
                let mut d = a ^ b;
                *f |= d;
                if w == last {
                    d &= tail;
                }
                mismatch_bits += d.count_ones() as usize;
            }
        }
        failing.mask_tail();
        Response {
            po_values,
            failing,
            mismatch_bits,
        }
    }

    /// The captured per-PO value matrix (row order = [`Netlist::outputs`]).
    pub fn po_values(&self) -> &PackedMatrix {
        &self.po_values
    }

    /// Mask of vectors with at least one erroneous PO (the paper's `V_err`
    /// membership mask).
    pub fn failing_vectors(&self) -> &PackedBits {
        &self.failing
    }

    /// Number of failing vectors, `|V_err|`.
    pub fn num_failing(&self) -> usize {
        self.failing.count_ones()
    }

    /// Total number of erroneous `(vector, PO)` bits.
    pub fn mismatch_bits(&self) -> usize {
        self.mismatch_bits
    }

    /// Does the circuit match the specification on every vector?
    pub fn matches(&self) -> bool {
        self.mismatch_bits == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::Simulator;
    use incdx_netlist::parse_bench;

    fn exhaustive_pi(n_inputs: usize) -> PackedMatrix {
        let nv = 1usize << n_inputs;
        let mut pi = PackedMatrix::new(n_inputs, nv);
        for v in 0..nv {
            for i in 0..n_inputs {
                pi.set(i, v, v >> i & 1 == 1);
            }
        }
        pi
    }

    #[test]
    fn identical_circuits_match() {
        let n = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n").unwrap();
        let pi = exhaustive_pi(2);
        let mut sim = Simulator::new();
        let vals = sim.run(&n, &pi);
        let spec = Response::capture(&n, &vals);
        let r = Response::compare(&n, &vals, &spec);
        assert!(r.matches());
        assert_eq!(r.num_failing(), 0);
        assert_eq!(r.mismatch_bits(), 0);
    }

    #[test]
    fn mismatch_counts_per_po_bit() {
        // Two POs; the second differs on exactly one vector.
        let good =
            parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(x)\nOUTPUT(y)\nx = AND(a, b)\ny = OR(a, b)\n")
                .unwrap();
        let bad =
            parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(x)\nOUTPUT(y)\nx = AND(a, b)\ny = XOR(a, b)\n")
                .unwrap();
        let pi = exhaustive_pi(2);
        let mut sim = Simulator::new();
        let spec = Response::capture(&good, &sim.run(&good, &pi));
        let r = Response::compare(&bad, &sim.run(&bad, &pi), &spec);
        // OR vs XOR differ only at a=b=1 (vector 3).
        assert_eq!(r.num_failing(), 1);
        assert_eq!(r.mismatch_bits(), 1);
        assert!(r.failing_vectors().get(3));
        assert!(!r.matches());
    }

    #[test]
    fn failing_vector_counted_once_even_with_multiple_bad_pos() {
        let good = parse_bench("INPUT(a)\nOUTPUT(x)\nOUTPUT(y)\nx = BUF(a)\ny = BUF(a)\n").unwrap();
        let bad = parse_bench("INPUT(a)\nOUTPUT(x)\nOUTPUT(y)\nx = NOT(a)\ny = NOT(a)\n").unwrap();
        let pi = exhaustive_pi(1);
        let mut sim = Simulator::new();
        let spec = Response::capture(&good, &sim.run(&good, &pi));
        let r = Response::compare(&bad, &sim.run(&bad, &pi), &spec);
        assert_eq!(r.num_failing(), 2); // both vectors fail...
        assert_eq!(r.mismatch_bits(), 4); // ...on both POs each
    }
}
