use rand::{Rng, RngExt};

/// A row of bit-packed logic values: bit `v` is the value of one line under
/// test vector `v`. Bits beyond [`Self::num_vectors`] are "tail" bits; the
/// counting operations mask them out, raw word access does not.
///
/// # Example
///
/// ```
/// use incdx_sim::PackedBits;
///
/// let mut b = PackedBits::new(70);
/// b.set(0, true);
/// b.set(69, true);
/// assert_eq!(b.count_ones(), 2);
/// assert!(b.get(69));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedBits {
    words: Vec<u64>,
    num_vectors: usize,
}

impl PackedBits {
    /// An all-zero row covering `num_vectors` vectors.
    pub fn new(num_vectors: usize) -> Self {
        PackedBits {
            words: vec![0; num_vectors.div_ceil(64)],
            num_vectors,
        }
    }

    /// An all-one row (tail bits included, as raw words).
    pub fn ones(num_vectors: usize) -> Self {
        PackedBits {
            words: vec![!0u64; num_vectors.div_ceil(64)],
            num_vectors,
        }
    }

    /// Number of vectors covered.
    #[inline]
    pub fn num_vectors(&self) -> usize {
        self.num_vectors
    }

    /// Number of 64-bit words backing the row.
    #[inline]
    pub fn num_words(&self) -> usize {
        self.words.len()
    }

    /// Raw word access.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Raw mutable word access.
    #[inline]
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// The value of vector `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= num_vectors`.
    #[inline]
    pub fn get(&self, v: usize) -> bool {
        assert!(v < self.num_vectors, "vector index {v} out of range");
        self.words[v / 64] >> (v % 64) & 1 == 1
    }

    /// Sets the value of vector `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= num_vectors`.
    #[inline]
    pub fn set(&mut self, v: usize, value: bool) {
        assert!(v < self.num_vectors, "vector index {v} out of range");
        let (w, b) = (v / 64, v % 64);
        if value {
            self.words[w] |= 1 << b;
        } else {
            self.words[w] &= !(1 << b);
        }
    }

    /// The mask clearing tail bits of the last word (`!0` if the row ends on
    /// a word boundary or is empty).
    #[inline]
    pub fn tail_mask(&self) -> u64 {
        tail_mask(self.num_vectors)
    }

    /// Population count over real (non-tail) bits.
    pub fn count_ones(&self) -> usize {
        count_ones_masked(&self.words, self.num_vectors)
    }

    /// Are all real bits zero?
    pub fn is_zero(&self) -> bool {
        self.count_ones() == 0
    }

    /// Iterates over the vector indices whose bit is set.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        // Hoisted out of the per-word closure: the last-word index and the
        // tail mask are loop invariants.
        let last = self.num_vectors.div_ceil(64).saturating_sub(1);
        let tail = tail_mask(self.num_vectors);
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            let mut w = if wi == last { w & tail } else { w };
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Fills the row with random values (tail bits zeroed).
    pub fn fill_random<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for w in &mut self.words {
            *w = rng.random();
        }
        self.mask_tail();
    }

    /// Zeroes the tail bits of the last word.
    pub fn mask_tail(&mut self) {
        if let Some(last) = self.words.last_mut() {
            *last &= tail_mask(self.num_vectors);
        }
    }

    /// In-place bitwise AND.
    ///
    /// # Panics
    ///
    /// Panics if the rows cover different vector counts.
    pub fn and_with(&mut self, other: &PackedBits) {
        assert_eq!(self.num_vectors, other.num_vectors, "vector count mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place bitwise OR.
    ///
    /// # Panics
    ///
    /// Panics if the rows cover different vector counts.
    pub fn or_with(&mut self, other: &PackedBits) {
        assert_eq!(self.num_vectors, other.num_vectors, "vector count mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place bitwise XOR.
    ///
    /// # Panics
    ///
    /// Panics if the rows cover different vector counts.
    pub fn xor_with(&mut self, other: &PackedBits) {
        assert_eq!(self.num_vectors, other.num_vectors, "vector count mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
    }

    /// In-place bitwise NOT over real bits (tail bits zeroed).
    pub fn not(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.mask_tail();
    }

    /// Fused masked popcount of `self ^ other` — the number of real bits on
    /// which the two rows disagree, without materialising the XOR.
    ///
    /// # Panics
    ///
    /// Panics if the rows cover different vector counts.
    pub fn xor_count_ones(&self, other: &PackedBits) -> usize {
        assert_eq!(self.num_vectors, other.num_vectors, "vector count mismatch");
        fused_count(&self.words, &other.words, self.num_vectors, |a, b| a ^ b)
    }

    /// Fused masked popcount of `self & other` — the number of real bits set
    /// in both rows, without materialising the AND.
    ///
    /// # Panics
    ///
    /// Panics if the rows cover different vector counts.
    pub fn and_count_ones(&self, other: &PackedBits) -> usize {
        assert_eq!(self.num_vectors, other.num_vectors, "vector count mismatch");
        fused_count(&self.words, &other.words, self.num_vectors, |a, b| a & b)
    }
}

#[inline]
fn fused_count(a: &[u64], b: &[u64], num_vectors: usize, op: impl Fn(u64, u64) -> u64) -> usize {
    let last = num_vectors.div_ceil(64).saturating_sub(1);
    let tail = tail_mask(num_vectors);
    a.iter()
        .zip(b)
        .enumerate()
        .map(|(i, (&x, &y))| {
            let w = if i == last { op(x, y) & tail } else { op(x, y) };
            w.count_ones() as usize
        })
        .sum()
}

/// Fused popcount of `(a ^ b) & mask` over raw word slices, one loop with no
/// temporaries. `mask` is expected to already have its tail bits cleared
/// (e.g. a failing-vector mask), so no vector count is needed.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn xor_masked_count_ones(a: &[u64], b: &[u64], mask: &[u64]) -> usize {
    assert_eq!(a.len(), b.len(), "word count mismatch");
    assert_eq!(a.len(), mask.len(), "mask word count mismatch");
    a.iter()
        .zip(b)
        .zip(mask)
        .map(|((&x, &y), &m)| ((x ^ y) & m).count_ones() as usize)
        .sum()
}

/// Mask selecting the real bits of the final word of a row covering
/// `num_vectors` vectors.
#[inline]
pub(crate) fn tail_mask(num_vectors: usize) -> u64 {
    match num_vectors % 64 {
        0 => !0u64,
        r => (1u64 << r) - 1,
    }
}

/// Popcount of `words` over the first `num_vectors` bits.
#[inline]
pub(crate) fn count_ones_masked(words: &[u64], num_vectors: usize) -> usize {
    let full = num_vectors / 64;
    let mut n: usize = words[..full].iter().map(|w| w.count_ones() as usize).sum();
    if !num_vectors.is_multiple_of(64) {
        n += (words[full] & tail_mask(num_vectors)).count_ones() as usize;
    }
    n
}

/// A dense `lines × vectors` matrix of packed logic values: one
/// [`PackedBits`]-shaped row per line, stored contiguously.
///
/// Row `i` of a simulation matrix holds the values of line `i` (the line
/// driven by gate `i`) under every test vector — the paper's combined
/// `V_corr`/`V_err` bit-lists, split by a failing-vector mask rather than
/// physically.
///
/// # Example
///
/// ```
/// use incdx_sim::PackedMatrix;
///
/// // Two lines over 70 vectors (two 64-bit words per row).
/// let mut m = PackedMatrix::new(2, 70);
/// assert_eq!(m.words_per_row(), 2);
/// m.set(0, 3, true);
/// m.row_mut(1)[1] = 0b10; // vector 65 of line 1
/// assert!(m.get(1, 65));
/// assert_eq!(m.to_bits(0).count_ones(), 1);
/// assert_eq!(m.column(3), vec![true, false]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedMatrix {
    data: Vec<u64>,
    rows: usize,
    words_per_row: usize,
    num_vectors: usize,
}

impl PackedMatrix {
    /// An all-zero matrix of `rows` lines over `num_vectors` vectors.
    pub fn new(rows: usize, num_vectors: usize) -> Self {
        let words_per_row = num_vectors.div_ceil(64);
        PackedMatrix {
            data: vec![0; rows * words_per_row],
            rows,
            words_per_row,
            num_vectors,
        }
    }

    /// A `rows × num_vectors` matrix of uniform random bits (tails zeroed).
    /// This is the workspace's random test-vector source (the paper's
    /// "6,000–10,000 random vectors").
    pub fn random<R: Rng + ?Sized>(rows: usize, num_vectors: usize, rng: &mut R) -> Self {
        let mut m = PackedMatrix::new(rows, num_vectors);
        let tail = tail_mask(num_vectors);
        let wpr = m.words_per_row;
        for r in 0..rows {
            let row = m.row_mut(r);
            for (i, w) in row.iter_mut().enumerate() {
                *w = rng.random();
                if i == wpr - 1 {
                    *w &= tail;
                }
            }
        }
        m
    }

    /// Number of rows (lines).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of vectors covered.
    #[inline]
    pub fn num_vectors(&self) -> usize {
        self.num_vectors
    }

    /// Number of 64-bit words per row.
    #[inline]
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// Read access to row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[inline]
    pub fn row(&self, r: usize) -> &[u64] {
        let s = r * self.words_per_row;
        &self.data[s..s + self.words_per_row]
    }

    /// Read access to row `r`, or `None` when `r` is out of range — the
    /// non-panicking form of [`PackedMatrix::row`] for callers validating
    /// matrices of unknown shape.
    #[inline]
    pub fn row_checked(&self, r: usize) -> Option<&[u64]> {
        let s = r.checked_mul(self.words_per_row)?;
        self.data.get(s..s + self.words_per_row)
    }

    /// Write access to row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [u64] {
        let s = r * self.words_per_row;
        &mut self.data[s..s + self.words_per_row]
    }

    /// The bit of line `r` under vector `v`.
    #[inline]
    pub fn get(&self, r: usize, v: usize) -> bool {
        assert!(v < self.num_vectors, "vector index {v} out of range");
        self.row(r)[v / 64] >> (v % 64) & 1 == 1
    }

    /// Sets the bit of line `r` under vector `v`.
    #[inline]
    pub fn set(&mut self, r: usize, v: usize, value: bool) {
        assert!(v < self.num_vectors, "vector index {v} out of range");
        let (w, b) = (v / 64, v % 64);
        if value {
            self.row_mut(r)[w] |= 1 << b;
        } else {
            self.row_mut(r)[w] &= !(1 << b);
        }
    }

    /// Copies row `r` out as a [`PackedBits`].
    pub fn to_bits(&self, r: usize) -> PackedBits {
        PackedBits {
            words: self.row(r).to_vec(),
            num_vectors: self.num_vectors,
        }
    }

    /// Overwrites row `r` from a [`PackedBits`].
    ///
    /// # Panics
    ///
    /// Panics if vector counts differ.
    pub fn set_row(&mut self, r: usize, bits: &PackedBits) {
        assert_eq!(bits.num_vectors, self.num_vectors, "vector count mismatch");
        self.row_mut(r).copy_from_slice(&bits.words);
    }

    /// Extracts the scalar input assignment of vector `v` over the first
    /// `rows` rows (used to print counter-examples).
    pub fn column(&self, v: usize) -> Vec<bool> {
        (0..self.rows).map(|r| self.get(r, v)).collect()
    }

    /// Grows the matrix to `new_rows` rows, appending zero-filled rows.
    /// Existing rows keep their index and contents (used when a correction
    /// appends gates to a netlist whose matrix is being reused).
    ///
    /// # Panics
    ///
    /// Panics if `new_rows < rows()`.
    pub fn grow_rows(&mut self, new_rows: usize) {
        assert!(new_rows >= self.rows, "grow_rows cannot shrink");
        self.data.resize(new_rows * self.words_per_row, 0);
        self.rows = new_rows;
    }
}

impl From<Vec<u64>> for PackedBits {
    /// Wraps raw words; the vector count is `64 * words.len()`.
    fn from(words: Vec<u64>) -> Self {
        let num_vectors = words.len() * 64;
        PackedBits { words, num_vectors }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bits_set_get_count() {
        let mut b = PackedBits::new(130);
        b.set(0, true);
        b.set(64, true);
        b.set(129, true);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1));
        assert_eq!(b.count_ones(), 3);
        b.set(64, false);
        assert_eq!(b.count_ones(), 2);
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![0, 129]);
    }

    #[test]
    fn row_checked_is_row_in_bounds_and_none_past_the_end() {
        let mut m = PackedMatrix::new(3, 70);
        m.row_mut(2)[1] = 0b10;
        assert_eq!(m.row_checked(2), Some(m.row(2)));
        assert_eq!(m.row_checked(0), Some(m.row(0)));
        assert!(m.row_checked(3).is_none());
        assert!(m.row_checked(usize::MAX).is_none());
    }

    #[test]
    fn tail_bits_do_not_count() {
        let mut b = PackedBits::new(3);
        b.words_mut()[0] = !0; // junk beyond bit 2
        assert_eq!(b.count_ones(), 3);
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![0, 1, 2]);
        b.not();
        assert_eq!(b.count_ones(), 0);
        assert!(b.is_zero());
    }

    #[test]
    fn tail_mask_values() {
        assert_eq!(tail_mask(64), !0);
        assert_eq!(tail_mask(0), !0);
        assert_eq!(tail_mask(1), 1);
        assert_eq!(tail_mask(63), (1u64 << 63) - 1);
    }

    #[test]
    fn bitwise_ops() {
        let mut a = PackedBits::new(8);
        let mut b = PackedBits::new(8);
        a.words_mut()[0] = 0b1100;
        b.words_mut()[0] = 0b1010;
        let mut x = a.clone();
        x.xor_with(&b);
        assert_eq!(x.words()[0], 0b0110);
        a.and_with(&b);
        assert_eq!(a.words()[0], 0b1000);
        let mut o = PackedBits::new(8);
        o.or_with(&b);
        assert_eq!(o.words()[0], 0b1010);
    }

    #[test]
    fn matrix_rows_are_independent() {
        let mut m = PackedMatrix::new(3, 100);
        m.set(0, 99, true);
        m.set(2, 0, true);
        assert!(m.get(0, 99));
        assert!(!m.get(1, 99));
        assert!(m.get(2, 0));
        assert_eq!(m.to_bits(0).count_ones(), 1);
        assert_eq!(m.column(0), vec![false, false, true]);
    }

    #[test]
    fn matrix_random_is_seeded_and_tail_masked() {
        let mut rng = StdRng::seed_from_u64(7);
        let m1 = PackedMatrix::random(4, 70, &mut rng);
        let mut rng = StdRng::seed_from_u64(7);
        let m2 = PackedMatrix::random(4, 70, &mut rng);
        assert_eq!(m1, m2);
        for r in 0..4 {
            assert_eq!(m1.row(r)[1] & !tail_mask(70), 0, "tail must be zero");
        }
    }

    #[test]
    fn set_row_roundtrip() {
        let mut m = PackedMatrix::new(2, 65);
        let mut b = PackedBits::new(65);
        b.set(64, true);
        m.set_row(1, &b);
        assert!(m.get(1, 64));
        assert_eq!(m.to_bits(1), b);
    }

    #[test]
    fn ones_row() {
        let b = PackedBits::ones(5);
        assert_eq!(b.count_ones(), 5);
    }

    #[test]
    fn iter_ones_on_empty_row() {
        // Regression: the last-word index `nv.div_ceil(64).saturating_sub(1)`
        // used to be recomputed inside the per-word closure; for
        // `num_vectors == 0` it must still yield an empty iteration.
        let b = PackedBits::new(0);
        assert_eq!(b.num_words(), 0);
        assert_eq!(b.iter_ones().count(), 0);
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn fused_counts_match_materialised_ops() {
        let mut rng = StdRng::seed_from_u64(11);
        for nv in [1, 63, 64, 65, 130] {
            let mut a = PackedBits::new(nv);
            let mut b = PackedBits::new(nv);
            a.fill_random(&mut rng);
            b.fill_random(&mut rng);
            // Poison the tails: fused counts must still mask them out.
            if let Some(w) = a.words_mut().last_mut() {
                *w |= !tail_mask(nv);
            }
            let mut x = a.clone();
            x.xor_with(&b);
            assert_eq!(a.xor_count_ones(&b), x.count_ones(), "xor nv={nv}");
            let mut n = a.clone();
            n.and_with(&b);
            assert_eq!(a.and_count_ones(&b), n.count_ones(), "and nv={nv}");
        }
    }

    #[test]
    fn slice_level_fused_count() {
        let a = [0b1111u64, 0b0011];
        let b = [0b1010u64, 0b0000];
        let m = [0b1100u64, 0b0001];
        // (a^b)&m = [0b0100, 0b0001] -> 2 ones.
        assert_eq!(xor_masked_count_ones(&a, &b, &m), 2);
    }

    #[test]
    fn grow_rows_preserves_existing_rows() {
        let mut m = PackedMatrix::new(2, 70);
        m.set(0, 69, true);
        m.set(1, 3, true);
        m.grow_rows(4);
        assert_eq!(m.rows(), 4);
        assert!(m.get(0, 69));
        assert!(m.get(1, 3));
        assert_eq!(m.to_bits(2).count_ones(), 0);
        assert_eq!(m.to_bits(3).count_ones(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        PackedBits::new(4).get(4);
    }
}
