//! Property tests of the simulation layer: packed ops against a
//! `Vec<bool>` model, packed simulation against scalar evaluation, and
//! the response bookkeeping against naive counting.

use incdx_gen::{random_dag, RandomDagConfig};
use incdx_netlist::GateKind;
use incdx_sim::{
    xor_masked_count_ones, PackedBits, PackedMatrix, Response, Simulator, SparseMask, BLOCK_WORDS,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn model_of(bits: &PackedBits) -> Vec<bool> {
    (0..bits.num_vectors()).map(|v| bits.get(v)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn packed_bits_ops_match_bool_model(
        a in prop::collection::vec(prop::bool::ANY, 1..150),
        b_seed in 0u64..1000,
    ) {
        let nv = a.len();
        let mut pa = PackedBits::new(nv);
        for (v, &bit) in a.iter().enumerate() {
            pa.set(v, bit);
        }
        let mut rng = StdRng::seed_from_u64(b_seed);
        let mut pb = PackedBits::new(nv);
        pb.fill_random(&mut rng);
        let b = model_of(&pb);

        let mut x = pa.clone();
        x.xor_with(&pb);
        prop_assert_eq!(model_of(&x), a.iter().zip(&b).map(|(&p, &q)| p ^ q).collect::<Vec<_>>());
        let mut y = pa.clone();
        y.and_with(&pb);
        prop_assert_eq!(model_of(&y), a.iter().zip(&b).map(|(&p, &q)| p & q).collect::<Vec<_>>());
        let mut z = pa.clone();
        z.or_with(&pb);
        prop_assert_eq!(model_of(&z), a.iter().zip(&b).map(|(&p, &q)| p | q).collect::<Vec<_>>());
        let mut n = pa.clone();
        n.not();
        prop_assert_eq!(model_of(&n), a.iter().map(|&p| !p).collect::<Vec<_>>());
        prop_assert_eq!(pa.count_ones(), a.iter().filter(|&&p| p).count());
        prop_assert_eq!(
            pa.iter_ones().collect::<Vec<_>>(),
            a.iter().enumerate().filter(|(_, &p)| p).map(|(i, _)| i).collect::<Vec<_>>()
        );
    }

    #[test]
    fn packed_simulation_matches_scalar(seed in 0u64..300, nv in 1usize..130) {
        let n = random_dag(&RandomDagConfig {
            inputs: 6,
            gates: 40,
            outputs: 5,
            max_fanin: 3,
            xor_fraction: 0.15,
            window: 16,
        }, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFFFF);
        let pi = PackedMatrix::random(n.inputs().len(), nv, &mut rng);
        let mut sim = Simulator::new();
        let vals = sim.run(&n, &pi);
        // Check boundary vectors and a middle one.
        for v in [0, nv / 2, nv - 1] {
            let scalar: Vec<bool> = (0..n.inputs().len()).map(|i| pi.get(i, v)).collect();
            let mut model = vec![false; n.len()];
            for (i, &p) in n.inputs().iter().enumerate() {
                model[p.index()] = scalar[i];
            }
            for &id in n.topo_order() {
                let g = n.gate(id);
                if g.kind() == GateKind::Input {
                    continue;
                }
                let f: Vec<bool> = g.fanins().iter().map(|&x| model[x.index()]).collect();
                model[id.index()] = g.kind().eval(&f);
            }
            for id in n.ids() {
                prop_assert_eq!(vals.get(id.index(), v), model[id.index()], "line {} vec {}", id, v);
            }
        }
    }

    #[test]
    fn response_counts_match_naive(seed in 0u64..300) {
        let golden = random_dag(&RandomDagConfig::default(), seed);
        let faulty = random_dag(&RandomDagConfig::default(), seed ^ 1);
        // Same shape: default config is fixed so I/O counts match.
        let mut rng = StdRng::seed_from_u64(seed);
        let nv = 100;
        let pi = PackedMatrix::random(golden.inputs().len(), nv, &mut rng);
        let mut sim = Simulator::new();
        let spec = Response::capture(&golden, &sim.run(&golden, &pi));
        if faulty.outputs().len() != golden.outputs().len() {
            return Ok(());
        }
        let vals = sim.run(&faulty, &pi);
        let resp = Response::compare(&faulty, &vals, &spec);
        // Naive recount.
        let mut failing = 0usize;
        let mut bits = 0usize;
        for v in 0..nv {
            let mut any = false;
            for (po_idx, &po) in faulty.outputs().iter().enumerate() {
                let got = vals.get(po.index(), v);
                let want = spec.po_values().get(po_idx, v);
                if got != want {
                    any = true;
                    bits += 1;
                }
            }
            if any {
                failing += 1;
            }
        }
        prop_assert_eq!(resp.num_failing(), failing);
        prop_assert_eq!(resp.mismatch_bits(), bits);
        prop_assert_eq!(resp.matches(), bits == 0);
    }

    #[test]
    fn cone_resimulation_is_localized(seed in 0u64..200, stem_pick in 0usize..1000) {
        let n = random_dag(&RandomDagConfig {
            inputs: 6,
            gates: 50,
            outputs: 5,
            max_fanin: 3,
            xor_fraction: 0.1,
            window: 16,
        }, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let pi = PackedMatrix::random(n.inputs().len(), 64, &mut rng);
        let mut sim = Simulator::new();
        let base = sim.run(&n, &pi);
        let stem = incdx_netlist::GateId::from_index(stem_pick % n.len());
        let cone = n.fanout_cone_sorted(stem);
        let mut vals = base.clone();
        for w in vals.row_mut(stem.index()) {
            *w = !*w;
        }
        sim.run_cone(&n, &mut vals, &cone);
        // Lines outside the cone are untouched.
        let cone_set = n.fanout_cone(stem);
        for id in n.ids() {
            if !cone_set.contains(id.index()) {
                prop_assert_eq!(vals.row(id.index()), base.row(id.index()), "line {}", id);
            }
        }
    }

    /// The sparse kernel's equivalence contract on masks: block-skipping
    /// fused popcounts equal the dense full-width ones for every width
    /// (word-boundary and partial-tail alike) and density.
    #[test]
    fn sparse_mask_counts_match_dense(
        nv in 1usize..1400,
        density in 0.0f64..0.6,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bits = PackedBits::new(nv);
        for v in 0..nv {
            if rng.random::<f64>() < density {
                bits.set(v, true);
            }
        }
        let mask = SparseMask::from_bits(&bits);
        prop_assert!(mask.verify());
        let nw = nv.div_ceil(64);
        let a: Vec<u64> = (0..nw).map(|_| rng.random()).collect();
        let b: Vec<u64> = (0..nw).map(|_| rng.random()).collect();
        prop_assert_eq!(
            mask.xor_count_ones(&a, &b),
            xor_masked_count_ones(&a, &b, mask.words())
        );
        let dense_and: usize = a
            .iter()
            .zip(mask.words())
            .map(|(&x, &m)| (x & m).count_ones() as usize)
            .sum();
        prop_assert_eq!(mask.and_count_ones(&a), dense_and);
        // The occupied ranges cover exactly the occupied blocks.
        let covered: usize = mask.occupied_ranges().iter().map(|&(lo, hi)| hi - lo).sum();
        let occupied = mask.summary().occupied_blocks();
        prop_assert!(covered >= occupied * 1.min(BLOCK_WORDS));
        prop_assert!(covered <= occupied * BLOCK_WORDS);
    }

    /// The sparse block-propagation walk is bit-identical to the dense
    /// change-bounded walk on random DAGs, random plantings included.
    #[test]
    fn sparse_cone_events_match_dense(
        seed in 0u64..200,
        stem_pick in 0usize..1000,
        nv in 300usize..700,
        flip_word in 0usize..4,
    ) {
        let n = random_dag(&RandomDagConfig {
            inputs: 6,
            gates: 50,
            outputs: 5,
            max_fanin: 3,
            xor_fraction: 0.1,
            window: 16,
        }, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let pi = PackedMatrix::random(n.inputs().len(), nv, &mut rng);
        let mut dense = Simulator::new();
        let mut sparse = Simulator::new();
        sparse.set_sparse(true);
        let base = dense.run(&n, &pi);
        let stem = incdx_netlist::GateId::from_index(stem_pick % n.len());
        let cone = n.fanout_cone_sorted(stem);
        let mut a = base.clone();
        let wpr = a.words_per_row();
        a.row_mut(stem.index())[flip_word % wpr] ^= 0b1101;
        let mut b = a.clone();
        let ca = dense.run_cone_events(&n, &mut a, &cone);
        let cb = sparse.run_cone_events(&n, &mut b, &cone);
        prop_assert_eq!(ca, cb);
        for id in n.ids() {
            prop_assert_eq!(a.row(id.index()), b.row(id.index()), "line {}", id);
        }
        prop_assert!(sparse.words_simulated() <= dense.words_simulated());
    }
}
