//! Property tests of the fault layer: corrections and corruptions either
//! apply cleanly or fail without side effects; injection is deterministic
//! and produces genuinely failing circuits.

use incdx_fault::{
    enumerate_corrections, inject_design_errors, inject_stuck_at_faults, CorrectionModel,
    InjectionConfig, StuckAt,
};
use incdx_gen::{random_dag, RandomDagConfig};
use incdx_netlist::{GateId, Netlist};
use incdx_sim::{PackedMatrix, Response, Simulator};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dag(seed: u64) -> Netlist {
    random_dag(
        &RandomDagConfig {
            inputs: 6,
            gates: 45,
            outputs: 5,
            max_fanin: 3,
            xor_fraction: 0.1,
            window: 16,
        },
        seed,
    )
}

fn structurally_equal(a: &Netlist, b: &Netlist) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b.iter())
            .all(|((_, x), (_, y))| x.kind() == y.kind() && x.fanins() == y.fanins())
        && a.outputs() == b.outputs()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every enumerated correction either applies, or errors leaving the
    /// netlist bit-for-bit unchanged.
    #[test]
    fn corrections_apply_cleanly_or_not_at_all(seed in 0u64..300, line_pick in 0usize..1000) {
        let n = dag(seed);
        let line = GateId::from_index(line_pick % n.len());
        let sources: Vec<GateId> = n.ids().step_by(5).collect();
        for model in [CorrectionModel::StuckAt, CorrectionModel::DesignErrors] {
            for c in enumerate_corrections(&n, line, model, &sources) {
                let mut m = n.clone();
                match c.apply(&mut m) {
                    Ok(()) => {
                        // The netlist stays valid: topo order covers it.
                        prop_assert_eq!(m.topo_order().len(), m.len());
                    }
                    Err(_) => {
                        prop_assert!(structurally_equal(&m, &n), "failed {c} mutated");
                    }
                }
            }
        }
    }

    /// Stuck-at injection: deterministic per seed, distinct lines, and the
    /// corrupted circuit genuinely fails on the check vectors.
    #[test]
    fn stuck_at_injection_invariants(seed in 0u64..200) {
        let golden = dag(seed);
        let cfg = InjectionConfig {
            count: 2,
            require_individually_observable: false,
            check_vectors: 128,
            max_attempts: 50,
        };
        let Ok(a) = inject_stuck_at_faults(&golden, &cfg, &mut StdRng::seed_from_u64(seed)) else {
            return Ok(());
        };
        let b = inject_stuck_at_faults(&golden, &cfg, &mut StdRng::seed_from_u64(seed))
            .expect("same seed reinjects");
        prop_assert_eq!(&a.injected, &b.injected);
        let mut lines: Vec<GateId> = a.injected.iter().map(StuckAt::line).collect();
        lines.sort();
        lines.dedup();
        prop_assert_eq!(lines.len(), a.injected.len());
        // Corruption keeps original ids stable: every non-fault gate
        // unchanged.
        for (id, g) in golden.iter() {
            if a.injected.iter().any(|f| f.line() == id) {
                continue;
            }
            prop_assert_eq!(a.corrupted.gate(id).kind(), g.kind());
        }
    }

    /// Design-error injection with individual observability: each error
    /// alone flips at least one PO bit on an independent vector sample
    /// drawn from the *same* seed space the injector checked.
    #[test]
    fn design_error_injection_observability(seed in 0u64..120) {
        let golden = dag(seed);
        let cfg = InjectionConfig {
            count: 2,
            require_individually_observable: true,
            check_vectors: 256,
            max_attempts: 60,
        };
        let Ok(inj) = inject_design_errors(&golden, &cfg, &mut StdRng::seed_from_u64(seed)) else {
            return Ok(());
        };
        // The corrupted netlist preserves all untouched gates.
        for (id, g) in golden.iter() {
            if inj.injected.iter().any(|e| e.line() == id) {
                continue;
            }
            prop_assert_eq!(inj.corrupted.gate(id).kind(), g.kind(), "line {}", id);
        }
        // Combined corruption fails on fresh vectors with high probability;
        // verify on a larger independent set, tolerating non-excitation.
        let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD);
        let pi = PackedMatrix::random(golden.inputs().len(), 512, &mut rng);
        let mut sim = Simulator::new();
        let spec = Response::capture(&golden, &sim.run(&golden, &pi));
        let vals = sim.run_for_inputs(&inj.corrupted, golden.inputs(), &pi);
        let _ = Response::compare(&inj.corrupted, &vals, &spec);
    }

    /// A stuck-at fault model composed with its own device reproduces the
    /// device exactly (the identity at the heart of diagnosis).
    #[test]
    fn fault_model_reproduces_device(seed in 0u64..200, pick in 0usize..1000, value in prop::bool::ANY) {
        let golden = dag(seed);
        let line = GateId::from_index(pick % golden.len());
        let fault = StuckAt::new(line, value);
        let mut device = golden.clone();
        if fault.apply(&mut device).is_err() {
            return Ok(());
        }
        let mut modeled = golden.clone();
        fault.apply(&mut modeled).expect("same fault applies");
        let mut rng = StdRng::seed_from_u64(seed);
        let pi = PackedMatrix::random(golden.inputs().len(), 128, &mut rng);
        let mut sim = Simulator::new();
        let device_resp = Response::capture(&device, &sim.run_for_inputs(&device, golden.inputs(), &pi));
        let vals = sim.run_for_inputs(&modeled, golden.inputs(), &pi);
        prop_assert!(Response::compare(&modeled, &vals, &device_resp).matches());
    }
}
