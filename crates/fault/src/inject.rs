//! Random multi-fault / multi-error injection.
//!
//! Reproduces the experimental setup of the paper: "The locations of the
//! faults and errors were selected at random. The type of stuck-at faults
//! was also selected at random while the types of design errors were
//! selected according to the distribution presented in \[2\]" (Campenhout,
//! Hayes and Mudge). For the DEDC experiments "all errors considered are
//! observable"; for stuck-at faults masking is allowed (and measured).

use std::error::Error;
use std::fmt;

use incdx_netlist::{GateId, GateKind, Netlist};
use incdx_sim::{PackedMatrix, Response, Simulator};
use rand::rngs::StdRng;
use rand::RngExt;

use crate::error_model::{DesignError, DesignErrorKind};
use crate::stuck_at::StuckAt;

/// Approximation of the Campenhout et al. design-error type distribution
/// (see DESIGN.md §3 for the substitution note): `(weight, type)` pairs
/// drawn proportionally.
const ERROR_TYPE_WEIGHTS: &[(u32, &str)] = &[
    (35, "wrong-wire"),
    (15, "gate-repl"),
    (15, "missing-wire"),
    (10, "extra-wire"),
    (10, "extra-in-inv"),
    (5, "extra-inv"),
    (5, "extra-gate"),
    (5, "missing-gate"),
];

/// Parameters for the injectors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectionConfig {
    /// How many faults/errors to inject (distinct lines).
    pub count: usize,
    /// Require each injected error to be *individually* observable on the
    /// check vectors (the paper's DEDC setting). The combined corruption
    /// must always produce at least one failing vector.
    pub require_individually_observable: bool,
    /// Number of random vectors used for the observability checks.
    pub check_vectors: usize,
    /// Give up after this many whole re-draws.
    pub max_attempts: usize,
}

impl Default for InjectionConfig {
    /// Three observable errors checked on 512 vectors.
    fn default() -> Self {
        InjectionConfig {
            count: 3,
            require_individually_observable: true,
            check_vectors: 512,
            max_attempts: 200,
        }
    }
}

/// A successful injection: the corrupted netlist plus what was injected.
#[derive(Debug, Clone)]
pub struct Injection<T> {
    /// The corrupted netlist (gate ids of the original are stable).
    pub corrupted: Netlist,
    /// The injected faults/errors, in application order.
    pub injected: Vec<T>,
}

/// Error returned when no acceptable injection was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectError {
    attempts: usize,
    what: &'static str,
}

impl fmt::Display for InjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "failed to inject {} satisfying the observability requirements after {} attempts",
            self.what, self.attempts
        )
    }
}

impl Error for InjectError {}

/// Lines eligible as error sites: logic gates only (not PIs, constants or
/// DFFs).
fn logic_lines(netlist: &Netlist) -> Vec<GateId> {
    netlist
        .iter()
        .filter(|(_, g)| g.kind().is_logic())
        .map(|(id, _)| id)
        .collect()
}

/// Lines eligible as stuck-at sites: every driven line including PIs.
fn stuck_at_lines(netlist: &Netlist) -> Vec<GateId> {
    netlist
        .iter()
        .filter(|(_, g)| {
            !matches!(
                g.kind(),
                GateKind::Const0 | GateKind::Const1 | GateKind::Dff
            )
        })
        .map(|(id, _)| id)
        .collect()
}

fn observable(
    corrupted: &Netlist,
    base_inputs: &[GateId],
    pi: &PackedMatrix,
    spec: &Response,
) -> bool {
    let mut sim = Simulator::new();
    let vals = sim.run_for_inputs(corrupted, base_inputs, pi);
    !Response::compare(corrupted, &vals, spec).matches()
}

/// Injects `config.count` random stuck-at faults on distinct lines of a
/// clone of `golden`. Polarities are uniform. The combined faulty circuit
/// is required to produce at least one failing vector; individual fault
/// observability follows `config.require_individually_observable` (the
/// Table 1 experiments leave it off, allowing fault masking).
///
/// # Errors
///
/// Returns [`InjectError`] after `config.max_attempts` failed re-draws.
///
/// # Panics
///
/// Panics if the netlist is sequential (scan-convert first) or has fewer
/// eligible lines than `config.count`.
pub fn inject_stuck_at_faults(
    golden: &Netlist,
    config: &InjectionConfig,
    rng: &mut StdRng,
) -> Result<Injection<StuckAt>, InjectError> {
    assert!(
        golden.is_combinational(),
        "scan-convert sequential circuits first"
    );
    let sites = stuck_at_lines(golden);
    assert!(
        sites.len() >= config.count,
        "not enough lines ({}) for {} faults",
        sites.len(),
        config.count
    );
    let pi = PackedMatrix::random(golden.inputs().len(), config.check_vectors, rng);
    let mut sim = Simulator::new();
    let spec = Response::capture(golden, &sim.run(golden, &pi));
    for _ in 0..config.max_attempts {
        let mut lines = Vec::with_capacity(config.count);
        while lines.len() < config.count {
            let pick = sites[rng.random_range(0..sites.len())];
            if !lines.contains(&pick) {
                lines.push(pick);
            }
        }
        let faults: Vec<StuckAt> = lines
            .into_iter()
            .map(|l| StuckAt::new(l, rng.random_bool(0.5)))
            .collect();
        let mut corrupted = golden.clone();
        let mut ok = true;
        for f in &faults {
            if f.apply(&mut corrupted).is_err() {
                ok = false;
                break;
            }
        }
        if !ok || !observable(&corrupted, golden.inputs(), &pi, &spec) {
            continue;
        }
        if config.require_individually_observable {
            let all_individual = faults.iter().all(|f| {
                let mut single = golden.clone();
                f.apply(&mut single).is_ok() && observable(&single, golden.inputs(), &pi, &spec)
            });
            if !all_individual {
                continue;
            }
        }
        return Ok(Injection {
            corrupted,
            injected: faults,
        });
    }
    Err(InjectError {
        attempts: config.max_attempts,
        what: "stuck-at faults",
    })
}

/// Draws one design error for `line` of `netlist` per the type
/// distribution. Returns `None` when the drawn type is inapplicable at
/// this line (caller re-draws).
fn draw_error(netlist: &Netlist, line: GateId, rng: &mut StdRng) -> Option<DesignError> {
    let total: u32 = ERROR_TYPE_WEIGHTS.iter().map(|(w, _)| w).sum();
    let mut t = rng.random_range(0..total);
    let mut chosen = ERROR_TYPE_WEIGHTS[0].1;
    for &(w, name) in ERROR_TYPE_WEIGHTS {
        if t < w {
            chosen = name;
            break;
        }
        t -= w;
    }
    let gate = netlist.gate(line);
    let kind = gate.kind();
    let nf = gate.fanins().len();
    let rand_port = |rng: &mut StdRng| rng.random_range(0..nf);
    // Wire sources: any line outside this gate's fanout cone (cycle guard
    // is re-checked by `apply`, this just raises the hit rate).
    let rand_source = |rng: &mut StdRng| GateId::from_index(rng.random_range(0..netlist.len()));
    let k = match chosen {
        "wrong-wire" if nf > 0 => DesignErrorKind::WrongInputWire {
            port: rand_port(rng),
            source: rand_source(rng),
        },
        "gate-repl" => {
            let choices: Vec<GateKind> = GateKind::LOGIC_KINDS
                .iter()
                .copied()
                .filter(|&k| k != kind && nf >= k.arity().0 && nf <= k.arity().1)
                .collect();
            if choices.is_empty() {
                return None;
            }
            DesignErrorKind::GateReplacement {
                wrong: choices[rng.random_range(0..choices.len())],
            }
        }
        "missing-wire" if nf >= 2 => DesignErrorKind::MissingInputWire {
            port: rand_port(rng),
        },
        "extra-wire" => DesignErrorKind::ExtraInputWire {
            source: rand_source(rng),
        },
        "extra-in-inv" if nf > 0 => DesignErrorKind::ExtraInputInverter {
            port: rand_port(rng),
        },
        "extra-inv" => DesignErrorKind::ExtraOutputInverter,
        "extra-gate" if nf > 0 => DesignErrorKind::ExtraGate {
            port: rand_port(rng),
            other: rand_source(rng),
            kind: [GateKind::And, GateKind::Or, GateKind::Nand, GateKind::Nor]
                [rng.random_range(0..4)],
        },
        // Abadir's "missing (simple) gate": only 2-input gates, so the
        // loss is repairable by a single gate-insertion correction.
        "missing-gate" if nf == 2 => DesignErrorKind::MissingGate {
            port: rand_port(rng),
        },
        _ => return None,
    };
    Some(DesignError::new(line, k))
}

/// Injects `config.count` design errors on distinct lines of a clone of
/// `golden`, types drawn per the Campenhout distribution. With
/// `require_individually_observable` (the paper's DEDC setting) every
/// error alone must flip at least one PO bit on the check vectors.
///
/// # Errors
///
/// Returns [`InjectError`] after `config.max_attempts` failed re-draws.
///
/// # Panics
///
/// Panics if the netlist is sequential or has fewer logic gates than
/// `config.count`.
pub fn inject_design_errors(
    golden: &Netlist,
    config: &InjectionConfig,
    rng: &mut StdRng,
) -> Result<Injection<DesignError>, InjectError> {
    assert!(
        golden.is_combinational(),
        "scan-convert sequential circuits first"
    );
    let sites = logic_lines(golden);
    assert!(
        sites.len() >= config.count,
        "not enough logic gates ({}) for {} errors",
        sites.len(),
        config.count
    );
    let pi = PackedMatrix::random(golden.inputs().len(), config.check_vectors, rng);
    let mut sim = Simulator::new();
    let spec = Response::capture(golden, &sim.run(golden, &pi));
    'attempt: for _ in 0..config.max_attempts {
        let mut lines = Vec::with_capacity(config.count);
        while lines.len() < config.count {
            let pick = sites[rng.random_range(0..sites.len())];
            if !lines.contains(&pick) {
                lines.push(pick);
            }
        }
        let mut corrupted = golden.clone();
        let mut errors = Vec::with_capacity(config.count);
        for &line in &lines {
            // Up to a few draws per line before abandoning the attempt.
            let mut applied = false;
            for _ in 0..8 {
                let Some(err) = draw_error(&corrupted, line, rng) else {
                    continue;
                };
                if config.require_individually_observable {
                    let mut single = golden.clone();
                    if err.apply(&mut single).is_err()
                        || !observable(&single, golden.inputs(), &pi, &spec)
                    {
                        continue;
                    }
                }
                if err.apply(&mut corrupted).is_ok() {
                    errors.push(err);
                    applied = true;
                    break;
                }
            }
            if !applied {
                continue 'attempt;
            }
        }
        if observable(&corrupted, golden.inputs(), &pi, &spec) {
            return Ok(Injection {
                corrupted,
                injected: errors,
            });
        }
    }
    Err(InjectError {
        attempts: config.max_attempts,
        what: "design errors",
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdx_gen::generate;
    use rand::SeedableRng;

    #[test]
    fn stuck_at_injection_produces_failing_circuit() {
        let golden = generate("c880a").unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = InjectionConfig {
            count: 3,
            require_individually_observable: false,
            check_vectors: 256,
            max_attempts: 100,
        };
        let inj = inject_stuck_at_faults(&golden, &cfg, &mut rng).unwrap();
        assert_eq!(inj.injected.len(), 3);
        let lines: Vec<GateId> = inj.injected.iter().map(|f| f.line()).collect();
        let mut dedup = lines.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 3, "distinct lines");
        // Corrupted circuit really fails.
        let mut rng2 = StdRng::seed_from_u64(99);
        let pi = PackedMatrix::random(golden.inputs().len(), 512, &mut rng2);
        let mut sim = Simulator::new();
        let spec = Response::capture(&golden, &sim.run(&golden, &pi));
        let vals = sim.run(&inj.corrupted, &pi);
        // (On fresh vectors failure is extremely likely but not guaranteed;
        // the injector guarantees it on its own check vectors.)
        let _ = Response::compare(&inj.corrupted, &vals, &spec);
    }

    #[test]
    fn design_error_injection_is_individually_observable() {
        let golden = generate("c432a").unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = InjectionConfig::default();
        let inj = inject_design_errors(&golden, &cfg, &mut rng).unwrap();
        assert_eq!(inj.injected.len(), 3);
        // Re-verify each error's observability independently.
        let mut rng2 = StdRng::seed_from_u64(7);
        let pi = PackedMatrix::random(golden.inputs().len(), 512, &mut rng2);
        let mut sim = Simulator::new();
        let spec = Response::capture(&golden, &sim.run(&golden, &pi));
        for err in &inj.injected {
            let mut single = golden.clone();
            err.apply(&mut single).unwrap();
            let vals = sim.run(&single, &pi);
            assert!(
                !Response::compare(&single, &vals, &spec).matches(),
                "{err} must be observable"
            );
        }
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let golden = generate("c17").unwrap();
        let cfg = InjectionConfig {
            count: 2,
            require_individually_observable: true,
            check_vectors: 32,
            max_attempts: 500,
        };
        let a = inject_design_errors(&golden, &cfg, &mut StdRng::seed_from_u64(3)).unwrap();
        let b = inject_design_errors(&golden, &cfg, &mut StdRng::seed_from_u64(3)).unwrap();
        assert_eq!(a.injected, b.injected);
    }

    #[test]
    fn injector_reports_exhaustion() {
        let golden = generate("c17").unwrap();
        let cfg = InjectionConfig {
            count: 2,
            require_individually_observable: true,
            check_vectors: 32,
            max_attempts: 0,
        };
        let err = inject_design_errors(&golden, &cfg, &mut StdRng::seed_from_u64(3)).unwrap_err();
        assert!(err.to_string().contains("0 attempts"));
    }
}
