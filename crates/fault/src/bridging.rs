//! Bridging (short) faults — the "other types of physical faults" the
//! paper's conclusion targets: "the algorithm ... can be adapted to other
//! faults by adopting a suitable fault model in the correction stage."
//!
//! A two-line bridge shorts lines `a` and `b`; under the classic wired
//! models both lines' readers observe `AND(a, b)` (wired-AND) or
//! `OR(a, b)` (wired-OR); under the dominance models one driver wins.
//!
//! On the *correction* side no new machinery is needed: a wired bridge is
//! exactly two `InsertGate` corrections (one per bridged line), which the
//! design-error engine already enumerates — see the `bridging_faults`
//! integration test and the `bridging` experiment binary.

use std::fmt;

use incdx_netlist::{GateId, GateKind, Netlist, NetlistError};

/// The electrical model of a two-line short.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BridgeKind {
    /// Both readers see `AND(a, b)` (typical for CMOS pull-down fights).
    WiredAnd,
    /// Both readers see `OR(a, b)`.
    WiredOr,
    /// `a` wins: readers of `b` see `a`, readers of `a` are unaffected.
    ADominates,
    /// `b` wins: readers of `a` see `b`.
    BDominates,
}

impl BridgeKind {
    /// All four models.
    pub const ALL: [BridgeKind; 4] = [
        BridgeKind::WiredAnd,
        BridgeKind::WiredOr,
        BridgeKind::ADominates,
        BridgeKind::BDominates,
    ];
}

/// A bridging fault between two lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BridgingFault {
    a: GateId,
    b: GateId,
    kind: BridgeKind,
}

impl BridgingFault {
    /// A bridge of `kind` between lines `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn new(a: GateId, b: GateId, kind: BridgeKind) -> Self {
        assert_ne!(a, b, "a bridge needs two distinct lines");
        BridgingFault { a, b, kind }
    }

    /// The first bridged line.
    pub fn a(&self) -> GateId {
        self.a
    }

    /// The second bridged line.
    pub fn b(&self) -> GateId {
        self.b
    }

    /// The electrical model.
    pub fn kind(&self) -> BridgeKind {
        self.kind
    }

    /// Injects the bridge: readers (and primary-output bindings) of the
    /// affected line(s) are rewired to the bridged function. The netlist
    /// is modified only on success.
    ///
    /// # Errors
    ///
    /// Returns an error if either line is unknown, or the bridge would
    /// create a combinational cycle (one line feeds the other's cone in a
    /// way the rewiring closes).
    pub fn apply(&self, netlist: &mut Netlist) -> Result<(), NetlistError> {
        if self.a.index() >= netlist.len() {
            return Err(NetlistError::UnknownGate { gate: self.a });
        }
        if self.b.index() >= netlist.len() {
            return Err(NetlistError::UnknownGate { gate: self.b });
        }
        // Work on a scratch copy; commit only if every rewiring succeeds.
        let mut scratch = netlist.clone();
        let (new_a, new_b): (Option<GateId>, Option<GateId>) = match self.kind {
            BridgeKind::WiredAnd | BridgeKind::WiredOr => {
                let k = if self.kind == BridgeKind::WiredAnd {
                    GateKind::And
                } else {
                    GateKind::Or
                };
                let w = scratch.append_gate(k, vec![self.a, self.b])?;
                (Some(w), Some(w))
            }
            BridgeKind::ADominates => (None, Some(self.a)),
            BridgeKind::BDominates => (Some(self.b), None),
        };
        // For the wired models the appended bridge gate must keep reading
        // the raw lines.
        let bridge_gate = match self.kind {
            BridgeKind::WiredAnd | BridgeKind::WiredOr => new_a,
            _ => None,
        };
        for (line, replacement) in [(self.a, new_a), (self.b, new_b)] {
            let Some(replacement) = replacement else {
                continue;
            };
            let readers: Vec<GateId> = scratch
                .fanouts(line)
                .iter()
                .copied()
                .filter(|&r| Some(r) != bridge_gate)
                .collect();
            for reader in readers {
                // A reader inside the other line's fanin cone closes a
                // combinational loop; replace_gate's cycle check rejects
                // it and the whole injection fails cleanly.
                let kind = scratch.gate(reader).kind();
                let fanins: Vec<GateId> = scratch
                    .gate(reader)
                    .fanins()
                    .iter()
                    .map(|&f| if f == line { replacement } else { f })
                    .collect();
                scratch.replace_gate(reader, kind, fanins)?;
            }
            // Primary outputs bound to the line observe the bridge too.
            let outputs: Vec<GateId> = scratch
                .outputs()
                .iter()
                .map(|&o| if o == line { replacement } else { o })
                .collect();
            scratch.set_outputs(outputs)?;
        }
        *netlist = scratch;
        Ok(())
    }
}

impl fmt::Display for BridgingFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            BridgeKind::WiredAnd => "wired-AND",
            BridgeKind::WiredOr => "wired-OR",
            BridgeKind::ADominates => "a-dominates",
            BridgeKind::BDominates => "b-dominates",
        };
        write!(f, "{kind} bridge {}~{}", self.a, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdx_netlist::parse_bench;

    fn base() -> Netlist {
        parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nOUTPUT(z)\n\
             x1 = AND(a, b)\nx2 = OR(b, c)\ny = NOT(x1)\nz = BUF(x2)\n",
        )
        .unwrap()
    }

    fn eval(n: &Netlist, inputs: &[bool]) -> Vec<bool> {
        let mut vals = vec![false; n.len()];
        for (i, &pi) in n.inputs().iter().enumerate() {
            vals[pi.index()] = inputs[i];
        }
        for &id in n.topo_order() {
            let g = n.gate(id);
            if g.kind() == GateKind::Input {
                continue;
            }
            let f: Vec<bool> = g.fanins().iter().map(|&x| vals[x.index()]).collect();
            vals[id.index()] = g.kind().eval(&f);
        }
        n.outputs().iter().map(|&o| vals[o.index()]).collect()
    }

    #[test]
    fn wired_and_bridge_semantics() {
        let n = base();
        let x1 = n.find_by_name("x1").unwrap();
        let x2 = n.find_by_name("x2").unwrap();
        let mut bridged = n.clone();
        BridgingFault::new(x1, x2, BridgeKind::WiredAnd)
            .apply(&mut bridged)
            .unwrap();
        for bits in 0..8u32 {
            let iv: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            let x1v = iv[0] && iv[1];
            let x2v = iv[1] || iv[2];
            let w = x1v && x2v;
            assert_eq!(eval(&bridged, &iv), vec![!w, w], "inputs {iv:?}");
        }
    }

    #[test]
    fn wired_or_bridge_semantics() {
        let n = base();
        let x1 = n.find_by_name("x1").unwrap();
        let x2 = n.find_by_name("x2").unwrap();
        let mut bridged = n.clone();
        BridgingFault::new(x1, x2, BridgeKind::WiredOr)
            .apply(&mut bridged)
            .unwrap();
        for bits in 0..8u32 {
            let iv: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            let x1v = iv[0] && iv[1];
            let x2v = iv[1] || iv[2];
            let w = x1v || x2v;
            assert_eq!(eval(&bridged, &iv), vec![!w, w], "inputs {iv:?}");
        }
    }

    #[test]
    fn dominance_bridges() {
        let n = base();
        let x1 = n.find_by_name("x1").unwrap();
        let x2 = n.find_by_name("x2").unwrap();
        let mut a_dom = n.clone();
        BridgingFault::new(x1, x2, BridgeKind::ADominates)
            .apply(&mut a_dom)
            .unwrap();
        let mut b_dom = n.clone();
        BridgingFault::new(x1, x2, BridgeKind::BDominates)
            .apply(&mut b_dom)
            .unwrap();
        for bits in 0..8u32 {
            let iv: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            let x1v = iv[0] && iv[1];
            let x2v = iv[1] || iv[2];
            // a-dominates: z (reader of x2) sees x1.
            assert_eq!(eval(&a_dom, &iv), vec![!x1v, x1v], "{iv:?}");
            // b-dominates: y (reader of x1) sees x2.
            assert_eq!(eval(&b_dom, &iv), vec![!x2v, x2v], "{iv:?}");
        }
    }

    #[test]
    fn bridge_between_dependent_lines_is_rejected_cleanly() {
        // x1 feeds y; bridging x1 with y would make y read itself.
        let n = base();
        let x1 = n.find_by_name("x1").unwrap();
        let y = n.find_by_name("y").unwrap();
        let mut m = n.clone();
        let r = BridgingFault::new(x1, y, BridgeKind::WiredAnd).apply(&mut m);
        assert!(r.is_err());
        // Netlist unchanged on failure.
        assert_eq!(m.len(), n.len());
        for bits in 0..8u32 {
            let iv: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(eval(&m, &iv), eval(&n, &iv));
        }
    }

    #[test]
    fn display_formats() {
        let f = BridgingFault::new(GateId(1), GateId(2), BridgeKind::WiredOr);
        assert_eq!(f.to_string(), "wired-OR bridge n1~n2");
    }

    #[test]
    #[should_panic(expected = "distinct lines")]
    fn same_line_panics() {
        BridgingFault::new(GateId(1), GateId(1), BridgeKind::WiredAnd);
    }
}
