//! The Abadir–Ferguson–Kirkland design error model (reference \[1\] of the
//! paper): the ten frequently-occurring gate-level error types, here
//! expressed as netlist corruption operators for fault injection.

use std::fmt;

use incdx_netlist::{GateId, GateKind, Netlist, NetlistError};

/// The kind of a [`DesignError`]. The classic ten types collapse to eight
/// operators here: the "simple"/"complex" gate variants of the original
/// model differ only in the inserted/removed gate's fanin count, which is a
/// parameter of ours.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DesignErrorKind {
    /// The gate computes the wrong function (AND↔OR, NAND↔NOR, ...).
    GateReplacement {
        /// The wrong kind present in the erroneous design.
        wrong: GateKind,
    },
    /// An unwanted inverter sits on the gate's output (realized by
    /// complementing the gate's function).
    ExtraOutputInverter,
    /// An unwanted inverter sits on one input wire.
    ExtraInputInverter {
        /// The affected fanin port.
        port: usize,
    },
    /// One input wire the specification has is missing from the gate.
    MissingInputWire {
        /// The dropped fanin port (pre-corruption index).
        port: usize,
    },
    /// The gate reads one input wire too many.
    ExtraInputWire {
        /// The spurious signal.
        source: GateId,
    },
    /// One input is connected to the wrong signal.
    WrongInputWire {
        /// The affected fanin port.
        port: usize,
        /// The wrong signal present in the erroneous design.
        source: GateId,
    },
    /// An unwanted gate sits between this gate and one of its fanins.
    ExtraGate {
        /// The affected fanin port.
        port: usize,
        /// The second input of the spurious gate.
        other: GateId,
        /// The spurious gate's kind.
        kind: GateKind,
    },
    /// A whole gate of the specification is missing: the erroneous design
    /// wires one of its fanins straight through.
    MissingGate {
        /// The fanin that survives as a wire.
        port: usize,
    },
}

impl DesignErrorKind {
    /// Short classifier used in reports ("wrong-wire", "gate-repl", ...).
    pub fn label(&self) -> &'static str {
        match self {
            DesignErrorKind::GateReplacement { .. } => "gate-repl",
            DesignErrorKind::ExtraOutputInverter => "extra-inv",
            DesignErrorKind::ExtraInputInverter { .. } => "extra-in-inv",
            DesignErrorKind::MissingInputWire { .. } => "missing-wire",
            DesignErrorKind::ExtraInputWire { .. } => "extra-wire",
            DesignErrorKind::WrongInputWire { .. } => "wrong-wire",
            DesignErrorKind::ExtraGate { .. } => "extra-gate",
            DesignErrorKind::MissingGate { .. } => "missing-gate",
        }
    }
}

/// One injected design error: a corruption applied to a specific line of a
/// correct netlist, producing the "erroneous design" the DEDC experiments
/// rectify.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DesignError {
    line: GateId,
    kind: DesignErrorKind,
}

impl DesignError {
    /// An error of `kind` at `line`.
    pub fn new(line: GateId, kind: DesignErrorKind) -> Self {
        DesignError { line, kind }
    }

    /// The corrupted line (the gate the corruption rewrites).
    pub fn line(&self) -> GateId {
        self.line
    }

    /// The corruption kind.
    pub fn kind(&self) -> DesignErrorKind {
        self.kind
    }

    /// Corrupts `netlist` with this error. Existing gate ids stay stable;
    /// inverters/extra gates are appended.
    ///
    /// # Errors
    ///
    /// Returns an error if the corruption is structurally inapplicable at
    /// this line (bad port, arity violation, or a combinational cycle) —
    /// the injector treats that as "re-draw".
    pub fn apply(&self, netlist: &mut Netlist) -> Result<(), NetlistError> {
        let gate = netlist.gate(self.line);
        let kind = gate.kind();
        let fanins = gate.fanins().to_vec();
        let bad_port = |port: usize| NetlistError::UnknownGate {
            gate: GateId::from_index(port),
        };
        match self.kind {
            DesignErrorKind::GateReplacement { wrong } => {
                netlist.replace_gate(self.line, wrong, fanins)
            }
            DesignErrorKind::ExtraOutputInverter => {
                let complement = kind.complement().ok_or(NetlistError::BadArity {
                    gate: self.line,
                    kind,
                    found: fanins.len(),
                })?;
                netlist.replace_gate(self.line, complement, fanins)
            }
            DesignErrorKind::ExtraInputInverter { port } => {
                let &src = fanins.get(port).ok_or_else(|| bad_port(port))?;
                let inv = netlist.append_gate(GateKind::Not, vec![src])?;
                let mut f = fanins;
                f[port] = inv;
                netlist.replace_gate(self.line, kind, f)
            }
            DesignErrorKind::MissingInputWire { port } => {
                if port >= fanins.len() {
                    return Err(bad_port(port));
                }
                let mut f = fanins;
                f.remove(port);
                netlist.replace_gate(self.line, kind, f)
            }
            DesignErrorKind::ExtraInputWire { source } => {
                let mut f = fanins;
                if f.contains(&source) {
                    return Err(NetlistError::DanglingFanin {
                        gate: self.line,
                        fanin: source,
                    });
                }
                f.push(source);
                netlist.replace_gate(self.line, kind, f)
            }
            DesignErrorKind::WrongInputWire { port, source } => {
                if port >= fanins.len() {
                    return Err(bad_port(port));
                }
                let mut f = fanins;
                if f[port] == source {
                    return Err(NetlistError::DanglingFanin {
                        gate: self.line,
                        fanin: source,
                    });
                }
                f[port] = source;
                netlist.replace_gate(self.line, kind, f)
            }
            DesignErrorKind::ExtraGate {
                port,
                other,
                kind: extra_kind,
            } => {
                let &src = fanins.get(port).ok_or_else(|| bad_port(port))?;
                let spurious = netlist.append_gate(extra_kind, vec![src, other])?;
                let mut f = fanins;
                f[port] = spurious;
                netlist.replace_gate(self.line, kind, f)
            }
            DesignErrorKind::MissingGate { port } => {
                let &src = fanins.get(port).ok_or_else(|| bad_port(port))?;
                netlist.replace_gate(self.line, GateKind::Buf, vec![src])
            }
        }
    }
}

impl fmt::Display for DesignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.kind.label(), self.line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdx_netlist::parse_bench;

    fn base() -> Netlist {
        parse_bench("INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nx = AND(a, b)\ny = OR(x, c)\n")
            .unwrap()
    }

    #[test]
    fn gate_replacement() {
        let mut n = base();
        let x = n.find_by_name("x").unwrap();
        DesignError::new(
            x,
            DesignErrorKind::GateReplacement {
                wrong: GateKind::Nor,
            },
        )
        .apply(&mut n)
        .unwrap();
        assert_eq!(n.gate(x).kind(), GateKind::Nor);
    }

    #[test]
    fn extra_output_inverter_complements_kind() {
        let mut n = base();
        let x = n.find_by_name("x").unwrap();
        DesignError::new(x, DesignErrorKind::ExtraOutputInverter)
            .apply(&mut n)
            .unwrap();
        assert_eq!(n.gate(x).kind(), GateKind::Nand);
        assert_eq!(n.len(), 5); // no gate added
    }

    #[test]
    fn extra_input_inverter_appends_not() {
        let mut n = base();
        let x = n.find_by_name("x").unwrap();
        DesignError::new(x, DesignErrorKind::ExtraInputInverter { port: 1 })
            .apply(&mut n)
            .unwrap();
        assert_eq!(n.len(), 6);
        let inv = n.gate(x).fanins()[1];
        assert_eq!(n.gate(inv).kind(), GateKind::Not);
        assert_eq!(n.gate(inv).fanins()[0], n.find_by_name("b").unwrap());
    }

    #[test]
    fn missing_input_wire_drops_port() {
        let mut n = base();
        let y = n.find_by_name("y").unwrap();
        DesignError::new(y, DesignErrorKind::MissingInputWire { port: 0 })
            .apply(&mut n)
            .unwrap();
        assert_eq!(n.gate(y).fanins(), &[n.find_by_name("c").unwrap()]);
    }

    #[test]
    fn extra_and_wrong_input_wire() {
        let mut n = base();
        let x = n.find_by_name("x").unwrap();
        let c = n.find_by_name("c").unwrap();
        DesignError::new(x, DesignErrorKind::ExtraInputWire { source: c })
            .apply(&mut n)
            .unwrap();
        assert_eq!(n.gate(x).fanins().len(), 3);

        let mut n = base();
        let a = n.find_by_name("a").unwrap();
        DesignError::new(x, DesignErrorKind::WrongInputWire { port: 1, source: a })
            .apply(&mut n)
            .unwrap();
        assert_eq!(n.gate(x).fanins(), &[a, a]);
    }

    #[test]
    fn extra_gate_inserts_between() {
        let mut n = base();
        let y = n.find_by_name("y").unwrap();
        let b = n.find_by_name("b").unwrap();
        DesignError::new(
            y,
            DesignErrorKind::ExtraGate {
                port: 0,
                other: b,
                kind: GateKind::Nand,
            },
        )
        .apply(&mut n)
        .unwrap();
        let spurious = n.gate(y).fanins()[0];
        assert_eq!(n.gate(spurious).kind(), GateKind::Nand);
        assert_eq!(n.gate(spurious).fanins()[0], n.find_by_name("x").unwrap());
    }

    #[test]
    fn missing_gate_wires_through() {
        let mut n = base();
        let x = n.find_by_name("x").unwrap();
        DesignError::new(x, DesignErrorKind::MissingGate { port: 1 })
            .apply(&mut n)
            .unwrap();
        assert_eq!(n.gate(x).kind(), GateKind::Buf);
        assert_eq!(n.gate(x).fanins(), &[n.find_by_name("b").unwrap()]);
    }

    #[test]
    fn inapplicable_corruptions_error_cleanly() {
        let mut n = base();
        let x = n.find_by_name("x").unwrap();
        let y = n.find_by_name("y").unwrap();
        // Bad port.
        assert!(
            DesignError::new(x, DesignErrorKind::MissingInputWire { port: 9 })
                .apply(&mut n)
                .is_err()
        );
        // Cycle: wiring y into its own fanin cone's sink.
        assert!(
            DesignError::new(x, DesignErrorKind::ExtraInputWire { source: y })
                .apply(&mut n)
                .is_err()
        );
        // Duplicate wire rejected.
        let a = n.find_by_name("a").unwrap();
        assert!(
            DesignError::new(x, DesignErrorKind::ExtraInputWire { source: a })
                .apply(&mut n)
                .is_err()
        );
        // Netlist unchanged by failed injections.
        assert_eq!(n.gate(x).kind(), GateKind::And);
        assert_eq!(n.len(), 5);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(
            DesignError::new(GateId(1), DesignErrorKind::ExtraOutputInverter).to_string(),
            "extra-inv at n1"
        );
    }
}
