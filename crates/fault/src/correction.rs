//! Correction enumeration — the "exhaustively compiles a list of
//! corrections from the design error or fault model" step of §3.2.
//!
//! A [`Correction`] is a local rewrite of the gate driving a suspect line:
//! in stuck-at diagnosis it models the fault (a constant); in DEDC it
//! *undoes* a hypothesised Abadir-model error (changes the gate's function,
//! toggles inversions, adds/removes/replaces input wires, bypasses or
//! inserts a gate). The diagnosis engine screens these candidates with the
//! paper's heuristics 2 and 3.

use std::fmt;

use incdx_netlist::{GateId, GateKind, Netlist, NetlistError};

/// Which candidate family [`enumerate_corrections`] produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorrectionModel {
    /// Stuck-at-0/1 only (the fault diagnosis setting).
    StuckAt,
    /// The full design-error correction repertoire (the DEDC setting).
    DesignErrors,
}

/// The rewrite a [`Correction`] performs on its target gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CorrectionAction {
    /// Model a stuck-at fault: the line becomes a constant.
    SetConst(bool),
    /// The gate's type was wrong: change it (fanins unchanged).
    ChangeKind(GateKind),
    /// An inverter is missing/extra on input `port`: toggle it.
    InvertInput {
        /// The affected fanin port.
        port: usize,
    },
    /// The gate reads a wire the specification doesn't have: drop it.
    RemoveInput {
        /// The dropped fanin port.
        port: usize,
    },
    /// The gate misses a wire the specification has: add one.
    AddInput {
        /// The signal to connect.
        source: GateId,
    },
    /// An input is connected to the wrong signal: rewire it.
    ReplaceInput {
        /// The affected fanin port.
        port: usize,
        /// The replacement signal.
        source: GateId,
    },
    /// An extra gate sits in the design: bypass it (the line becomes a
    /// buffer of one of its fanins).
    WireThrough {
        /// The surviving fanin port.
        port: usize,
    },
    /// A gate is missing from the design: feed the line's old function
    /// and `other` through a new `kind` gate.
    InsertGate {
        /// The inserted gate's kind.
        kind: GateKind,
        /// Its second input.
        other: GateId,
    },
}

/// A candidate correction: an action at a specific line.
///
/// # Example
///
/// ```
/// use incdx_fault::{Correction, CorrectionAction};
/// use incdx_netlist::{parse_bench, GateKind};
///
/// let mut n = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n")?;
/// let y = n.find_by_name("y").unwrap();
/// Correction::new(y, CorrectionAction::ChangeKind(GateKind::Or)).apply(&mut n)?;
/// assert_eq!(n.gate(y).kind(), GateKind::Or);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Correction {
    line: GateId,
    action: CorrectionAction,
}

impl Correction {
    /// A correction performing `action` at `line`.
    pub fn new(line: GateId, action: CorrectionAction) -> Self {
        Correction { line, action }
    }

    /// The corrected line.
    pub fn line(&self) -> GateId {
        self.line
    }

    /// The rewrite performed.
    pub fn action(&self) -> CorrectionAction {
        self.action
    }

    /// If this correction models a stuck-at fault, its polarity.
    pub fn as_stuck_at(&self) -> Option<bool> {
        match self.action {
            CorrectionAction::SetConst(v) => Some(v),
            _ => None,
        }
    }

    /// Applies the rewrite. Existing gate ids stay stable (helper
    /// inverters / inserted gates are appended).
    ///
    /// # Errors
    ///
    /// Returns an error — leaving the netlist unchanged — if the action is
    /// structurally inapplicable (bad port, arity violation, cycle).
    pub fn apply(&self, netlist: &mut Netlist) -> Result<(), NetlistError> {
        let gate = netlist.gate(self.line);
        let kind = gate.kind();
        let fanins = gate.fanins().to_vec();
        let bad_port = |port: usize| NetlistError::UnknownGate {
            gate: GateId::from_index(port),
        };
        match self.action {
            CorrectionAction::SetConst(v) => {
                let k = if v {
                    GateKind::Const1
                } else {
                    GateKind::Const0
                };
                netlist.replace_gate(self.line, k, Vec::new())
            }
            CorrectionAction::ChangeKind(new_kind) => {
                netlist.replace_gate(self.line, new_kind, fanins)
            }
            CorrectionAction::InvertInput { port } => {
                let &src = fanins.get(port).ok_or_else(|| bad_port(port))?;
                let mut f = fanins;
                // Toggling: if the wire already comes from an inverter,
                // bypass it; otherwise insert one.
                if netlist.gate(src).kind() == GateKind::Not {
                    f[port] = netlist.gate(src).fanins()[0];
                } else {
                    f[port] = netlist.append_gate(GateKind::Not, vec![src])?;
                }
                netlist.replace_gate(self.line, kind, f)
            }
            CorrectionAction::RemoveInput { port } => {
                if port >= fanins.len() {
                    return Err(bad_port(port));
                }
                let mut f = fanins;
                f.remove(port);
                netlist.replace_gate(self.line, kind, f)
            }
            CorrectionAction::AddInput { source } => {
                let mut f = fanins;
                if f.contains(&source) || source == self.line {
                    return Err(NetlistError::DanglingFanin {
                        gate: self.line,
                        fanin: source,
                    });
                }
                f.push(source);
                netlist.replace_gate(self.line, kind, f)
            }
            CorrectionAction::ReplaceInput { port, source } => {
                if port >= fanins.len() {
                    return Err(bad_port(port));
                }
                if fanins[port] == source || source == self.line {
                    return Err(NetlistError::DanglingFanin {
                        gate: self.line,
                        fanin: source,
                    });
                }
                let mut f = fanins;
                f[port] = source;
                netlist.replace_gate(self.line, kind, f)
            }
            CorrectionAction::WireThrough { port } => {
                let &src = fanins.get(port).ok_or_else(|| bad_port(port))?;
                netlist.replace_gate(self.line, GateKind::Buf, vec![src])
            }
            CorrectionAction::InsertGate {
                kind: new_kind,
                other,
            } => {
                if other == self.line {
                    return Err(NetlistError::CombinationalCycle { gate: self.line });
                }
                // Clone the original function into an appended gate, then
                // combine it with `other`.
                if !kind.is_logic() {
                    return Err(NetlistError::BadArity {
                        gate: self.line,
                        kind,
                        found: fanins.len(),
                    });
                }
                // Pre-check the cycle guard before appending the aux gate so
                // a failed apply leaves the netlist untouched.
                if netlist.fanout_cone(self.line).contains(other.index()) {
                    return Err(NetlistError::CombinationalCycle { gate: self.line });
                }
                let aux = netlist.append_gate(kind, fanins)?;
                netlist.replace_gate(self.line, new_kind, vec![aux, other])
            }
        }
    }
}

impl fmt::Display for Correction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.action {
            CorrectionAction::SetConst(v) => write!(f, "{} := const {}", self.line, v as u8),
            CorrectionAction::ChangeKind(k) => write!(f, "{} := {k}", self.line),
            CorrectionAction::InvertInput { port } => {
                write!(f, "{}: toggle inverter on port {port}", self.line)
            }
            CorrectionAction::RemoveInput { port } => {
                write!(f, "{}: remove input port {port}", self.line)
            }
            CorrectionAction::AddInput { source } => {
                write!(f, "{}: add input {source}", self.line)
            }
            CorrectionAction::ReplaceInput { port, source } => {
                write!(f, "{}: rewire port {port} to {source}", self.line)
            }
            CorrectionAction::WireThrough { port } => {
                write!(f, "{}: wire through port {port}", self.line)
            }
            CorrectionAction::InsertGate { kind, other } => {
                write!(f, "{}: insert {kind} with {other}", self.line)
            }
        }
    }
}

/// Exhaustively compiles the correction candidates for `line` under
/// `model`, "as in \[6\] \[10\]" (§3.2 of the paper).
///
/// `wire_sources` bounds the signals considered for wire additions,
/// replacements and gate insertions (the engine passes structural
/// neighbours plus a level-matched sample; an unrestricted enumeration is
/// quadratic in circuit size). Pass an empty slice to skip wire
/// corrections entirely.
///
/// Lines without a combinational function (PIs, constants) only admit
/// stuck-at corrections.
pub fn enumerate_corrections(
    netlist: &Netlist,
    line: GateId,
    model: CorrectionModel,
    wire_sources: &[GateId],
) -> Vec<Correction> {
    let mut out = Vec::new();
    let gate = netlist.gate(line);
    let kind = gate.kind();
    let nf = gate.fanins().len();
    match model {
        CorrectionModel::StuckAt => {
            out.push(Correction::new(line, CorrectionAction::SetConst(false)));
            out.push(Correction::new(line, CorrectionAction::SetConst(true)));
        }
        CorrectionModel::DesignErrors => {
            if !kind.is_logic() {
                return out;
            }
            // Gate type replacement (includes the missing/extra output
            // inverter via the complement kind).
            let mut kind_choices: Vec<GateKind> = GateKind::LOGIC_KINDS.to_vec();
            kind_choices.push(GateKind::Buf);
            kind_choices.push(GateKind::Not);
            for k in kind_choices {
                if k != kind && nf >= k.arity().0 && nf <= k.arity().1 {
                    out.push(Correction::new(line, CorrectionAction::ChangeKind(k)));
                }
            }
            // Input-wire inverters.
            for port in 0..nf {
                out.push(Correction::new(
                    line,
                    CorrectionAction::InvertInput { port },
                ));
            }
            // Extra wire in the design: remove it.
            if nf >= 2 {
                for port in 0..nf {
                    out.push(Correction::new(
                        line,
                        CorrectionAction::RemoveInput { port },
                    ));
                    out.push(Correction::new(
                        line,
                        CorrectionAction::WireThrough { port },
                    ));
                }
            }
            // Missing / wrong wires and missing gates need candidate
            // sources.
            for &src in wire_sources {
                if src == line {
                    continue;
                }
                if !gate.fanins().contains(&src) {
                    out.push(Correction::new(
                        line,
                        CorrectionAction::AddInput { source: src },
                    ));
                }
                for port in 0..nf {
                    if gate.fanins()[port] != src {
                        out.push(Correction::new(
                            line,
                            CorrectionAction::ReplaceInput { port, source: src },
                        ));
                    }
                }
                for k in [GateKind::And, GateKind::Or] {
                    out.push(Correction::new(
                        line,
                        CorrectionAction::InsertGate {
                            kind: k,
                            other: src,
                        },
                    ));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdx_netlist::parse_bench;

    fn base() -> Netlist {
        parse_bench("INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nx = AND(a, b)\ny = OR(x, c)\n")
            .unwrap()
    }

    #[test]
    fn stuck_at_model_enumerates_two() {
        let n = base();
        let x = n.find_by_name("x").unwrap();
        let cs = enumerate_corrections(&n, x, CorrectionModel::StuckAt, &[]);
        assert_eq!(cs.len(), 2);
        assert_eq!(cs[0].as_stuck_at(), Some(false));
        assert_eq!(cs[1].as_stuck_at(), Some(true));
    }

    #[test]
    fn design_error_model_enumerates_local_rewrites() {
        let n = base();
        let x = n.find_by_name("x").unwrap();
        let cs = enumerate_corrections(&n, x, CorrectionModel::DesignErrors, &[]);
        // 2-input AND: 5 kind changes (NAND/OR/NOR/XOR/XNOR), 2 input
        // inverters, 2 removals, 2 wire-throughs.
        assert_eq!(cs.len(), 11);
        assert!(cs
            .iter()
            .all(|c| !matches!(c.action(), CorrectionAction::SetConst(_))));
    }

    #[test]
    fn wire_sources_expand_the_space() {
        let n = base();
        let x = n.find_by_name("x").unwrap();
        let c = n.find_by_name("c").unwrap();
        let cs = enumerate_corrections(&n, x, CorrectionModel::DesignErrors, &[c]);
        // + AddInput, 2 ReplaceInput, 2 InsertGate.
        assert_eq!(cs.len(), 16);
    }

    #[test]
    fn pi_lines_admit_only_stuck_at() {
        let n = base();
        let a = n.find_by_name("a").unwrap();
        assert!(enumerate_corrections(&n, a, CorrectionModel::DesignErrors, &[]).is_empty());
        assert_eq!(
            enumerate_corrections(&n, a, CorrectionModel::StuckAt, &[]).len(),
            2
        );
    }

    #[test]
    fn every_enumerated_correction_applies_cleanly() {
        let n = base();
        let sources: Vec<GateId> = n.ids().collect();
        for line in n.ids() {
            for model in [CorrectionModel::StuckAt, CorrectionModel::DesignErrors] {
                for c in enumerate_corrections(&n, line, model, &sources) {
                    let mut m = n.clone();
                    // Wire corrections may still hit the cycle guard; that
                    // must be a clean error, not a panic or corruption.
                    match c.apply(&mut m) {
                        Ok(()) => {}
                        Err(_) => assert_eq!(m.len(), n.len(), "failed apply must not mutate"),
                    }
                }
            }
        }
    }

    #[test]
    fn invert_input_toggles_existing_inverter() {
        let mut n =
            parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\nni = NOT(a)\ny = AND(ni, b)\n").unwrap();
        let y = n.find_by_name("y").unwrap();
        let a = n.find_by_name("a").unwrap();
        Correction::new(y, CorrectionAction::InvertInput { port: 0 })
            .apply(&mut n)
            .unwrap();
        // The inverter was bypassed, not doubled.
        assert_eq!(n.gate(y).fanins()[0], a);
        assert_eq!(n.len(), 4);
    }

    #[test]
    fn insert_gate_preserves_old_function_as_aux() {
        let mut n = base();
        let x = n.find_by_name("x").unwrap();
        let c = n.find_by_name("c").unwrap();
        Correction::new(
            x,
            CorrectionAction::InsertGate {
                kind: GateKind::Or,
                other: c,
            },
        )
        .apply(&mut n)
        .unwrap();
        assert_eq!(n.gate(x).kind(), GateKind::Or);
        let aux = n.gate(x).fanins()[0];
        assert_eq!(n.gate(aux).kind(), GateKind::And);
        assert_eq!(n.gate(x).fanins()[1], c);
    }

    #[test]
    fn set_const_apply() {
        let mut n = base();
        let x = n.find_by_name("x").unwrap();
        Correction::new(x, CorrectionAction::SetConst(true))
            .apply(&mut n)
            .unwrap();
        assert_eq!(n.gate(x).kind(), GateKind::Const1);
    }

    #[test]
    fn display_is_informative() {
        let c = Correction::new(GateId(4), CorrectionAction::ChangeKind(GateKind::Nor));
        assert_eq!(c.to_string(), "n4 := NOR");
    }
}
