use std::fmt;

use incdx_netlist::{GateId, GateKind, Netlist, NetlistError};

/// A single stuck-at fault on a line (the paper's fault model for
/// diagnosis: "either a stuck-at-0 or a stuck-at-1 fault model is used").
///
/// Lines are gate outputs (stems); see DESIGN.md for the branch-vs-stem
/// modelling note.
///
/// # Example
///
/// ```
/// use incdx_fault::StuckAt;
/// use incdx_netlist::GateId;
///
/// let f = StuckAt::new(GateId(7), true);
/// assert_eq!(f.to_string(), "n7 stuck-at-1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StuckAt {
    line: GateId,
    value: bool,
}

impl StuckAt {
    /// A fault forcing `line` to `value`.
    pub fn new(line: GateId, value: bool) -> Self {
        StuckAt { line, value }
    }

    /// The faulty line.
    pub fn line(&self) -> GateId {
        self.line
    }

    /// The stuck value.
    pub fn value(&self) -> bool {
        self.value
    }

    /// The opposite-polarity fault on the same line.
    pub fn complement(&self) -> StuckAt {
        StuckAt::new(self.line, !self.value)
    }

    /// Applies the fault to a netlist by rewriting the driving gate to a
    /// constant. The line keeps its id; downstream readers are untouched.
    ///
    /// # Errors
    ///
    /// Returns an error if the line id is out of range.
    pub fn apply(&self, netlist: &mut Netlist) -> Result<(), NetlistError> {
        let kind = if self.value {
            GateKind::Const1
        } else {
            GateKind::Const0
        };
        netlist.replace_gate(self.line, kind, Vec::new())
    }
}

impl fmt::Display for StuckAt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} stuck-at-{}", self.line, self.value as u8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdx_netlist::parse_bench;

    #[test]
    fn apply_rewrites_to_constant() {
        let mut n = parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n").unwrap();
        let y = n.find_by_name("y").unwrap();
        StuckAt::new(y, true).apply(&mut n).unwrap();
        assert_eq!(n.gate(y).kind(), GateKind::Const1);
        assert!(n.gate(y).fanins().is_empty());
        assert_eq!(n.len(), 2);
    }

    #[test]
    fn apply_out_of_range_errors() {
        let mut n = parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n").unwrap();
        assert!(StuckAt::new(GateId(99), false).apply(&mut n).is_err());
    }

    #[test]
    fn ordering_is_line_major() {
        let mut faults = vec![
            StuckAt::new(GateId(3), true),
            StuckAt::new(GateId(1), true),
            StuckAt::new(GateId(1), false),
        ];
        faults.sort();
        assert_eq!(
            faults,
            vec![
                StuckAt::new(GateId(1), false),
                StuckAt::new(GateId(1), true),
                StuckAt::new(GateId(3), true),
            ]
        );
    }

    #[test]
    fn complement_flips_polarity() {
        let f = StuckAt::new(GateId(2), false);
        assert_eq!(f.complement(), StuckAt::new(GateId(2), true));
        assert_eq!(f.complement().complement(), f);
    }
}
