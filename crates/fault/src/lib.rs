//! Fault models, design-error models, injection and correction enumeration
//! for the `incdx` workspace.
//!
//! The DATE 2002 paper treats two mirror problems with one engine:
//!
//! * **stuck-at fault diagnosis** — fault-model the *correct* netlist with
//!   [`StuckAt`] faults until it matches the faulty device, and
//! * **design error diagnosis and correction (DEDC)** — correct the
//!   *erroneous* netlist (corrupted with the design error types of Abadir,
//!   Ferguson and Kirkland, reference \[1\] of the paper) until it matches
//!   the specification.
//!
//! This crate supplies both sides: the fault/error types, random
//! multi-fault/multi-error **injection** with the Campenhout et al. error
//! distribution (reference \[2\]), and the exhaustive per-line **correction
//! enumeration** the engine's screening stage consumes (§3.2 of the paper).
//!
//! # Example
//!
//! ```
//! use incdx_fault::StuckAt;
//! use incdx_netlist::{parse_bench, GateId};
//!
//! let mut n = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n")?;
//! let fault = StuckAt::new(n.find_by_name("y").unwrap(), false);
//! fault.apply(&mut n)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod bridging;
mod correction;
mod error_model;
mod inject;
mod stuck_at;

pub use bridging::{BridgeKind, BridgingFault};
pub use correction::{enumerate_corrections, Correction, CorrectionAction, CorrectionModel};
pub use error_model::{DesignError, DesignErrorKind};
pub use inject::{
    inject_design_errors, inject_stuck_at_faults, InjectError, Injection, InjectionConfig,
};
pub use stuck_at::StuckAt;
