//! Ternary constant propagation.
//!
//! Each line gets a value in the four-point lattice
//! `Unreached < {Const0, Const1} < Varies`: the set of logic values the
//! line can take across all input vectors, as far as structure alone can
//! tell. `Const0`/`Const1` gates seed the analysis; the transfer functions
//! are the exact ternary images of the gate functions (an AND with a
//! `Const0` fanin is `Const0`, an XOR of two copies of a constant is that
//! parity, and so on). `Unreached` (the empty value set) only survives on
//! gates that sit on a combinational cycle.

use incdx_netlist::{GateId, GateKind, Netlist};

use crate::dataflow::{solve, Dataflow, Direction};

/// One point of the constant lattice: the set of values a line can take.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Ternary {
    /// Bottom: no value derived yet (only survives on cycles).
    #[default]
    Unreached,
    /// The line is structurally pinned to logic 0.
    Const0,
    /// The line is structurally pinned to logic 1.
    Const1,
    /// Top: the line can take either value.
    Varies,
}

impl Ternary {
    /// Builds the lattice point from "can the line be 0 / be 1" flags.
    pub fn from_can(can0: bool, can1: bool) -> Self {
        match (can0, can1) {
            (false, false) => Ternary::Unreached,
            (true, false) => Ternary::Const0,
            (false, true) => Ternary::Const1,
            (true, true) => Ternary::Varies,
        }
    }

    /// Can the line take the value 0?
    pub fn can0(self) -> bool {
        matches!(self, Ternary::Const0 | Ternary::Varies)
    }

    /// Can the line take the value 1?
    pub fn can1(self) -> bool {
        matches!(self, Ternary::Const1 | Ternary::Varies)
    }

    /// The pinned value, if the line is a proven constant.
    pub fn constant(self) -> Option<bool> {
        match self {
            Ternary::Const0 => Some(false),
            Ternary::Const1 => Some(true),
            _ => None,
        }
    }
}

/// The logical complement (swaps the two constants, fixes the rest).
impl std::ops::Not for Ternary {
    type Output = Self;

    fn not(self) -> Self {
        Ternary::from_can(self.can1(), self.can0())
    }
}

/// The exact ternary image of one gate function.
///
/// `value` supplies the lattice point of each fanin; the result is the
/// set of outputs the gate can produce over every combination of fanin
/// values drawn from those sets. Strict in [`Ternary::Unreached`]: if any
/// fanin has the empty value set, so does the output.
pub fn eval_gate(kind: GateKind, fanins: &[GateId], value: impl Fn(GateId) -> Ternary) -> Ternary {
    match kind {
        // Inputs and state-holding elements can take either value.
        GateKind::Input | GateKind::Dff => Ternary::Varies,
        GateKind::Const0 => Ternary::Const0,
        GateKind::Const1 => Ternary::Const1,
        GateKind::Buf => fanins.first().map(|&f| value(f)).unwrap_or_default(),
        GateKind::Not => fanins.first().map(|&f| !value(f)).unwrap_or_default(),
        GateKind::And | GateKind::Nand => {
            let mut can1 = true;
            let mut can0 = false;
            for &f in fanins {
                let v = value(f);
                if v == Ternary::Unreached {
                    return Ternary::Unreached;
                }
                can1 &= v.can1();
                can0 |= v.can0();
            }
            let out = Ternary::from_can(can0, can1);
            if kind == GateKind::Nand {
                !out
            } else {
                out
            }
        }
        GateKind::Or | GateKind::Nor => {
            let mut can0 = true;
            let mut can1 = false;
            for &f in fanins {
                let v = value(f);
                if v == Ternary::Unreached {
                    return Ternary::Unreached;
                }
                can0 &= v.can0();
                can1 |= v.can1();
            }
            let out = Ternary::from_can(can0, can1);
            if kind == GateKind::Nor {
                !out
            } else {
                out
            }
        }
        GateKind::Xor | GateKind::Xnor => {
            // Which parities are achievable over the fanin value sets.
            let mut even = true;
            let mut odd = false;
            for &f in fanins {
                let v = value(f);
                if v == Ternary::Unreached {
                    return Ternary::Unreached;
                }
                let (e, o) = (even, odd);
                even = (e && v.can0()) || (o && v.can1());
                odd = (o && v.can0()) || (e && v.can1());
            }
            let out = Ternary::from_can(even, odd);
            if kind == GateKind::Xnor {
                !out
            } else {
                out
            }
        }
    }
}

/// The result of ternary constant propagation over one netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Constants {
    values: Vec<Ternary>,
}

struct ConstProp;

impl Dataflow for ConstProp {
    type Fact = Ternary;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn init(&self, _netlist: &Netlist, _id: GateId) -> Ternary {
        Ternary::Unreached
    }

    fn transfer(&self, netlist: &Netlist, id: GateId, facts: &[Ternary]) -> Ternary {
        let gate = netlist.gate(id);
        // Out-of-range fanins (possible via `from_parts_unchecked`) read
        // the `Unreached` default, keeping the pass total on hazardous
        // structures — same contract as the lint crate's X-propagation.
        eval_gate(gate.kind(), gate.fanins(), |f| {
            facts.get(f.index()).copied().unwrap_or_default()
        })
    }
}

impl Constants {
    /// Runs constant propagation to its fixed point.
    pub fn compute(netlist: &Netlist) -> Self {
        Constants {
            values: solve(netlist, &ConstProp),
        }
    }

    /// The lattice point of `line` ([`Ternary::Unreached`] if out of range).
    pub fn value(&self, line: GateId) -> Ternary {
        self.values.get(line.index()).copied().unwrap_or_default()
    }

    /// Number of lines proven constant.
    pub fn const_lines(&self) -> usize {
        self.values
            .iter()
            .filter(|v| v.constant().is_some())
            .count()
    }

    /// Number of lines analysed.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no lines were analysed.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdx_netlist::NetlistBuilder;

    #[test]
    fn constants_propagate_through_gates() {
        let mut b = NetlistBuilder::new();
        let i0 = b.add_input("i0");
        let c1 = b.add_gate(GateKind::Const1, vec![]);
        let c0 = b.add_gate(GateKind::Const0, vec![]);
        let and_pass = b.add_gate(GateKind::And, vec![i0, c1]); // = i0
        let and_kill = b.add_gate(GateKind::And, vec![i0, c0]); // = 0
        let or_kill = b.add_gate(GateKind::Or, vec![i0, c1]); // = 1
        let xor_inv = b.add_gate(GateKind::Xor, vec![c1, c1]); // = 0
        let nor_inv = b.add_gate(GateKind::Nor, vec![c0, c0]); // = 1
        b.add_output(and_pass);
        b.add_output(and_kill);
        b.add_output(or_kill);
        b.add_output(xor_inv);
        b.add_output(nor_inv);
        let n = b.build().expect("valid");
        let c = Constants::compute(&n);
        assert_eq!(c.value(i0), Ternary::Varies);
        assert_eq!(c.value(and_pass), Ternary::Varies);
        assert_eq!(c.value(and_kill), Ternary::Const0);
        assert_eq!(c.value(or_kill), Ternary::Const1);
        assert_eq!(c.value(xor_inv), Ternary::Const0);
        assert_eq!(c.value(nor_inv), Ternary::Const1);
        assert_eq!(c.const_lines(), 6); // c0, c1 and the four derived above
    }

    #[test]
    fn xor_parity_tracks_mixed_sets() {
        let mut b = NetlistBuilder::new();
        let i0 = b.add_input("i0");
        let c1 = b.add_gate(GateKind::Const1, vec![]);
        let x = b.add_gate(GateKind::Xor, vec![i0, c1]); // = NOT i0
        let xn = b.add_gate(GateKind::Xnor, vec![c1, c1]); // = NOT(1^1) = 1
        b.add_output(x);
        b.add_output(xn);
        let n = b.build().expect("valid");
        let c = Constants::compute(&n);
        assert_eq!(c.value(x), Ternary::Varies);
        assert_eq!(c.value(xn), Ternary::Const1);
    }

    #[test]
    fn not_flips_constants() {
        assert_eq!(!Ternary::Const0, Ternary::Const1);
        assert_eq!(!Ternary::Varies, Ternary::Varies);
        assert_eq!(!Ternary::Unreached, Ternary::Unreached);
    }
}
