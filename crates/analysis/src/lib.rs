//! Static dataflow analyses over [`incdx_netlist::Netlist`].
//!
//! The engine's candidate pipeline is dynamic — path-trace, rank, screen —
//! but a netlist carries structural facts that hold for *every* vector and
//! every candidate correction. This crate derives three of them on one
//! shared fixed-point worklist engine ([`dataflow`]):
//!
//! * [`Constants`] — ternary constant propagation: which lines are pinned
//!   to 0 or 1 by the structure alone (`Const0`/`Const1` gates and their
//!   downstream implications);
//! * [`DominatorTable`] — per-line *output-side dominators*: the lines
//!   every propagation path from a line to any primary output must cross;
//! * [`PoReach`] — per-line primary-output reachability: the set of PO
//!   positions a line's fanout cone touches.
//!
//! On top of the tables, [`observable_changes`] answers the query the
//! engine's pruning layer actually needs: *which POs could possibly change
//! if line `l`'s function were modified in any way?* It refines pure
//! reachability by re-propagating the constant lattice with `l` forced to
//! [`Ternary::Varies`] — a gate inside `l`'s cone whose forced value is
//! still a constant is pinned to the *same* constant with or without the
//! modification (monotonicity of the transfer functions guarantees the
//! forced value can only move *up* the lattice, and a constant that moves
//! up to a constant is unchanged), so it blocks propagation.
//!
//! All analyses terminate on arbitrary netlists, including the cyclic ones
//! `from_parts_unchecked` can build (the worklist engine relies on finite
//! lattice height, not on topological completeness); facts for gates on a
//! cycle may stay at bottom, which every consumer treats conservatively.

pub mod constants;
pub mod dataflow;
pub mod dominators;
pub mod reach;

pub use constants::{Constants, Ternary};
pub use dataflow::{solve, Dataflow, Direction};
pub use dominators::DominatorTable;
pub use reach::{PoReach, PoSet};

use incdx_netlist::{GateId, Netlist};

/// The per-job bundle of static tables the engine consults while pruning.
///
/// Computed once per diagnosis job on the base netlist; the engine looks
/// the tables up only at the search root (whose netlist *is* the base
/// netlist) and recomputes per-node facts everywhere else, so the bundle
/// never goes stale as corrections are applied.
#[derive(Debug, Clone)]
pub struct AnalysisTables {
    /// Ternary constant propagation result.
    pub constants: Constants,
    /// Per-line PO reachability.
    pub reach: PoReach,
    /// Per-line output-side dominator sets.
    pub dominators: DominatorTable,
}

impl AnalysisTables {
    /// Runs all three analyses on `netlist`.
    pub fn compute(netlist: &Netlist) -> Self {
        AnalysisTables {
            constants: Constants::compute(netlist),
            reach: PoReach::compute(netlist),
            dominators: DominatorTable::compute(netlist),
        }
    }
}

/// The set of PO positions whose value function could change under *any*
/// modification of `line`'s output function.
///
/// `cone_topo` must list the gates of `line`'s transitive fanout cone in
/// topological order (the engine's memoized cone sets provide exactly
/// this); gates outside the slice are never inspected. The result is
/// always a subset of `PoReach::reach(line)`; the refinement comes from
/// constant-blocked gates — see the crate docs for the soundness argument.
///
/// Passing an empty `cone_topo` (or one that omits `line` itself) still
/// counts `line`'s own PO positions: a line that *is* a primary output is
/// always observable there.
pub fn observable_changes(
    netlist: &Netlist,
    consts: &Constants,
    line: GateId,
    cone_topo: &[GateId],
) -> PoSet {
    let outputs = netlist.outputs();
    let mut result = PoSet::empty(outputs.len());
    let mut changed = vec![false; netlist.len()];
    if line.index() < changed.len() {
        changed[line.index()] = true;
    }
    for (po, &driver) in outputs.iter().enumerate() {
        if driver == line {
            result.insert(po);
        }
    }
    for &g in cone_topo {
        if g == line || g.index() >= changed.len() || changed[g.index()] {
            continue;
        }
        let gate = netlist.gate(g);
        // Out-of-range fanins (hazardous structures) count as unchanged.
        let is_changed = |f: GateId| changed.get(f.index()).copied().unwrap_or(false);
        if !gate.fanins().iter().any(|&f| is_changed(f)) {
            continue;
        }
        let forced = constants::eval_gate(gate.kind(), gate.fanins(), |f| {
            if is_changed(f) {
                Ternary::Varies
            } else {
                consts.value(f)
            }
        });
        if forced.constant().is_some() {
            // Pinned to the same constant with or without the change at
            // `line` — blocks propagation.
            continue;
        }
        changed[g.index()] = true;
        for (po, &driver) in outputs.iter().enumerate() {
            if driver == g {
                result.insert(po);
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdx_netlist::{GateKind, NetlistBuilder};

    /// in0 ─┬─ AND(in0, c1) ── po0
    ///       └─ AND(in0, c0) ── po1
    fn blocked_net() -> (Netlist, GateId) {
        let mut b = NetlistBuilder::new();
        let i0 = b.add_input("i0");
        let c1 = b.add_gate(GateKind::Const1, vec![]);
        let c0 = b.add_gate(GateKind::Const0, vec![]);
        let a = b.add_gate(GateKind::And, vec![i0, c1]);
        let z = b.add_gate(GateKind::And, vec![i0, c0]);
        b.add_output(a);
        b.add_output(z);
        (b.build().expect("valid"), i0)
    }

    #[test]
    fn observable_changes_is_blocked_by_constants() {
        let (n, i0) = blocked_net();
        let tables = AnalysisTables::compute(&n);
        let cone: Vec<GateId> = n.topo_order().to_vec();
        let obs = observable_changes(&n, &tables.constants, i0, &cone);
        // The AND with a Const0 side is pinned to 0 no matter what i0
        // does, so only po0 can observe a change at i0.
        assert!(obs.contains(0));
        assert!(!obs.contains(1));
        // Pure reachability says both POs are reachable.
        assert!(tables.reach.reach(i0).contains(0));
        assert!(tables.reach.reach(i0).contains(1));
    }

    #[test]
    fn observable_changes_counts_own_po_bits() {
        let mut b = NetlistBuilder::new();
        let i0 = b.add_input("i0");
        b.add_output(i0);
        b.add_output(i0);
        let n = b.build().expect("valid");
        let consts = Constants::compute(&n);
        let obs = observable_changes(&n, &consts, i0, &[]);
        assert!(obs.contains(0) && obs.contains(1));
        assert_eq!(obs.count(), 2);
    }

    #[test]
    fn tables_compute_is_consistent() {
        let (n, _) = blocked_net();
        let t = AnalysisTables::compute(&n);
        assert!(t.dominators.validate());
        assert_eq!(t.constants.len(), n.len());
        // c1, c0 are constant lines; z = AND(i0, c0) is constant too.
        assert_eq!(t.constants.const_lines(), 3);
    }
}
