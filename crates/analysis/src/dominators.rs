//! Per-line output-side dominator sets.
//!
//! `dom(l)` is the set of lines that *every* propagation path from `l` to
//! any primary output must cross — the single-path chokepoints a fault
//! effect at `l` is forced through. A line listed as a primary output is
//! observed directly, so its dominator set is just `{l}`; a dead line (no
//! path to any output) has no defined dominator set and is reported as
//! `None`. Computed as a backward intersection dataflow on the shared
//! worklist engine.
//!
//! In this workspace the table is telemetry, a lint substrate, and a
//! chaos-engineering target (`corrupt_for_chaos` + `validate` form the
//! engine's detect-and-rebuild cycle); the candidate pruner gets its power
//! from the finer-grained [`crate::observable_changes`] query instead.

use incdx_netlist::{GateId, Netlist};

use crate::dataflow::{solve, Dataflow, Direction};

/// Per-line output-side dominator sets for one netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DominatorTable {
    /// Sorted, deduplicated dominator set per line; `None` for lines with
    /// no path to any primary output.
    doms: Vec<Option<Vec<GateId>>>,
}

struct DomProp {
    is_po: Vec<bool>,
}

impl Dataflow for DomProp {
    type Fact = Option<Vec<GateId>>;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn init(&self, _netlist: &Netlist, _id: GateId) -> Self::Fact {
        None
    }

    fn transfer(&self, netlist: &Netlist, id: GateId, facts: &[Self::Fact]) -> Self::Fact {
        if self.is_po[id.index()] {
            // Directly observed: a PO dominates only itself.
            return Some(vec![id]);
        }
        // Meet (intersection) over observed fanouts; None is the identity.
        let mut acc: Option<Vec<GateId>> = None;
        for &f in netlist.fanouts(id) {
            let Some(theirs) = &facts[f.index()] else {
                continue;
            };
            acc = Some(match acc {
                None => theirs.clone(),
                Some(mine) => intersect_sorted(&mine, theirs),
            });
        }
        acc.map(|mut set| {
            if let Err(pos) = set.binary_search(&id) {
                set.insert(pos, id);
            }
            set
        })
    }
}

fn intersect_sorted(a: &[GateId], b: &[GateId]) -> Vec<GateId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

impl DominatorTable {
    /// Computes the dominator table for `netlist`.
    pub fn compute(netlist: &Netlist) -> Self {
        let mut is_po = vec![false; netlist.len()];
        for &po in netlist.outputs() {
            // Out-of-range output references are ignored (hazardous
            // structures; the lints report them separately).
            if let Some(flag) = is_po.get_mut(po.index()) {
                *flag = true;
            }
        }
        DominatorTable {
            doms: solve(netlist, &DomProp { is_po }),
        }
    }

    /// The sorted dominator set of `line` (includes `line` itself), or
    /// `None` when the line has no path to any primary output.
    pub fn dominators(&self, line: GateId) -> Option<&[GateId]> {
        self.doms.get(line.index())?.as_deref()
    }

    /// Number of lines with at least one *strict* dominator (a chokepoint
    /// other than the line itself).
    pub fn dominated_lines(&self) -> usize {
        self.doms
            .iter()
            .filter(|d| d.as_ref().is_some_and(|s| s.len() > 1))
            .count()
    }

    /// Number of lines in the table.
    pub fn len(&self) -> usize {
        self.doms.len()
    }

    /// True when the table covers no lines.
    pub fn is_empty(&self) -> bool {
        self.doms.is_empty()
    }

    /// Structural self-check: every defined set must be strictly sorted,
    /// in range, and contain its own line (reflexivity). The engine runs
    /// this after the chaos layer has had a chance to corrupt the table.
    pub fn validate(&self) -> bool {
        let n = self.doms.len();
        for (i, dom) in self.doms.iter().enumerate() {
            let Some(set) = dom else { continue };
            if !set.windows(2).all(|w| w[0] < w[1]) {
                return false;
            }
            if set.iter().any(|g| g.index() >= n) {
                return false;
            }
            if set.binary_search(&GateId::from_index(i)).is_err() {
                return false;
            }
        }
        true
    }

    /// Deterministic chaos corruption: removes the reflexive entry from
    /// the last defined dominator set, which `validate` must catch.
    /// Returns false when the table has nothing to corrupt.
    pub fn corrupt_for_chaos(&mut self) -> bool {
        for (i, dom) in self.doms.iter_mut().enumerate().rev() {
            if let Some(set) = dom {
                let me = GateId::from_index(i);
                set.retain(|&g| g != me);
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdx_netlist::{GateKind, NetlistBuilder};

    /// i0 → NOT → a ─┬─ AND(a, i1) ─┐
    ///                └─ OR(a, i1) ──┴─ XOR → po
    /// Every path from a (and from i0) must cross the XOR.
    fn diamond() -> (incdx_netlist::Netlist, GateId, GateId, GateId) {
        let mut b = NetlistBuilder::new();
        let i0 = b.add_input("i0");
        let i1 = b.add_input("i1");
        let a = b.add_gate(GateKind::Not, vec![i0]);
        let t = b.add_gate(GateKind::And, vec![a, i1]);
        let e = b.add_gate(GateKind::Or, vec![a, i1]);
        let x = b.add_gate(GateKind::Xor, vec![t, e]);
        b.add_output(x);
        (b.build().expect("valid"), i0, a, x)
    }

    #[test]
    fn diamond_reconverges_at_the_xor() {
        let (n, i0, a, x) = diamond();
        let d = DominatorTable::compute(&n);
        let da = d.dominators(a).expect("observed");
        assert!(da.contains(&a) && da.contains(&x));
        assert_eq!(da.len(), 2); // the branches cancel in the meet
        let di = d.dominators(i0).expect("observed");
        assert!(di.contains(&i0) && di.contains(&a) && di.contains(&x));
        assert!(d.dominated_lines() >= 2);
        assert!(d.validate());
    }

    #[test]
    fn dead_lines_have_no_dominators() {
        let mut b = NetlistBuilder::new();
        let i0 = b.add_input("i0");
        let dead = b.add_gate(GateKind::Not, vec![i0]);
        let live = b.add_gate(GateKind::Buf, vec![i0]);
        b.add_output(live);
        let n = b.build().expect("valid");
        let d = DominatorTable::compute(&n);
        assert!(d.dominators(dead).is_none());
        assert!(d.dominators(live).is_some());
        assert!(d.validate());
    }

    #[test]
    fn chain_dominators_are_the_whole_chain() {
        let mut b = NetlistBuilder::new();
        let i0 = b.add_input("i0");
        let g1 = b.add_gate(GateKind::Not, vec![i0]);
        let g2 = b.add_gate(GateKind::Buf, vec![g1]);
        b.add_output(g2);
        let n = b.build().expect("valid");
        let d = DominatorTable::compute(&n);
        assert_eq!(d.dominators(i0).expect("observed").len(), 3);
    }

    #[test]
    fn corruption_is_caught_by_validate() {
        let (n, ..) = diamond();
        let mut d = DominatorTable::compute(&n);
        assert!(d.validate());
        assert!(d.corrupt_for_chaos());
        assert!(!d.validate());
        // Rebuild recovers.
        d = DominatorTable::compute(&n);
        assert!(d.validate());
    }
}
