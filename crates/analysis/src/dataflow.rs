//! The shared fixed-point worklist engine behind every analysis in this
//! crate.
//!
//! An analysis describes itself as a [`Dataflow`] problem — a direction, a
//! bottom fact per gate, and a monotone transfer function — and [`solve`]
//! iterates to the least fixed point. The engine makes no use of the
//! netlist's topological order beyond *seeding* the worklist in a
//! convergence-friendly order, so it terminates on cyclic netlists (which
//! `from_parts_unchecked` can build and the lint layer must tolerate) as
//! long as the transfer function is monotone over a finite-height lattice.

use std::collections::VecDeque;

use incdx_netlist::{GateId, Netlist};

/// Direction facts propagate in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from fanins to fanouts (e.g. constant propagation).
    Forward,
    /// Facts flow from fanouts to fanins (e.g. dominators, reachability).
    Backward,
}

/// A monotone dataflow problem over a [`Netlist`].
///
/// # Contract
///
/// `transfer` must be *monotone*: raising any input fact (in the
/// analysis's lattice order) must not lower the output fact. Together
/// with a finite-height lattice this guarantees [`solve`] terminates;
/// the engine does not enforce it.
pub trait Dataflow {
    /// The lattice element tracked per gate.
    type Fact: Clone + PartialEq;

    /// Which way facts flow.
    fn direction(&self) -> Direction;

    /// The initial (bottom) fact for `id`.
    fn init(&self, netlist: &Netlist, id: GateId) -> Self::Fact;

    /// Recomputes the fact for `id` from the current fact table.
    ///
    /// A forward analysis reads the facts of `id`'s fanins; a backward
    /// analysis reads the facts of `id`'s fanouts. Either way the whole
    /// table is available, indexed by `GateId::index`.
    fn transfer(&self, netlist: &Netlist, id: GateId, facts: &[Self::Fact]) -> Self::Fact;
}

/// Iterates `analysis` to its least fixed point over `netlist`, returning
/// one fact per gate (indexed by `GateId::index`).
pub fn solve<A: Dataflow>(netlist: &Netlist, analysis: &A) -> Vec<A::Fact> {
    let n = netlist.len();
    let mut facts: Vec<A::Fact> = (0..n)
        .map(|i| analysis.init(netlist, GateId::from_index(i)))
        .collect();
    let mut queued = vec![true; n];
    // Seeding in (reverse) topological order makes acyclic netlists
    // converge in a single sweep; correctness does not depend on it.
    let mut work: VecDeque<GateId> = match analysis.direction() {
        Direction::Forward => netlist.topo_order().iter().copied().collect(),
        Direction::Backward => netlist.topo_order().iter().rev().copied().collect(),
    };
    while let Some(id) = work.pop_front() {
        queued[id.index()] = false;
        let next = analysis.transfer(netlist, id, &facts);
        if next != facts[id.index()] {
            facts[id.index()] = next;
            let deps: &[GateId] = match analysis.direction() {
                Direction::Forward => netlist.fanouts(id),
                Direction::Backward => netlist.gate(id).fanins(),
            };
            for &d in deps {
                if !queued[d.index()] {
                    queued[d.index()] = true;
                    work.push_back(d);
                }
            }
        }
    }
    facts
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdx_netlist::{Gate, GateKind, Netlist};

    /// A toy forward analysis: each gate's fact is its depth (input = 0,
    /// otherwise 1 + max fanin depth), capped at 1000 so the lattice has
    /// finite height even on cycles.
    struct Depth;

    impl Dataflow for Depth {
        type Fact = u32;
        fn direction(&self) -> Direction {
            Direction::Forward
        }
        fn init(&self, _netlist: &Netlist, _id: GateId) -> u32 {
            0
        }
        fn transfer(&self, netlist: &Netlist, id: GateId, facts: &[u32]) -> u32 {
            let gate = netlist.gate(id);
            let m = gate
                .fanins()
                .iter()
                .map(|f| facts[f.index()])
                .max()
                .map(|d| d + 1)
                .unwrap_or(0);
            m.min(1000)
        }
    }

    #[test]
    fn solve_terminates_on_cyclic_netlists() {
        // g1 = BUF(g2), g2 = BUF(g1): a combinational loop.
        let gates = vec![
            Gate::new(GateKind::Buf, vec![GateId(1)]),
            Gate::new(GateKind::Buf, vec![GateId(0)]),
        ];
        let n = Netlist::from_parts_unchecked(gates, vec![], vec![GateId(0)]);
        assert!(!n.is_acyclic());
        let facts = solve(&n, &Depth);
        // The depth cap (lattice top) is reached on the cycle.
        assert_eq!(facts, vec![1000, 1000]);
    }

    #[test]
    fn solve_matches_single_sweep_on_acyclic() {
        let mut b = Netlist::builder();
        let a = b.add_input("a");
        let x = b.add_gate(GateKind::Not, vec![a]);
        let y = b.add_gate(GateKind::And, vec![a, x]);
        b.add_output(y);
        let n = b.build().expect("valid");
        let facts = solve(&n, &Depth);
        assert_eq!(facts[a.index()], 0);
        assert_eq!(facts[x.index()], 1);
        assert_eq!(facts[y.index()], 2);
    }
}
