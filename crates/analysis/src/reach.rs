//! Primary-output reachability.
//!
//! For every line, the set of *PO positions* (indices into
//! `Netlist::outputs()`, not gate ids — the same gate may drive several
//! output positions) its fanout cone touches. Computed as a backward
//! union dataflow on the shared worklist engine; the result is purely
//! structural and independent of any test set.

use incdx_netlist::{GateId, Netlist};

use crate::dataflow::{solve, Dataflow, Direction};

/// A set of primary-output positions, stored as a bitset.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PoSet {
    words: Vec<u64>,
}

impl PoSet {
    /// An empty set sized for `num_pos` output positions.
    pub fn empty(num_pos: usize) -> Self {
        PoSet {
            words: vec![0; num_pos.div_ceil(64)],
        }
    }

    /// Adds position `po` (ignored when out of range).
    pub fn insert(&mut self, po: usize) {
        if let Some(w) = self.words.get_mut(po / 64) {
            *w |= 1u64 << (po % 64);
        }
    }

    /// Is position `po` in the set?
    pub fn contains(&self, po: usize) -> bool {
        self.words
            .get(po / 64)
            .is_some_and(|w| w & (1u64 << (po % 64)) != 0)
    }

    /// True when no position is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of positions in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Do the two sets share any position?
    pub fn intersects(&self, other: &PoSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .any(|(a, b)| a & b != 0)
    }

    /// Is `other` a subset of `self`? Positions beyond `self`'s width
    /// count as absent from `self`.
    pub fn contains_all(&self, other: &PoSet) -> bool {
        for (i, &b) in other.words.iter().enumerate() {
            let a = self.words.get(i).copied().unwrap_or(0);
            if b & !a != 0 {
                return false;
            }
        }
        true
    }

    /// Unions `other` into `self` (widening as needed).
    pub fn union_with(&mut self, other: &PoSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (a, &b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
    }

    /// Iterates the positions in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64).filter_map(move |b| (w & (1u64 << b) != 0).then_some(wi * 64 + b))
        })
    }
}

/// Per-line PO reachability for one netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoReach {
    sets: Vec<PoSet>,
    empty: PoSet,
}

struct ReachProp {
    /// PO positions each gate drives directly.
    own: Vec<PoSet>,
}

impl Dataflow for ReachProp {
    type Fact = PoSet;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn init(&self, _netlist: &Netlist, id: GateId) -> PoSet {
        self.own[id.index()].clone()
    }

    fn transfer(&self, netlist: &Netlist, id: GateId, facts: &[PoSet]) -> PoSet {
        let mut set = self.own[id.index()].clone();
        for &f in netlist.fanouts(id) {
            set.union_with(&facts[f.index()]);
        }
        set
    }
}

impl PoReach {
    /// Computes reachability for every line of `netlist`.
    pub fn compute(netlist: &Netlist) -> Self {
        let num_pos = netlist.outputs().len();
        let mut own = vec![PoSet::empty(num_pos); netlist.len()];
        for (po, &driver) in netlist.outputs().iter().enumerate() {
            // Out-of-range output references (hazardous structures) have
            // no driver to attribute the position to.
            if let Some(set) = own.get_mut(driver.index()) {
                set.insert(po);
            }
        }
        PoReach {
            sets: solve(netlist, &ReachProp { own }),
            empty: PoSet::empty(num_pos),
        }
    }

    /// The PO positions reachable from `line` (empty if out of range).
    pub fn reach(&self, line: GateId) -> &PoSet {
        self.sets.get(line.index()).unwrap_or(&self.empty)
    }

    /// Number of lines analysed.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// True when no lines were analysed.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdx_netlist::{GateKind, NetlistBuilder};

    #[test]
    fn reach_follows_fanout_cones() {
        let mut b = NetlistBuilder::new();
        let i0 = b.add_input("i0");
        let i1 = b.add_input("i1");
        let a = b.add_gate(GateKind::And, vec![i0, i1]);
        let n0 = b.add_gate(GateKind::Not, vec![i1]);
        b.add_output(a);
        b.add_output(n0);
        let n = b.build().expect("valid");
        let r = PoReach::compute(&n);
        assert!(r.reach(i0).contains(0) && !r.reach(i0).contains(1));
        assert!(r.reach(i1).contains(0) && r.reach(i1).contains(1));
        assert_eq!(r.reach(a).count(), 1);
    }

    #[test]
    fn duplicate_output_listings_get_distinct_positions() {
        let mut b = NetlistBuilder::new();
        let i0 = b.add_input("i0");
        b.add_output(i0);
        b.add_output(i0);
        let n = b.build().expect("valid");
        let r = PoReach::compute(&n);
        assert_eq!(r.reach(i0).count(), 2);
        assert_eq!(r.reach(i0).iter().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn poset_ops() {
        let mut a = PoSet::empty(70);
        a.insert(3);
        a.insert(65);
        let mut b = PoSet::empty(70);
        b.insert(65);
        assert!(a.intersects(&b));
        assert!(a.contains_all(&b));
        assert!(!b.contains_all(&a));
        b.insert(4);
        assert!(!a.contains_all(&b));
        a.union_with(&b);
        assert!(a.contains(4));
        assert_eq!(a.count(), 3);
        assert!(PoSet::empty(8).is_empty());
    }
}
