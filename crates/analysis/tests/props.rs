//! Property tests of the static analyses against brute-force recomputation
//! and bit-parallel simulation on random DAGs.

use incdx_analysis::{observable_changes, AnalysisTables, Constants, PoReach, Ternary};
use incdx_gen::{random_dag, RandomDagConfig};
use incdx_netlist::Netlist;
use incdx_sim::{PackedMatrix, Simulator};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dag(seed: u64) -> Netlist {
    random_dag(
        &RandomDagConfig {
            inputs: 6,
            gates: 48,
            outputs: 5,
            max_fanin: 3,
            xor_fraction: 0.15,
            window: 16,
        },
        seed,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Constant propagation is sound: a line proven Const0/Const1 holds
    /// that value on every simulated vector.
    #[test]
    fn proven_constants_hold_under_simulation(seed in 0u64..300) {
        let n = dag(seed);
        let consts = Constants::compute(&n);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD00D);
        let pi = PackedMatrix::random(n.inputs().len(), 128, &mut rng);
        let vals = Simulator::new().run(&n, &pi);
        for id in n.ids() {
            if let Some(v) = consts.value(id).constant() {
                let mut bits = vals.to_bits(id.index());
                bits.mask_tail();
                let want = if v { bits.num_vectors() } else { 0 };
                let ones: u32 = bits.words().iter().map(|w| w.count_ones()).sum();
                prop_assert_eq!(ones as usize, want, "line {} pinned to {}", id, v);
            }
            // Acyclic netlists never leave a line unreached.
            prop_assert!(consts.value(id) != Ternary::Unreached);
        }
    }

    /// PO reachability agrees with the netlist's own fanout-cone walk,
    /// and observable_changes is a sound refinement of it.
    #[test]
    fn reach_matches_fanout_cones(seed in 0u64..300) {
        let n = dag(seed);
        let r = PoReach::compute(&n);
        let consts = Constants::compute(&n);
        for id in n.ids() {
            let cone = n.fanout_cone_sorted(id);
            let in_cone = |g: incdx_netlist::GateId| g == id || cone.contains(&g);
            for (po, &driver) in n.outputs().iter().enumerate() {
                prop_assert_eq!(r.reach(id).contains(po), in_cone(driver));
            }
            let obs = observable_changes(&n, &consts, id, &cone);
            prop_assert!(r.reach(id).contains_all(&obs), "obs ⊆ reach at {}", id);
        }
    }

    /// Dominator sets validate, contain their line, and every dominator
    /// lies inside the line's fanout cone (a chokepoint must be on every
    /// path, hence on some path).
    #[test]
    fn dominators_are_reflexive_and_in_cone(seed in 0u64..300) {
        let n = dag(seed);
        let t = AnalysisTables::compute(&n);
        prop_assert!(t.dominators.validate());
        for id in n.ids() {
            let reachable = !t.reach.reach(id).is_empty();
            match t.dominators.dominators(id) {
                None => prop_assert!(!reachable, "observed line {} lacks dominators", id),
                Some(doms) => {
                    prop_assert!(reachable);
                    prop_assert!(doms.contains(&id));
                    let cone = n.fanout_cone_sorted(id);
                    for &d in doms {
                        prop_assert!(d == id || cone.contains(&d));
                    }
                }
            }
        }
    }
}
