//! SCOAP testability measures (Goldstein 1979): combinational
//! controllability `CC0`/`CC1` (how hard it is to set a line to 0/1) and
//! observability `CO` (how hard to propagate a line to a primary output).
//! PODEM's backtrace uses them to pick the cheapest input for an
//! objective, which cuts backtracking substantially on reconvergent
//! circuits.

use incdx_netlist::{GateId, GateKind, Netlist};

/// Per-line SCOAP measures. Values saturate at [`Scoap::INFINITY`]
/// (unreachable/unobservable lines, e.g. behind constants).
#[derive(Debug, Clone)]
pub struct Scoap {
    cc0: Vec<u32>,
    cc1: Vec<u32>,
    co: Vec<u32>,
}

impl Scoap {
    /// Saturation value for untestable measures.
    pub const INFINITY: u32 = u32::MAX / 4;

    /// Computes all three measures for a combinational netlist.
    ///
    /// # Panics
    ///
    /// Panics if the netlist contains DFFs (scan-convert first).
    pub fn compute(netlist: &Netlist) -> Self {
        assert!(
            netlist.is_combinational(),
            "SCOAP needs a combinational netlist"
        );
        let n = netlist.len();
        let mut cc0 = vec![Self::INFINITY; n];
        let mut cc1 = vec![Self::INFINITY; n];
        // Controllability: forward pass in topological order.
        for &id in netlist.topo_order() {
            let gate = netlist.gate(id);
            let i = id.index();
            let f0 = |x: GateId| cc0[x.index()];
            let f1 = |x: GateId| cc1[x.index()];
            let (c0, c1) = match gate.kind() {
                GateKind::Input => (1, 1),
                GateKind::Const0 => (0, Self::INFINITY),
                GateKind::Const1 => (Self::INFINITY, 0),
                GateKind::Buf => (f0(gate.fanins()[0]) + 1, f1(gate.fanins()[0]) + 1),
                GateKind::Not => (f1(gate.fanins()[0]) + 1, f0(gate.fanins()[0]) + 1),
                GateKind::And | GateKind::Nand => {
                    // 0 at the AND core: cheapest single 0; 1: all 1s.
                    let zero = gate.fanins().iter().map(|&x| f0(x)).min().unwrap_or(0);
                    let one: u32 = gate
                        .fanins()
                        .iter()
                        .map(|&x| f1(x))
                        .fold(0u32, |a, b| a.saturating_add(b));
                    if gate.kind() == GateKind::And {
                        (sat(zero) + 1, sat(one) + 1)
                    } else {
                        (sat(one) + 1, sat(zero) + 1)
                    }
                }
                GateKind::Or | GateKind::Nor => {
                    let one = gate.fanins().iter().map(|&x| f1(x)).min().unwrap_or(0);
                    let zero: u32 = gate
                        .fanins()
                        .iter()
                        .map(|&x| f0(x))
                        .fold(0u32, |a, b| a.saturating_add(b));
                    if gate.kind() == GateKind::Or {
                        (sat(zero) + 1, sat(one) + 1)
                    } else {
                        (sat(one) + 1, sat(zero) + 1)
                    }
                }
                GateKind::Xor | GateKind::Xnor => {
                    // Minimal-cost parity assignments (exact for 2 inputs,
                    // the usual approximation beyond).
                    let mut even = 0u32; // cheapest all-even-parity cost
                    let mut odd = Self::INFINITY; // cheapest odd-parity cost
                    for &x in gate.fanins() {
                        let (e, o) = (even, odd);
                        even = (e.saturating_add(f0(x))).min(o.saturating_add(f1(x)));
                        odd = (e.saturating_add(f1(x))).min(o.saturating_add(f0(x)));
                    }
                    if gate.kind() == GateKind::Xor {
                        (sat(even) + 1, sat(odd) + 1)
                    } else {
                        (sat(odd) + 1, sat(even) + 1)
                    }
                }
                // State-holding elements never appear in the combinational
                // netlists the engine feeds us; saturate rather than abort
                // so a hostile netlist degrades instead of panicking.
                GateKind::Dff => (Self::INFINITY, Self::INFINITY),
            };
            cc0[i] = sat(c0);
            cc1[i] = sat(c1);
        }
        // Observability: backward pass in reverse topological order.
        let mut co = vec![Self::INFINITY; n];
        for &o in netlist.outputs() {
            co[o.index()] = 0;
        }
        for &id in netlist.topo_order().iter().rev() {
            let gate = netlist.gate(id);
            let out_co = co[id.index()];
            if out_co >= Self::INFINITY {
                continue;
            }
            for (port, &f) in gate.fanins().iter().enumerate() {
                // To observe fanin `f` through this gate: the gate's own
                // observability plus the cost of making every sibling
                // non-controlling (AND/OR family) or of fixing siblings
                // (XOR: any values do — their controllability still
                // costs).
                let side_cost: u32 = match gate.kind() {
                    GateKind::Buf | GateKind::Not => 0,
                    GateKind::And | GateKind::Nand => gate
                        .fanins()
                        .iter()
                        .enumerate()
                        .filter(|(p, _)| *p != port)
                        .map(|(_, &s)| cc1[s.index()])
                        .fold(0u32, |a, b| a.saturating_add(b)),
                    GateKind::Or | GateKind::Nor => gate
                        .fanins()
                        .iter()
                        .enumerate()
                        .filter(|(p, _)| *p != port)
                        .map(|(_, &s)| cc0[s.index()])
                        .fold(0u32, |a, b| a.saturating_add(b)),
                    GateKind::Xor | GateKind::Xnor => gate
                        .fanins()
                        .iter()
                        .enumerate()
                        .filter(|(p, _)| *p != port)
                        .map(|(_, &s)| cc0[s.index()].min(cc1[s.index()]))
                        .fold(0u32, |a, b| a.saturating_add(b)),
                    _ => continue,
                };
                let candidate = sat(out_co.saturating_add(side_cost).saturating_add(1));
                if candidate < co[f.index()] {
                    co[f.index()] = candidate;
                }
            }
        }
        Scoap { cc0, cc1, co }
    }

    /// Cost of setting `line` to 0.
    pub fn cc0(&self, line: GateId) -> u32 {
        self.cc0[line.index()]
    }

    /// Cost of setting `line` to 1.
    pub fn cc1(&self, line: GateId) -> u32 {
        self.cc1[line.index()]
    }

    /// Cost of setting `line` to `value`.
    pub fn cc(&self, line: GateId, value: bool) -> u32 {
        if value {
            self.cc1(line)
        } else {
            self.cc0(line)
        }
    }

    /// Cost of observing `line` at a primary output.
    pub fn co(&self, line: GateId) -> u32 {
        self.co[line.index()]
    }
}

fn sat(v: u32) -> u32 {
    v.min(Scoap::INFINITY)
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdx_netlist::parse_bench;

    #[test]
    fn textbook_values_on_a_small_circuit() {
        // y = AND(a, b): CC0(y) = min(1,1)+1 = 2, CC1(y) = 1+1+1 = 3.
        let n = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n").unwrap();
        let s = Scoap::compute(&n);
        let a = n.find_by_name("a").unwrap();
        let y = n.find_by_name("y").unwrap();
        assert_eq!(s.cc0(a), 1);
        assert_eq!(s.cc1(a), 1);
        assert_eq!(s.cc0(y), 2);
        assert_eq!(s.cc1(y), 3);
        // CO(y) = 0 (PO); CO(a) = CO(y) + CC1(b) + 1 = 2.
        assert_eq!(s.co(y), 0);
        assert_eq!(s.co(a), 2);
    }

    #[test]
    fn inverter_swaps_controllabilities() {
        let n = parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n").unwrap();
        let s = Scoap::compute(&n);
        let y = n.find_by_name("y").unwrap();
        assert_eq!(s.cc0(y), 2); // needs a=1
        assert_eq!(s.cc1(y), 2); // needs a=0
    }

    #[test]
    fn xor_parity_costs() {
        // y = XOR(a, b): CC0 = min(0+0, 1+1 costs) + 1 = 3 (both same),
        // CC1 = 3 (one of each) with unit inputs.
        let n = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n").unwrap();
        let s = Scoap::compute(&n);
        let y = n.find_by_name("y").unwrap();
        assert_eq!(s.cc0(y), 3);
        assert_eq!(s.cc1(y), 3);
    }

    #[test]
    fn constants_are_one_sided() {
        let mut b = incdx_netlist::Netlist::builder();
        let a = b.add_input("a");
        let one = b.add_gate(GateKind::Const1, vec![]);
        let y = b.add_gate(GateKind::And, vec![a, one]);
        b.add_output(y);
        let n = b.build().unwrap();
        let s = Scoap::compute(&n);
        assert_eq!(s.cc1(one), 0);
        assert!(s.cc0(one) >= Scoap::INFINITY);
        // y = a AND 1: CC1(y) = CC1(a) + CC1(one) + 1 = 2.
        assert_eq!(s.cc1(y), 2);
    }

    #[test]
    fn unobservable_dead_logic_saturates() {
        let n = parse_bench("INPUT(a)\nOUTPUT(y)\ndead = NOT(a)\ny = BUF(a)\n").unwrap();
        let s = Scoap::compute(&n);
        let dead = n.find_by_name("dead").unwrap();
        assert!(s.co(dead) >= Scoap::INFINITY);
        let a = n.find_by_name("a").unwrap();
        assert_eq!(s.co(a), 1); // through the buffer
    }

    #[test]
    fn deeper_lines_cost_more() {
        let n = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(y)\n\
             x1 = AND(a, b)\nx2 = AND(x1, c)\ny = AND(x2, d)\n",
        )
        .unwrap();
        let s = Scoap::compute(&n);
        let x1 = n.find_by_name("x1").unwrap();
        let x2 = n.find_by_name("x2").unwrap();
        let y = n.find_by_name("y").unwrap();
        assert!(s.cc1(x1) < s.cc1(x2));
        assert!(s.cc1(x2) < s.cc1(y));
        assert!(s.co(y) < s.co(x2));
        assert!(s.co(x2) < s.co(x1));
    }
}
