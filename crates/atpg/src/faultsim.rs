//! Parallel-pattern single-fault-propagation (PPSFP) fault simulation:
//! 64 vectors per word, one fanout-cone resimulation per fault.

use incdx_fault::StuckAt;
use incdx_netlist::Netlist;
use incdx_sim::{PackedMatrix, Simulator};

/// Simulates every fault of `faults` against the fault-free responses of
/// `netlist` on the vectors of `pi` and reports which are detected (differ
/// on at least one PO bit).
///
/// Cost: one full fault-free simulation plus one fanout-cone resimulation
/// per fault.
///
/// # Panics
///
/// Panics if the netlist is not combinational or `pi` has the wrong shape.
///
/// # Example
///
/// ```
/// use incdx_atpg::fault_simulate;
/// use incdx_fault::StuckAt;
/// use incdx_netlist::parse_bench;
/// use incdx_sim::PackedMatrix;
///
/// let n = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n")?;
/// let y = n.find_by_name("y").unwrap();
/// let mut pi = PackedMatrix::new(2, 1);
/// pi.set(0, 0, true);
/// pi.set(1, 0, true); // the single vector a=b=1
/// let det = fault_simulate(&n, &[StuckAt::new(y, false), StuckAt::new(y, true)], &pi);
/// assert_eq!(det, vec![true, false]); // detects y/0, not y/1
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn fault_simulate(netlist: &Netlist, faults: &[StuckAt], pi: &PackedMatrix) -> Vec<bool> {
    let mut sim = Simulator::new();
    let base = sim.run(netlist, pi);
    let wpr = base.words_per_row();
    let mut vals = base.clone();
    let mut detected = Vec::with_capacity(faults.len());
    let mut saved: Vec<u64> = Vec::new();
    for fault in faults {
        let cone = netlist.fanout_cone_sorted(fault.line());
        // Save the cone rows, force the fault site, resimulate the cone.
        saved.clear();
        for &g in &cone {
            saved.extend_from_slice(vals.row(g.index()));
        }
        let forced = if fault.value() { !0u64 } else { 0u64 };
        vals.row_mut(fault.line().index()).fill(forced);
        sim.run_cone(netlist, &mut vals, &cone);
        // Detected iff any PO row inside the cone changed on a real bit.
        let nv = pi.num_vectors();
        let tail = incdx_sim::PackedBits::new(nv).tail_mask();
        let mut hit = false;
        'po: for &o in netlist.outputs() {
            if !cone.contains(&o) {
                continue;
            }
            let a = vals.row(o.index());
            let b = base.row(o.index());
            for w in 0..wpr {
                let mut diff = a[w] ^ b[w];
                if w == wpr - 1 {
                    diff &= tail;
                }
                if diff != 0 {
                    hit = true;
                    break 'po;
                }
            }
        }
        detected.push(hit);
        // Restore.
        for (i, &g) in cone.iter().enumerate() {
            vals.row_mut(g.index())
                .copy_from_slice(&saved[i * wpr..(i + 1) * wpr]);
        }
    }
    detected
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdx_gen::generate;
    use incdx_netlist::parse_bench;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Reference: full resimulation of the faulty circuit.
    fn detects_reference(n: &Netlist, fault: StuckAt, pi: &PackedMatrix) -> bool {
        let mut sim = Simulator::new();
        let good = sim.run(n, pi);
        let mut fn_ = n.clone();
        fault.apply(&mut fn_).unwrap();
        let bad = sim.run_for_inputs(&fn_, n.inputs(), pi);
        let nv = pi.num_vectors();
        n.outputs()
            .iter()
            .any(|o| (0..nv).any(|v| good.get(o.index(), v) != bad.get(o.index(), v)))
    }

    #[test]
    fn matches_full_resimulation_on_c17() {
        let n = parse_bench(
            "INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\nOUTPUT(22)\nOUTPUT(23)\n\
             10 = NAND(1, 3)\n11 = NAND(3, 6)\n16 = NAND(2, 11)\n19 = NAND(11, 7)\n\
             22 = NAND(10, 16)\n23 = NAND(16, 19)\n",
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let pi = PackedMatrix::random(5, 16, &mut rng);
        let faults: Vec<StuckAt> = n
            .ids()
            .flat_map(|id| [StuckAt::new(id, false), StuckAt::new(id, true)])
            .collect();
        let fast = fault_simulate(&n, &faults, &pi);
        for (f, &d) in faults.iter().zip(&fast) {
            assert_eq!(d, detects_reference(&n, *f, &pi), "{f}");
        }
    }

    #[test]
    fn matches_full_resimulation_on_generated_alu() {
        let n = generate("c880a").unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let pi = PackedMatrix::random(n.inputs().len(), 128, &mut rng);
        // Sample of faults across the circuit.
        let faults: Vec<StuckAt> = n
            .ids()
            .filter(|id| id.index() % 29 == 0)
            .flat_map(|id| [StuckAt::new(id, false), StuckAt::new(id, true)])
            .collect();
        let fast = fault_simulate(&n, &faults, &pi);
        for (f, &d) in faults.iter().zip(&fast) {
            assert_eq!(d, detects_reference(&n, *f, &pi), "{f}");
        }
    }

    #[test]
    fn restores_state_between_faults() {
        // Two identical faults must report identically (state leak check).
        let n = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n").unwrap();
        let y = n.find_by_name("y").unwrap();
        let mut pi = PackedMatrix::new(2, 2);
        pi.set(0, 0, true);
        pi.set(1, 0, true);
        let f = StuckAt::new(y, true);
        let det = fault_simulate(&n, &[f, f, f], &pi);
        assert_eq!(det, vec![true, true, true]);
    }
}
