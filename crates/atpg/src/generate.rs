//! Deterministic test-set generation: PODEM per fault with parallel fault
//! dropping — the workspace's stand-in for the Hamzaoglu–Patel vectors the
//! paper simulates (its reference \[3\]).

use incdx_fault::StuckAt;
use incdx_netlist::{GateKind, Netlist};
use incdx_sim::PackedMatrix;

use crate::faultsim::fault_simulate;
use crate::podem::{podem, PodemOutcome};

/// Parameters for [`generate_tests`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestGenConfig {
    /// PODEM backtrack budget per fault.
    pub backtrack_limit: usize,
    /// Drop newly-covered faults via fault simulation every `batch`
    /// generated vectors.
    pub batch: usize,
    /// Target one representative per structural equivalence class instead
    /// of every stem fault (see [`crate::FaultClasses`]); coverage is
    /// still reported over the full fault universe.
    pub collapse: bool,
    /// Run the reverse-order static compaction pass on the final set.
    pub compact: bool,
}

impl Default for TestGenConfig {
    /// 10 000 backtracks per fault, dropping every 64 vectors, with
    /// collapsing and compaction enabled.
    fn default() -> Self {
        TestGenConfig {
            backtrack_limit: 10_000,
            batch: 64,
            collapse: true,
            compact: true,
        }
    }
}

/// The result of [`generate_tests`].
#[derive(Debug, Clone)]
pub struct TestSet {
    /// Generated vectors, one inner `Vec<bool>` per vector (PI order).
    pub vectors: Vec<Vec<bool>>,
    /// Faults targeted (the full stem stuck-at list).
    pub total_faults: usize,
    /// Faults detected by `vectors`.
    pub detected: usize,
    /// Faults proven untestable — the redundancies `incdx-opt` removes.
    pub untestable: Vec<StuckAt>,
    /// Faults abandoned at the backtrack limit (coverage unknown).
    pub aborted: Vec<StuckAt>,
}

impl TestSet {
    /// Detected / (total − untestable): coverage of the testable faults.
    pub fn coverage(&self) -> f64 {
        let testable = self.total_faults - self.untestable.len();
        if testable == 0 {
            1.0
        } else {
            self.detected as f64 / testable as f64
        }
    }

    /// Packs the vectors into a matrix with one row per primary input —
    /// the shape [`incdx_sim::Simulator::run`] consumes.
    pub fn to_matrix(&self, num_inputs: usize) -> PackedMatrix {
        let mut m = PackedMatrix::new(num_inputs, self.vectors.len());
        for (v, vector) in self.vectors.iter().enumerate() {
            for (i, &bit) in vector.iter().enumerate() {
                m.set(i, v, bit);
            }
        }
        m
    }
}

/// Both polarities of every stem (gate and PI output) fault, excluding
/// constants and DFFs.
pub fn all_stuck_at_faults(netlist: &Netlist) -> Vec<StuckAt> {
    netlist
        .iter()
        .filter(|(_, g)| {
            !matches!(
                g.kind(),
                GateKind::Const0 | GateKind::Const1 | GateKind::Dff
            )
        })
        .flat_map(|(id, _)| [StuckAt::new(id, false), StuckAt::new(id, true)])
        .collect()
}

/// Generates a compact deterministic test set covering the stem stuck-at
/// faults of a combinational netlist, and proves the untestable ones
/// redundant.
///
/// # Panics
///
/// Panics if the netlist is not combinational.
///
/// # Example
///
/// ```
/// use incdx_atpg::{generate_tests, TestGenConfig};
/// use incdx_netlist::parse_bench;
///
/// let n = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n")?;
/// let ts = generate_tests(&n, &TestGenConfig::default());
/// assert!(ts.coverage() >= 1.0 - 1e-9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn generate_tests(netlist: &Netlist, config: &TestGenConfig) -> TestSet {
    assert!(
        netlist.is_combinational(),
        "test generation needs a combinational netlist"
    );
    let universe = all_stuck_at_faults(netlist);
    let total_faults = universe.len();
    let mut alive: Vec<StuckAt> = if config.collapse {
        crate::collapse::FaultClasses::build(netlist).representatives()
    } else {
        universe.clone()
    };
    let mut vectors: Vec<Vec<bool>> = Vec::new();
    let mut untestable = Vec::new();
    let mut aborted = Vec::new();
    let mut detected = 0usize;
    let mut pending: Vec<Vec<bool>> = Vec::new();

    let drop_detected =
        |alive: &mut Vec<StuckAt>, pending: &mut Vec<Vec<bool>>, detected: &mut usize| {
            if pending.is_empty() || alive.is_empty() {
                return;
            }
            let mut pi = PackedMatrix::new(netlist.inputs().len(), pending.len());
            for (v, vector) in pending.iter().enumerate() {
                for (i, &bit) in vector.iter().enumerate() {
                    pi.set(i, v, bit);
                }
            }
            let hit = fault_simulate(netlist, alive, &pi);
            let mut kept = Vec::with_capacity(alive.len());
            for (f, &h) in alive.iter().zip(&hit) {
                if h {
                    *detected += 1;
                } else {
                    kept.push(*f);
                }
            }
            *alive = kept;
            pending.clear();
        };

    while let Some(&fault) = alive.first() {
        match podem(netlist, fault, config.backtrack_limit) {
            PodemOutcome::Test(v) => {
                vectors.push(v.clone());
                pending.push(v);
                if pending.len() >= config.batch {
                    drop_detected(&mut alive, &mut pending, &mut detected);
                }
                // The generated vector is guaranteed to hit `fault`; if the
                // batch hasn't flushed yet, drop it eagerly so the loop
                // advances.
                if alive.first() == Some(&fault) {
                    drop_detected(&mut alive, &mut pending, &mut detected);
                }
            }
            PodemOutcome::Untestable => {
                untestable.push(fault);
                alive.retain(|f| *f != fault);
            }
            PodemOutcome::Aborted => {
                aborted.push(fault);
                alive.retain(|f| *f != fault);
            }
        }
    }
    drop_detected(&mut alive, &mut pending, &mut detected);
    if config.compact && !vectors.is_empty() {
        vectors = crate::compact::compact_tests(netlist, &universe, &vectors);
    }
    // Coverage accounting is always over the *full* fault universe:
    // re-simulate the final vector set (equivalence guarantees class
    // members are covered together, but untestable counts differ).
    if config.collapse || config.compact {
        let pi = {
            let mut m = PackedMatrix::new(netlist.inputs().len(), vectors.len().max(1));
            for (v, vector) in vectors.iter().enumerate() {
                for (i, &bit) in vector.iter().enumerate() {
                    m.set(i, v, bit);
                }
            }
            m
        };
        detected = if vectors.is_empty() {
            0
        } else {
            fault_simulate(netlist, &universe, &pi)
                .iter()
                .filter(|&&h| h)
                .count()
        };
        // Untestable counts scale from representatives to their classes.
        if config.collapse && !untestable.is_empty() {
            let classes = crate::collapse::FaultClasses::build(netlist);
            let mut expanded = Vec::new();
            for class in classes.classes() {
                if untestable.contains(&class[0]) {
                    expanded.extend_from_slice(class);
                }
            }
            untestable = expanded;
        }
    }
    TestSet {
        vectors,
        total_faults,
        detected,
        untestable,
        aborted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdx_gen::generate;
    use incdx_netlist::parse_bench;

    #[test]
    fn full_coverage_on_c17() {
        let n = generate("c17").unwrap();
        let ts = generate_tests(&n, &TestGenConfig::default());
        assert!(ts.untestable.is_empty());
        assert!(ts.aborted.is_empty());
        assert!(
            (ts.coverage() - 1.0).abs() < 1e-9,
            "coverage {}",
            ts.coverage()
        );
        assert!(!ts.vectors.is_empty());
    }

    #[test]
    fn finds_redundancy() {
        let n =
            parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\nx = AND(a, b)\ny = OR(a, x)\n").unwrap();
        let ts = generate_tests(&n, &TestGenConfig::default());
        let x = n.find_by_name("x").unwrap();
        assert!(ts.untestable.contains(&StuckAt::new(x, false)));
        assert!((ts.coverage() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn generated_vectors_actually_cover_on_alu() {
        let n = generate("c880a").unwrap();
        let ts = generate_tests(&n, &TestGenConfig::default());
        // Re-verify by independent fault simulation of the final set.
        let pi = ts.to_matrix(n.inputs().len());
        let faults = all_stuck_at_faults(&n);
        let hit = fault_simulate(&n, &faults, &pi);
        let detected = hit.iter().filter(|&&h| h).count();
        assert_eq!(detected, ts.detected, "reported coverage must be truthful");
        assert!(ts.coverage() > 0.95, "coverage {}", ts.coverage());
    }

    #[test]
    fn to_matrix_roundtrips() {
        let ts = TestSet {
            vectors: vec![vec![true, false], vec![false, true]],
            total_faults: 0,
            detected: 0,
            untestable: vec![],
            aborted: vec![],
        };
        let m = ts.to_matrix(2);
        assert!(m.get(0, 0) && !m.get(1, 0));
        assert!(!m.get(0, 1) && m.get(1, 1));
        assert!((ts.coverage() - 1.0).abs() < 1e-9);
    }
}
