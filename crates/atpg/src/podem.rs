//! The PODEM algorithm (Goel 1981): branch-and-bound over primary-input
//! assignments with objective/backtrace guidance, complete for single
//! stuck-at faults on combinational circuits.

use incdx_fault::StuckAt;
use incdx_netlist::{GateId, GateKind, Netlist};
use incdx_sim::logic5::{eval5, V3, V5};

use crate::scoap::Scoap;

/// Result of a [`podem`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PodemOutcome {
    /// A test was found: one bool per primary input (in
    /// [`Netlist::inputs`] order; don't-cares filled with 0).
    Test(Vec<bool>),
    /// The fault is provably untestable (redundant).
    Untestable,
    /// The backtrack limit was hit before a verdict.
    Aborted,
}

/// Generates a test for `fault` on the combinational netlist, or proves it
/// untestable. Complete (never wrong) up to `backtrack_limit`, after which
/// it reports [`PodemOutcome::Aborted`].
///
/// # Panics
///
/// Panics if the netlist is not combinational.
///
/// # Example
///
/// ```
/// use incdx_atpg::{podem, PodemOutcome};
/// use incdx_fault::StuckAt;
/// use incdx_netlist::parse_bench;
///
/// let n = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n")?;
/// let y = n.find_by_name("y").unwrap();
/// // y stuck-at-0 is tested by a=b=1.
/// assert_eq!(podem(&n, StuckAt::new(y, false), 1000), PodemOutcome::Test(vec![true, true]));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn podem(netlist: &Netlist, fault: StuckAt, backtrack_limit: usize) -> PodemOutcome {
    assert!(
        netlist.is_combinational(),
        "PODEM needs a combinational netlist"
    );
    let mut state = Podem {
        netlist,
        fault,
        values: vec![V5::X; netlist.len()],
        pi_assign: vec![V3::X; netlist.inputs().len()],
        scoap: Scoap::compute(netlist),
    };
    // Decision stack: (pi index, current value, flipped already?).
    let mut stack: Vec<(usize, bool, bool)> = Vec::new();
    let mut backtracks = 0usize;
    loop {
        state.imply();
        if state.test_found() {
            let vector = state
                .pi_assign
                .iter()
                .map(|v| v.to_bool().unwrap_or(false))
                .collect();
            return PodemOutcome::Test(vector);
        }
        let objective = state.objective();
        let next = objective.and_then(|(line, val)| state.backtrace(line, val));
        match next {
            Some((pi, val)) => {
                stack.push((pi, val, false));
                state.pi_assign[pi] = V3::from_bool(val);
            }
            None => {
                // Dead end: backtrack.
                loop {
                    match stack.pop() {
                        Some((pi, val, false)) => {
                            backtracks += 1;
                            if backtracks > backtrack_limit {
                                return PodemOutcome::Aborted;
                            }
                            stack.push((pi, !val, true));
                            state.pi_assign[pi] = V3::from_bool(!val);
                            break;
                        }
                        Some((pi, _, true)) => {
                            state.pi_assign[pi] = V3::X;
                        }
                        None => return PodemOutcome::Untestable,
                    }
                }
            }
        }
    }
}

struct Podem<'a> {
    netlist: &'a Netlist,
    fault: StuckAt,
    values: Vec<V5>,
    pi_assign: Vec<V3>,
    scoap: Scoap,
}

impl Podem<'_> {
    /// Full-forward 5-valued implication from the current PI assignment.
    fn imply(&mut self) {
        for (i, &pi) in self.netlist.inputs().iter().enumerate() {
            self.values[pi.index()] = match self.pi_assign[i] {
                V3::Zero => V5::Zero,
                V3::One => V5::One,
                V3::X => V5::X,
            };
            if pi == self.fault.line() {
                self.values[pi.index()] = self.fault_site_value(self.values[pi.index()]);
            }
        }
        for &id in self.netlist.topo_order() {
            let gate = self.netlist.gate(id);
            if gate.kind() == GateKind::Input {
                continue;
            }
            let fanins: Vec<V5> = gate
                .fanins()
                .iter()
                .map(|f| self.values[f.index()])
                .collect();
            let mut v = eval5(gate.kind(), &fanins);
            if id == self.fault.line() {
                v = self.fault_site_value(v);
            }
            self.values[id.index()] = v;
        }
    }

    /// At the fault site the faulty component is pinned to the stuck value.
    fn fault_site_value(&self, computed: V5) -> V5 {
        let good = computed.components().0;
        let faulty = V3::from_bool(self.fault.value());
        match good {
            V3::X => V5::X,
            g => V5::from_components(g, faulty),
        }
    }

    fn test_found(&self) -> bool {
        self.netlist
            .outputs()
            .iter()
            .any(|o| self.values[o.index()].is_fault_effect())
    }

    /// The next objective `(line, value)` per classic PODEM: activate the
    /// fault first, then advance the D-frontier. `None` means dead end.
    fn objective(&self) -> Option<(GateId, bool)> {
        let fv = self.values[self.fault.line().index()];
        match fv {
            V5::X => {
                // Activate: the good value must be the complement of the
                // stuck value.
                Some((self.fault.line(), !self.fault.value()))
            }
            V5::D | V5::Dbar => {
                // Propagate: pick a D-frontier gate and set one of its X
                // inputs to the non-controlling value.
                for &id in self.netlist.topo_order() {
                    let gate = self.netlist.gate(id);
                    if self.values[id.index()] != V5::X {
                        continue;
                    }
                    let has_effect = gate
                        .fanins()
                        .iter()
                        .any(|f| self.values[f.index()].is_fault_effect());
                    if !has_effect {
                        continue;
                    }
                    let x_input = gate
                        .fanins()
                        .iter()
                        .find(|f| self.values[f.index()] == V5::X);
                    if let Some(&xi) = x_input {
                        let noncontrolling = match gate.kind().controlling_value() {
                            Some(c) => !c,
                            // XOR/XNOR and single-input gates: any value
                            // propagates; aim for 0.
                            None => false,
                        };
                        return Some((xi, noncontrolling));
                    }
                }
                None
            }
            // The fault site settled to the stuck value in the good
            // circuit: this assignment cannot activate it.
            _ => None,
        }
    }

    /// Walks an objective back to an unassigned primary input, returning
    /// `(pi index, value)`.
    fn backtrace(&self, mut line: GateId, mut value: bool) -> Option<(usize, bool)> {
        loop {
            let gate = self.netlist.gate(line);
            if gate.kind() == GateKind::Input {
                // An Input gate outside the registered PI list only exists
                // in malformed netlists; treat it as an unsatisfiable
                // objective rather than aborting.
                let pi = self.netlist.inputs().iter().position(|&p| p == line)?;
                if self.pi_assign[pi] != V3::X {
                    return None; // objective conflicts with an assignment
                }
                return Some((pi, value));
            }
            let v_core = value ^ gate.kind().is_inverting();
            let x_inputs: Vec<GateId> = gate
                .fanins()
                .iter()
                .copied()
                .filter(|f| self.values[f.index()] == V5::X)
                .collect();
            let (next, next_value) = match gate.kind() {
                GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
                    // AND core: output 1 needs all-1; output 0 achievable by
                    // one 0 (dually for OR). SCOAP guidance (Goldstein):
                    // when one controlling input suffices pick the easiest;
                    // when every input must be non-controlling pick the
                    // hardest first so conflicts surface early.
                    let c = gate.kind().controlling_value()?;
                    if v_core != c {
                        let pick = x_inputs
                            .iter()
                            .copied()
                            .max_by_key(|&f| self.scoap.cc(f, !c))?;
                        (pick, !c)
                    } else {
                        let pick = x_inputs
                            .iter()
                            .copied()
                            .min_by_key(|&f| self.scoap.cc(f, c))?;
                        (pick, c)
                    }
                }
                GateKind::Not | GateKind::Buf => (x_inputs.first().copied()?, v_core),
                GateKind::Xor | GateKind::Xnor => {
                    // Aim for the parity completion over known inputs.
                    let known: i32 = gate
                        .fanins()
                        .iter()
                        .filter_map(|f| self.values[f.index()].good())
                        .map(|b| b as i32)
                        .sum();
                    let target = (v_core as i32 + known) % 2 == 1;
                    (x_inputs.first().copied()?, target)
                }
                GateKind::Const0 | GateKind::Const1 | GateKind::Input | GateKind::Dff => {
                    return None
                }
            };
            line = next;
            value = next_value;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdx_netlist::parse_bench;
    use incdx_sim::{PackedMatrix, Simulator};

    /// Verifies a claimed test vector really detects the fault.
    fn detects(n: &Netlist, fault: StuckAt, vector: &[bool]) -> bool {
        let mut pi = PackedMatrix::new(vector.len(), 1);
        for (i, &v) in vector.iter().enumerate() {
            pi.set(i, 0, v);
        }
        let mut sim = Simulator::new();
        let good = sim.run(n, &pi);
        let mut faulty_netlist = n.clone();
        fault.apply(&mut faulty_netlist).unwrap();
        let bad = sim.run_for_inputs(&faulty_netlist, n.inputs(), &pi);
        n.outputs()
            .iter()
            .any(|o| good.get(o.index(), 0) != bad.get(o.index(), 0))
    }

    const C17: &str = "\
INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\nOUTPUT(22)\nOUTPUT(23)\n\
10 = NAND(1, 3)\n11 = NAND(3, 6)\n16 = NAND(2, 11)\n19 = NAND(11, 7)\n\
22 = NAND(10, 16)\n23 = NAND(16, 19)\n";

    #[test]
    fn finds_tests_for_every_c17_fault() {
        let n = parse_bench(C17).unwrap();
        for id in n.ids() {
            for value in [false, true] {
                let fault = StuckAt::new(id, value);
                match podem(&n, fault, 10_000) {
                    PodemOutcome::Test(v) => {
                        assert!(detects(&n, fault, &v), "{fault} vector {v:?}");
                    }
                    other => panic!("{fault}: expected a test, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn proves_redundant_fault_untestable() {
        // y = a OR (a AND b) == a, so the AND output stuck-at-0 is
        // undetectable.
        let n =
            parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\nx = AND(a, b)\ny = OR(a, x)\n").unwrap();
        let x = n.find_by_name("x").unwrap();
        assert_eq!(
            podem(&n, StuckAt::new(x, false), 10_000),
            PodemOutcome::Untestable
        );
        // ...but stuck-at-1 is detectable (a=0, b=anything makes y=1≠0).
        match podem(&n, StuckAt::new(x, true), 10_000) {
            PodemOutcome::Test(v) => assert!(detects(&n, StuckAt::new(x, true), &v)),
            other => panic!("expected test, got {other:?}"),
        }
    }

    #[test]
    fn handles_xor_propagation() {
        let n =
            parse_bench("INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nx = AND(a, b)\ny = XOR(x, c)\n")
                .unwrap();
        let x = n.find_by_name("x").unwrap();
        for value in [false, true] {
            let fault = StuckAt::new(x, value);
            match podem(&n, fault, 10_000) {
                PodemOutcome::Test(v) => assert!(detects(&n, fault, &v), "{fault}"),
                other => panic!("{fault}: {other:?}"),
            }
        }
    }

    #[test]
    fn pi_faults_are_testable_when_observable() {
        let n = parse_bench(C17).unwrap();
        for &pi in n.inputs() {
            for value in [false, true] {
                let fault = StuckAt::new(pi, value);
                match podem(&n, fault, 10_000) {
                    PodemOutcome::Test(v) => assert!(detects(&n, fault, &v), "{fault}"),
                    other => panic!("{fault}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn reports_abort_on_zero_budget() {
        // With a 0 backtrack limit, hard instances abort rather than lie.
        let n =
            parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\nx = AND(a, b)\ny = OR(a, x)\n").unwrap();
        let x = n.find_by_name("x").unwrap();
        let out = podem(&n, StuckAt::new(x, false), 0);
        assert!(matches!(
            out,
            PodemOutcome::Aborted | PodemOutcome::Untestable
        ));
    }
}
