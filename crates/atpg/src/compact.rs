//! Static test-set compaction: the classic reverse-order pass. Vectors
//! are fault-simulated newest-first; a vector is kept only if it detects
//! a fault nothing later in the pass has covered. Because PODEM emits
//! broad early vectors whose faults later targeted vectors often re-cover,
//! reverse order drops a sizeable fraction at no coverage loss.

use incdx_fault::StuckAt;
use incdx_netlist::Netlist;
use incdx_sim::PackedMatrix;

use crate::faultsim::fault_simulate;

/// Compacts `vectors` against `faults`, preserving exactly the detected
/// fault set. Returns the kept vectors in their original relative order.
///
/// # Panics
///
/// Panics if the netlist is not combinational or vector widths disagree.
pub fn compact_tests(
    netlist: &Netlist,
    faults: &[StuckAt],
    vectors: &[Vec<bool>],
) -> Vec<Vec<bool>> {
    if vectors.is_empty() || faults.is_empty() {
        return vectors.to_vec();
    }
    let mut alive: Vec<StuckAt> = faults.to_vec();
    let mut keep = vec![false; vectors.len()];
    for (vi, vector) in vectors.iter().enumerate().rev() {
        if alive.is_empty() {
            break;
        }
        let mut pi = PackedMatrix::new(netlist.inputs().len(), 1);
        for (i, &bit) in vector.iter().enumerate() {
            pi.set(i, 0, bit);
        }
        let hit = fault_simulate(netlist, &alive, &pi);
        let newly = hit.iter().filter(|&&h| h).count();
        if newly > 0 {
            keep[vi] = true;
            alive = alive
                .iter()
                .zip(&hit)
                .filter(|(_, &h)| !h)
                .map(|(f, _)| *f)
                .collect();
        }
    }
    vectors
        .iter()
        .zip(&keep)
        .filter(|(_, &k)| k)
        .map(|(v, _)| v.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{all_stuck_at_faults, generate_tests, TestGenConfig};

    fn detected_count(netlist: &Netlist, faults: &[StuckAt], vectors: &[Vec<bool>]) -> usize {
        if vectors.is_empty() {
            return 0;
        }
        let mut pi = PackedMatrix::new(netlist.inputs().len(), vectors.len());
        for (v, vector) in vectors.iter().enumerate() {
            for (i, &bit) in vector.iter().enumerate() {
                pi.set(i, v, bit);
            }
        }
        fault_simulate(netlist, faults, &pi)
            .iter()
            .filter(|&&h| h)
            .count()
    }

    #[test]
    fn coverage_is_preserved_and_size_never_grows() {
        for name in ["c17", "c432a", "c880a"] {
            let n = incdx_gen::generate(name).unwrap();
            let ts = generate_tests(&n, &TestGenConfig::default());
            let faults = all_stuck_at_faults(&n);
            let before = detected_count(&n, &faults, &ts.vectors);
            let compacted = compact_tests(&n, &faults, &ts.vectors);
            assert!(compacted.len() <= ts.vectors.len(), "{name}");
            let after = detected_count(&n, &faults, &compacted);
            assert_eq!(before, after, "{name}: coverage must not drop");
        }
    }

    #[test]
    fn duplicate_vectors_are_dropped() {
        let n = incdx_gen::generate("c17").unwrap();
        let faults = all_stuck_at_faults(&n);
        let ts = generate_tests(&n, &TestGenConfig::default());
        // Triple every vector: compaction must fall back to ≤ original.
        let mut tripled = Vec::new();
        for v in &ts.vectors {
            tripled.push(v.clone());
            tripled.push(v.clone());
            tripled.push(v.clone());
        }
        let compacted = compact_tests(&n, &faults, &tripled);
        assert!(compacted.len() <= ts.vectors.len());
        assert_eq!(
            detected_count(&n, &faults, &compacted),
            detected_count(&n, &faults, &tripled)
        );
    }

    #[test]
    fn empty_inputs_pass_through() {
        let n = incdx_gen::generate("c17").unwrap();
        let faults = all_stuck_at_faults(&n);
        assert!(compact_tests(&n, &faults, &[]).is_empty());
        let vectors = vec![vec![false; n.inputs().len()]];
        assert_eq!(compact_tests(&n, &[], &vectors), vectors);
    }
}
