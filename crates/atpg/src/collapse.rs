//! Structural fault collapsing: grouping stem stuck-at faults into
//! equivalence classes so ATPG, dictionaries and diagnosis work on one
//! representative per class. (The paper's Table 1 reports "equivalent
//! fault classes" in exactly this sense — its reference \[2\].)
//!
//! The stem-fault rule used here: if line `l` fans out *only* to gate `g`,
//! then `l` stuck-at the controlling value of `g` is equivalent to `g`'s
//! output stuck-at the controlled output value, and for BUF/NOT chains
//! both polarities collapse through. Classes are built with union-find
//! over those edges.

use std::collections::HashMap;

use incdx_fault::StuckAt;
use incdx_netlist::{GateKind, Netlist};

/// The collapsed fault universe of a netlist.
#[derive(Debug, Clone)]
pub struct FaultClasses {
    classes: Vec<Vec<StuckAt>>,
}

impl FaultClasses {
    /// Builds the structural equivalence classes over both polarities of
    /// every stem fault (constants and DFFs excluded).
    pub fn build(netlist: &Netlist) -> Self {
        let faults = crate::generate::all_stuck_at_faults(netlist);
        let index: HashMap<StuckAt, usize> =
            faults.iter().enumerate().map(|(i, &f)| (f, i)).collect();
        let mut uf = UnionFind::new(faults.len());
        for (id, gate) in netlist.iter() {
            if !gate.kind().is_logic() {
                continue;
            }
            let inverting = gate.kind().is_inverting();
            for &f in gate.fanins() {
                if netlist.fanouts(f).len() != 1 {
                    continue; // stems with fanout branches don't collapse
                }
                if netlist.outputs().contains(&f) {
                    continue; // a PO stem is directly observable: not
                              // equivalent to the gate's output fault
                }
                match gate.kind() {
                    GateKind::Buf | GateKind::Not => {
                        for v in [false, true] {
                            let a = StuckAt::new(f, v);
                            let b = StuckAt::new(id, v ^ inverting);
                            if let (Some(&x), Some(&y)) = (index.get(&a), index.get(&b)) {
                                uf.union(x, y);
                            }
                        }
                    }
                    GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
                        let Some(c) = gate.kind().controlling_value() else {
                            continue;
                        };
                        let a = StuckAt::new(f, c);
                        let b = StuckAt::new(id, c ^ inverting);
                        if let (Some(&x), Some(&y)) = (index.get(&a), index.get(&b)) {
                            uf.union(x, y);
                        }
                    }
                    // XOR/XNOR inputs have no controlling value: no
                    // structural equivalence.
                    _ => {}
                }
            }
        }
        let mut grouped: HashMap<usize, Vec<StuckAt>> = HashMap::new();
        for (i, &f) in faults.iter().enumerate() {
            grouped.entry(uf.find(i)).or_default().push(f);
        }
        let mut classes: Vec<Vec<StuckAt>> = grouped
            .into_values()
            .map(|mut v| {
                v.sort();
                v
            })
            .collect();
        classes.sort();
        FaultClasses { classes }
    }

    /// The equivalence classes, each sorted, in deterministic order.
    pub fn classes(&self) -> &[Vec<StuckAt>] {
        &self.classes
    }

    /// One representative (the smallest member) per class — the collapsed
    /// fault list for ATPG.
    pub fn representatives(&self) -> Vec<StuckAt> {
        self.classes.iter().map(|c| c[0]).collect()
    }

    /// Total faults before collapsing.
    pub fn total_faults(&self) -> usize {
        self.classes.iter().map(Vec::len).sum()
    }

    /// The collapse ratio `representatives / total` (lower = more
    /// collapsing).
    pub fn ratio(&self) -> f64 {
        self.classes.len() as f64 / self.total_faults().max(1) as f64
    }
}

struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdx_netlist::parse_bench;
    use incdx_sim::{PackedMatrix, Simulator};

    /// Reference check: two faults are functionally equivalent iff their
    /// faulty circuits agree on every input assignment.
    fn functionally_equivalent(n: &Netlist, a: StuckAt, b: StuckAt) -> bool {
        let ni = n.inputs().len();
        let nv = 1usize << ni;
        let mut pi = PackedMatrix::new(ni, nv);
        for v in 0..nv {
            for i in 0..ni {
                pi.set(i, v, v >> i & 1 == 1);
            }
        }
        let mut sim = Simulator::new();
        let mut fa = n.clone();
        a.apply(&mut fa).unwrap();
        let mut fb = n.clone();
        b.apply(&mut fb).unwrap();
        let va = sim.run_for_inputs(&fa, n.inputs(), &pi);
        let vb = sim.run_for_inputs(&fb, n.inputs(), &pi);
        n.outputs()
            .iter()
            .all(|o| (0..nv).all(|v| va.get(o.index(), v) == vb.get(o.index(), v)))
    }

    #[test]
    fn classes_are_functionally_equivalent_on_c17() {
        let n = parse_bench(
            "INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\nOUTPUT(22)\nOUTPUT(23)\n\
             10 = NAND(1, 3)\n11 = NAND(3, 6)\n16 = NAND(2, 11)\n19 = NAND(11, 7)\n\
             22 = NAND(10, 16)\n23 = NAND(16, 19)\n",
        )
        .unwrap();
        let fc = FaultClasses::build(&n);
        assert!(
            fc.classes().len() < fc.total_faults(),
            "something collapses"
        );
        for class in fc.classes() {
            let rep = class[0];
            for &other in &class[1..] {
                assert!(functionally_equivalent(&n, rep, other), "{rep} !~ {other}");
            }
        }
    }

    #[test]
    fn inverter_chain_collapses_fully() {
        let n =
            parse_bench("INPUT(a)\nOUTPUT(y)\nb1 = NOT(a)\nb2 = NOT(b1)\ny = BUF(b2)\n").unwrap();
        let fc = FaultClasses::build(&n);
        // 4 lines × 2 polarities = 8 faults collapsing into 2 classes
        // (the two polarities of the single signal path).
        assert_eq!(fc.total_faults(), 8);
        assert_eq!(fc.classes().len(), 2);
        assert!((fc.ratio() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn fanout_stems_do_not_collapse() {
        // `a` fans out to two gates: its faults stay distinct from both.
        let n =
            parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\nOUTPUT(z)\ny = AND(a, b)\nz = OR(a, b)\n")
                .unwrap();
        let fc = FaultClasses::build(&n);
        let a = n.find_by_name("a").unwrap();
        for class in fc.classes() {
            if class.iter().any(|f| f.line() == a) {
                assert!(class.iter().all(|f| f.line() == a), "{class:?}");
            }
        }
    }

    #[test]
    fn representatives_cover_every_class_once() {
        let n = incdx_gen::generate("c880a").unwrap();
        let fc = FaultClasses::build(&n);
        let reps = fc.representatives();
        assert_eq!(reps.len(), fc.classes().len());
        assert!(
            fc.ratio() < 0.95,
            "an ALU collapses substantially: {}",
            fc.ratio()
        );
        // Representatives are distinct.
        let mut sorted = reps.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), reps.len());
    }

    #[test]
    fn random_circuits_collapse_soundly() {
        use rand::SeedableRng;
        let _ = rand::rngs::StdRng::seed_from_u64(0);
        for seed in 0..5 {
            let n = incdx_gen::random_dag(
                &incdx_gen::RandomDagConfig {
                    inputs: 5,
                    gates: 25,
                    outputs: 4,
                    max_fanin: 3,
                    xor_fraction: 0.15,
                    window: 12,
                },
                seed,
            );
            let fc = FaultClasses::build(&n);
            for class in fc.classes() {
                let rep = class[0];
                for &other in &class[1..] {
                    assert!(
                        functionally_equivalent(&n, rep, other),
                        "seed {seed}: {rep} !~ {other}"
                    );
                }
            }
        }
    }
}
