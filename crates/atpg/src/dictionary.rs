//! A classic cause-effect **fault dictionary** — the pre-computed
//! single-fault diagnosis baseline the paper's incremental method is
//! measured against. Each modelled fault's full primary-output *syndrome*
//! (the PO-bit differences against the fault-free circuit) is stored; a
//! failing device is diagnosed by matching its observed syndrome.
//!
//! Exact single faults match perfectly; *multiple* faults generally match
//! no dictionary entry — which is precisely the limitation (§1: the
//! suspect space grows as `#lines^#errors`) that motivates the paper's
//! incremental approach. The `baseline_dictionary` experiment binary
//! quantifies this.

use incdx_fault::StuckAt;
use incdx_netlist::Netlist;
use incdx_sim::{PackedMatrix, Response, Simulator};

/// A full-response fault dictionary over a fixed vector set.
#[derive(Debug, Clone)]
pub struct FaultDictionary {
    faults: Vec<StuckAt>,
    /// Per fault: the concatenated PO-difference words (syndrome).
    syndromes: Vec<Vec<u64>>,
    words_per_syndrome: usize,
}

impl FaultDictionary {
    /// Simulates every fault of `faults` on `vectors` and records its
    /// syndrome. Undetected faults store the all-zero syndrome and are
    /// reported by [`Self::diagnose`] only for passing devices.
    ///
    /// # Panics
    ///
    /// Panics if the netlist is not combinational or shapes disagree.
    pub fn build(netlist: &Netlist, faults: Vec<StuckAt>, vectors: &PackedMatrix) -> Self {
        let mut sim = Simulator::new();
        let base = sim.run(netlist, vectors);
        let wpr = base.words_per_row();
        let num_pos = netlist.outputs().len();
        let words_per_syndrome = wpr * num_pos;
        let mut vals = base.clone();
        let mut syndromes = Vec::with_capacity(faults.len());
        let mut saved: Vec<u64> = Vec::new();
        for fault in &faults {
            let cone = netlist.fanout_cone_sorted(fault.line());
            saved.clear();
            for &g in &cone {
                saved.extend_from_slice(vals.row(g.index()));
            }
            vals.row_mut(fault.line().index())
                .fill(if fault.value() { !0 } else { 0 });
            sim.run_cone(netlist, &mut vals, &cone);
            let mut syndrome = vec![0u64; words_per_syndrome];
            for (po_idx, &po) in netlist.outputs().iter().enumerate() {
                let (a, b) = (vals.row(po.index()), base.row(po.index()));
                for w in 0..wpr {
                    syndrome[po_idx * wpr + w] = a[w] ^ b[w];
                }
            }
            mask_tail(&mut syndrome, wpr, vectors.num_vectors());
            syndromes.push(syndrome);
            for (i, &g) in cone.iter().enumerate() {
                vals.row_mut(g.index())
                    .copy_from_slice(&saved[i * wpr..(i + 1) * wpr]);
            }
        }
        FaultDictionary {
            faults,
            syndromes,
            words_per_syndrome,
        }
    }

    /// Number of dictionary entries.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Is the dictionary empty?
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The observed syndrome of a device: PO differences between the
    /// device response and the fault-free circuit, in dictionary layout.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree with the build-time netlist/vectors.
    pub fn device_syndrome(
        &self,
        netlist: &Netlist,
        device: &Response,
        vectors: &PackedMatrix,
    ) -> Vec<u64> {
        let mut sim = Simulator::new();
        let base = sim.run(netlist, vectors);
        let wpr = base.words_per_row();
        let mut syndrome = vec![0u64; self.words_per_syndrome];
        for (po_idx, &po) in netlist.outputs().iter().enumerate() {
            let got = device.po_values().row(po_idx);
            let want = base.row(po.index());
            for w in 0..wpr {
                syndrome[po_idx * wpr + w] = got[w] ^ want[w];
            }
        }
        mask_tail(&mut syndrome, wpr, vectors.num_vectors());
        syndrome
    }

    /// Exact-match diagnosis: every fault whose stored syndrome equals the
    /// observed one. Empty for out-of-dictionary behaviour (e.g. multiple
    /// faults).
    pub fn diagnose(&self, syndrome: &[u64]) -> Vec<StuckAt> {
        self.faults
            .iter()
            .zip(&self.syndromes)
            .filter(|(_, s)| s.as_slice() == syndrome && s.iter().any(|&w| w != 0))
            .map(|(f, _)| *f)
            .collect()
    }

    /// Nearest-entry diagnosis: the dictionary faults minimising the
    /// Hamming distance to the observed syndrome, with that distance
    /// (0 = exact). The classic "closest match" fallback practitioners
    /// use when the device behaviour is out of model.
    pub fn diagnose_closest(&self, syndrome: &[u64]) -> (Vec<StuckAt>, u32) {
        let mut best = u32::MAX;
        let mut matches = Vec::new();
        for (f, s) in self.faults.iter().zip(&self.syndromes) {
            let d: u32 = s
                .iter()
                .zip(syndrome)
                .map(|(a, b)| (a ^ b).count_ones())
                .sum();
            match d.cmp(&best) {
                std::cmp::Ordering::Less => {
                    best = d;
                    matches.clear();
                    matches.push(*f);
                }
                std::cmp::Ordering::Equal => matches.push(*f),
                std::cmp::Ordering::Greater => {}
            }
        }
        (matches, best)
    }
}

fn mask_tail(syndrome: &mut [u64], wpr: usize, num_vectors: usize) {
    if num_vectors.is_multiple_of(64) {
        return;
    }
    let tail = (1u64 << (num_vectors % 64)) - 1;
    for chunk in syndrome.chunks_mut(wpr) {
        if let Some(last) = chunk.last_mut() {
            *last &= tail;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::all_stuck_at_faults;
    use incdx_gen::generate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Netlist, FaultDictionary, PackedMatrix) {
        let n = generate("c432a").unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let pi = PackedMatrix::random(n.inputs().len(), 300, &mut rng);
        let dict = FaultDictionary::build(&n, all_stuck_at_faults(&n), &pi);
        (n, dict, pi)
    }

    #[test]
    fn exact_match_recovers_single_fault() {
        let (n, dict, pi) = setup();
        let mut sim = Simulator::new();
        let picks = [n.len() / 4, n.len() / 2, n.len() - 3];
        for idx in picks {
            let fault = StuckAt::new(incdx_netlist::GateId::from_index(idx), true);
            let mut device_nl = n.clone();
            fault.apply(&mut device_nl).unwrap();
            let device =
                Response::capture(&device_nl, &sim.run_for_inputs(&device_nl, n.inputs(), &pi));
            let syndrome = dict.device_syndrome(&n, &device, &pi);
            if syndrome.iter().all(|&w| w == 0) {
                continue; // fault not excited on these vectors
            }
            let diag = dict.diagnose(&syndrome);
            assert!(diag.contains(&fault), "fault {fault} missed");
            // Exact matches are the equivalence class — closest agrees.
            let (closest, d) = dict.diagnose_closest(&syndrome);
            assert_eq!(d, 0);
            assert_eq!(closest, diag);
        }
    }

    #[test]
    fn double_fault_breaks_the_dictionary() {
        let (n, dict, pi) = setup();
        let mut sim = Simulator::new();
        // Two faults in different cones: the combined syndrome is the
        // union, which matches no single-fault entry.
        let f1 = StuckAt::new(incdx_netlist::GateId::from_index(n.len() / 3), true);
        let f2 = StuckAt::new(incdx_netlist::GateId::from_index(n.len() - 2), false);
        let mut device_nl = n.clone();
        f1.apply(&mut device_nl).unwrap();
        f2.apply(&mut device_nl).unwrap();
        let device =
            Response::capture(&device_nl, &sim.run_for_inputs(&device_nl, n.inputs(), &pi));
        let syndrome = dict.device_syndrome(&n, &device, &pi);
        if syndrome.iter().all(|&w| w == 0) {
            return;
        }
        let exact = dict.diagnose(&syndrome);
        // With overwhelming probability the double-fault syndrome is out
        // of dictionary; the closest match is then non-exact.
        if exact.is_empty() {
            let (_, d) = dict.diagnose_closest(&syndrome);
            assert!(d > 0);
        }
    }

    #[test]
    fn passing_device_matches_nothing() {
        let (n, dict, pi) = setup();
        let mut sim = Simulator::new();
        let device = Response::capture(&n, &sim.run(&n, &pi));
        let syndrome = dict.device_syndrome(&n, &device, &pi);
        assert!(syndrome.iter().all(|&w| w == 0));
        assert!(dict.diagnose(&syndrome).is_empty());
    }

    #[test]
    fn dictionary_size_bookkeeping() {
        let (_, dict, _) = setup();
        assert!(!dict.is_empty());
        assert!(dict.len() > 100);
    }
}
