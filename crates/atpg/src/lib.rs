//! PODEM-based deterministic test generation for stuck-at faults.
//!
//! The paper's experiments drive the diagnosis engine with deterministic
//! vectors from Hamzaoglu–Patel (reference \[3\]) plus thousands of random
//! vectors. This crate is the substitute for \[3\]: a classic PODEM ATPG
//! (objective / backtrace / imply over the 5-valued D-calculus) with
//! parallel-pattern fault simulation and fault dropping. It also proves
//! faults *untestable*, which is how `incdx-opt` finds redundant logic for
//! the "optimize for area" preprocessing of the stuck-at experiments.
//!
//! # Example
//!
//! ```
//! use incdx_atpg::{generate_tests, TestGenConfig};
//! use incdx_gen::generate;
//!
//! let n = generate("c17")?;
//! let ts = generate_tests(&n, &TestGenConfig::default());
//! assert_eq!(ts.untestable.len(), 0); // c17 is irredundant
//! assert!(ts.coverage() > 0.99);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod collapse;
mod compact;
mod dictionary;
mod faultsim;
mod generate;
mod podem;
mod scoap;

pub use collapse::FaultClasses;
pub use compact::compact_tests;
pub use dictionary::FaultDictionary;
pub use faultsim::fault_simulate;
pub use generate::{all_stuck_at_faults, generate_tests, TestGenConfig, TestSet};
pub use podem::{podem, PodemOutcome};
pub use scoap::Scoap;
