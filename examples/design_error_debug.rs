//! Multiple design error diagnosis and correction, the Table 2 scenario:
//! an implementation corrupted with three Campenhout-distributed design
//! errors is rectified against its specification.
//!
//! Run with `cargo run --release --example design_error_debug`.

use incdx::prelude::*;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Specification: the 27-channel interrupt controller analog of c432
    // (original, redundancy-bearing netlist — "the hardest to diagnose and
    // correct", §4.2).
    let golden = generate("c432a")?;

    // Corrupt it with three observable design errors drawn from the
    // Campenhout distribution (wrong wires dominate).
    let mut rng = rand::rngs::StdRng::seed_from_u64(432);
    let injection = inject_design_errors(
        &golden,
        &InjectionConfig {
            count: 3,
            ..Default::default()
        },
        &mut rng,
    )?;
    println!("injected design errors (hidden from the tool):");
    for error in &injection.injected {
        println!("  {error}");
    }

    // The DEDC session sees the erroneous design and the spec's responses.
    let mut vec_rng = rand::rngs::StdRng::seed_from_u64(5);
    let vectors = PackedMatrix::random(golden.inputs().len(), 1024, &mut vec_rng);
    let mut sim = Simulator::new();
    let spec = Response::capture(&golden, &sim.run(&golden, &vectors));

    let started = Instant::now();
    let result = Rectifier::new(
        injection.corrupted.clone(),
        vectors.clone(),
        spec.clone(),
        RectifyConfig::dedc(3),
    )?
    .run();
    let elapsed = started.elapsed();

    let solution = result
        .solutions
        .first()
        .expect("three observable errors are correctable");
    println!("\nvalid correction tuple found in {elapsed:?}:");
    for correction in &solution.corrections {
        println!("  {correction}");
    }
    println!(
        "diagnosis {:?}, correction {:?}, {} nodes, {} rounds, ladder level {}",
        result.stats.diagnosis_time,
        result.stats.correction_time,
        result.stats.nodes,
        result.stats.rounds,
        result.stats.deepest_ladder_level,
    );

    // The returned corrections need not equal the injected errors — any
    // equivalent rectification is a valid answer — but they must make the
    // design match the spec on every vector.
    let mut fixed = injection.corrupted.clone();
    for correction in &solution.corrections {
        correction.apply(&mut fixed)?;
    }
    let check = Response::compare(
        &fixed,
        &sim.run_for_inputs(&fixed, golden.inputs(), &vectors),
        &spec,
    );
    assert!(check.matches());
    println!("verification: rectified design matches the specification");
    Ok(())
}
