//! Quickstart: find and verify a single design error in a small netlist.
//!
//! Run with `cargo run --release --example quickstart`.

use incdx::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The specification (golden model) and an erroneous implementation:
    // the designer typed OR where the spec says AND.
    let spec_netlist = parse_bench(
        "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\n\
         t = AND(a, b)\ny = XOR(t, c)\n",
    )?;
    let design = parse_bench(
        "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\n\
         t = OR(a, b)\ny = XOR(t, c)\n",
    )?;

    // Reference responses come from simulating the specification on a
    // shared vector set (any simulatable model works — a netlist, an
    // emulator, recorded silicon responses).
    let mut rng = rand::rngs::StdRng::seed_from_u64(2002);
    let vectors = PackedMatrix::random(spec_netlist.inputs().len(), 256, &mut rng);
    let mut sim = Simulator::new();
    let spec = Response::capture(&spec_netlist, &sim.run(&spec_netlist, &vectors));

    // How wrong is the design?
    let before = Response::compare(&design, &sim.run(&design, &vectors), &spec);
    println!(
        "design fails {} of {} vectors before correction",
        before.num_failing(),
        vectors.num_vectors()
    );

    // Diagnose and correct (single-error DEDC configuration).
    let result = Rectifier::new(
        design.clone(),
        vectors.clone(),
        spec.clone(),
        RectifyConfig::dedc(1),
    )?
    .run();
    let solution = result
        .solutions
        .first()
        .expect("a single gate-type error is always correctable");
    for correction in &solution.corrections {
        let name = design.name(correction.line()).unwrap_or("?");
        println!("proposed correction at `{name}`: {correction}");
    }

    // Verify: apply the corrections and re-compare.
    let mut fixed = design.clone();
    for correction in &solution.corrections {
        correction.apply(&mut fixed)?;
    }
    let after = Response::compare(
        &fixed,
        &sim.run_for_inputs(&fixed, design.inputs(), &vectors),
        &spec,
    );
    println!(
        "after correction: {} failing vectors ({} tree nodes explored)",
        after.num_failing(),
        result.stats.nodes
    );
    assert!(after.matches());
    Ok(())
}
