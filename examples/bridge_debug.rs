//! Diagnosing a bridging (short) fault — the paper's "other physical
//! faults" extension: a wired-AND bridge between two lines is modeled on
//! the correction side as two gate insertions, so the unmodified engine
//! localizes it.
//!
//! Run with `cargo run --release --example bridge_debug`.

use incdx::fault::{BridgeKind, BridgingFault};
use incdx::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let golden = generate("c880a")?;

    // Short two internal lines (an ALU datapath bit against a decoder
    // select term).
    let a = GateId::from_index(golden.len() / 3);
    let b = GateId::from_index(2 * golden.len() / 3);
    let bridge = BridgingFault::new(a, b, BridgeKind::WiredAnd);
    let mut device_netlist = golden.clone();
    bridge.apply(&mut device_netlist)?;
    println!("injected (hidden from the tool): {bridge}");

    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let vectors = PackedMatrix::random(golden.inputs().len(), 1024, &mut rng);
    let mut sim = Simulator::new();
    let device = Response::capture(
        &device_netlist,
        &sim.run_for_inputs(&device_netlist, golden.inputs(), &vectors),
    );
    let baseline = Response::compare(&golden, &sim.run(&golden, &vectors), &device);
    println!(
        "device disagrees with the good circuit on {} of {} vectors",
        baseline.num_failing(),
        vectors.num_vectors()
    );

    // Rectify the good netlist toward the device with design-error
    // corrections (two suffice for a wired bridge).
    let result = Rectifier::new(
        golden.clone(),
        vectors.clone(),
        device.clone(),
        RectifyConfig::dedc(2),
    )?
    .run();
    let solution = result.solutions.first().expect("bridge is modelable");
    println!("bridge model found ({} nodes):", result.stats.nodes);
    for c in &solution.corrections {
        println!("  {c}");
    }

    // Verify the model reproduces the device exactly.
    let mut modeled = golden.clone();
    for c in &solution.corrections {
        c.apply(&mut modeled)?;
    }
    let check = Response::compare(
        &modeled,
        &sim.run_for_inputs(&modeled, golden.inputs(), &vectors),
        &device,
    );
    assert!(check.matches());
    println!("verified: the corrections reproduce the bridged device bit-exactly");
    println!("(the shorted lines {a} and {b} appear as the insertion targets/operands)");
    Ok(())
}
