//! Full-scan sequential diagnosis: the paper's s-circuit flow. A
//! sequential design (here a Moore machine) is scan-converted — every
//! flip-flop output becomes a pseudo primary input and every flip-flop
//! data input a pseudo primary output — and the combinational core is
//! diagnosed exactly like a c-circuit.
//!
//! Run with `cargo run --release --example scan_debug`.

use incdx::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sequential = generate("s641a")?;
    println!(
        "s641a: {} gates, {} DFFs",
        sequential.len(),
        sequential.dffs().len()
    );

    // Full-scan conversion.
    let (core, scan) = scan_convert(&sequential)?;
    println!(
        "full-scan core: {} inputs ({} pseudo), {} outputs ({} pseudo)",
        core.inputs().len(),
        scan.pseudo_inputs.len(),
        core.outputs().len(),
        scan.pseudo_outputs.len()
    );

    // Inject a stuck-at fault somewhere in the next-state logic.
    let mut rng = rand::rngs::StdRng::seed_from_u64(641);
    let injection = inject_stuck_at_faults(
        &core,
        &InjectionConfig {
            count: 1,
            require_individually_observable: true,
            check_vectors: 1024,
            max_attempts: 200,
        },
        &mut rng,
    )?;
    println!("injected: {}", injection.injected[0]);

    // Scan vectors drive both real and pseudo inputs.
    let mut vec_rng = rand::rngs::StdRng::seed_from_u64(9);
    let vectors = PackedMatrix::random(core.inputs().len(), 2048, &mut vec_rng);
    let mut sim = Simulator::new();
    let device = Response::capture(
        &injection.corrupted,
        &sim.run_for_inputs(&injection.corrupted, core.inputs(), &vectors),
    );

    let result = Rectifier::new(
        core.clone(),
        vectors,
        device,
        RectifyConfig::stuck_at_exhaustive(1),
    )?
    .run();
    println!(
        "{} equivalent single-fault explanation(s) across {} site(s):",
        result.solutions.len(),
        result.distinct_sites()
    );
    for solution in &result.solutions {
        for fault in solution.stuck_at_tuple().expect("stuck-at run") {
            let pseudo = if scan.pseudo_inputs.contains(&fault.line()) {
                " (pseudo-PI / state bit)"
            } else {
                ""
            };
            println!("  {fault}{pseudo}");
        }
    }
    let mut injected = injection.injected.clone();
    injected.sort();
    assert!(result
        .solutions
        .iter()
        .any(|s| s.stuck_at_tuple().as_deref() == Some(&injected[..])));
    Ok(())
}
