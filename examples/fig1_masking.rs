//! Reconstruction of Figure 1 of the paper: two design errors whose
//! sensitized paths reconverge at a gate can *mask* each other on a
//! vector, so applying a perfectly valid correction to the first error
//! makes that vector newly erroneous — it stays wrong until the second
//! error is also fixed.
//!
//! This is why heuristic 3 must *allow* a bounded number of new erroneous
//! vectors instead of demanding none: the strictest setting (`h3 = 1`)
//! would discard the valid correction.
//!
//! Run with `cargo run --release --example fig1_masking`.

use incdx::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Specification: g = AND(x1n, x2) with x1n = NOT(a), x2 = AND(b, c).
    let spec_netlist = parse_bench(
        "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(g)\n\
         l1 = NOT(a)\nl2 = AND(b, c)\ng = AND(l1, l2)\n",
    )?;
    // Erroneous design: BOTH fanin cones of the reconvergent gate G carry
    // an error — l1 lost its inverter, l2's AND became OR.
    let design = parse_bench(
        "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(g)\n\
         l1 = BUF(a)\nl2 = OR(b, c)\ng = AND(l1, l2)\n",
    )?;

    // Exhaustive vectors: all 8 input combinations.
    let mut vectors = PackedMatrix::new(3, 8);
    for v in 0..8 {
        for i in 0..3 {
            vectors.set(i, v, v >> i & 1 == 1);
        }
    }
    let mut sim = Simulator::new();
    let spec = Response::capture(&spec_netlist, &sim.run(&spec_netlist, &vectors));

    let before = Response::compare(&design, &sim.run(&design, &vectors), &spec);
    println!(
        "two-error design fails {} of 8 vectors",
        before.num_failing()
    );

    // The *valid* first correction: restore the inverter on l1.
    let l1 = design.find_by_name("l1").unwrap();
    let fix1 = Correction::new(l1, CorrectionAction::ChangeKind(GateKind::Not));
    let mut partially_fixed = design.clone();
    fix1.apply(&mut partially_fixed)?;
    let mid = Response::compare(
        &partially_fixed,
        &sim.run(&partially_fixed, &vectors),
        &spec,
    );
    // Masking in action: a vector that passed with both errors present
    // (the fault effects cancelled at gate g) now fails.
    let newly_failing = mid
        .failing_vectors()
        .iter_ones()
        .filter(|&v| !before.failing_vectors().get(v))
        .count();
    println!(
        "after the (correct!) first fix: {} failing vectors, {newly_failing} newly erroneous",
        mid.num_failing()
    );
    assert!(newly_failing > 0, "Fig. 1 masking must manifest");

    // The second correction completes the rectification.
    let l2 = design.find_by_name("l2").unwrap();
    let fix2 = Correction::new(l2, CorrectionAction::ChangeKind(GateKind::And));
    fix2.apply(&mut partially_fixed)?;
    let after = Response::compare(
        &partially_fixed,
        &sim.run(&partially_fixed, &vectors),
        &spec,
    );
    println!(
        "after the second fix: {} failing vectors",
        after.num_failing()
    );
    assert!(after.matches());

    // The engine handles this automatically — its h3 screen admits the
    // intermediate correction because the relaxation ladder permits a
    // bounded number of new erroneous vectors.
    let result = Rectifier::new(design, vectors, spec, RectifyConfig::dedc(2))?.run();
    let solution = result.solutions.first().expect("engine solves Fig. 1");
    println!("\nengine's tuple ({} nodes explored):", result.stats.nodes);
    for correction in &solution.corrections {
        println!("  {correction}");
    }
    Ok(())
}
