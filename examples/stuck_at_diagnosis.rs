//! Multiple stuck-at fault diagnosis, the Table 1 scenario: a "failing
//! device" (simulated here by injecting random faults into an
//! area-optimized ALU) is explained by *every* minimal equivalent tuple of
//! stuck-at faults — the resolution a test engineer needs to know which
//! lines to probe.
//!
//! Run with `cargo run --release --example stuck_at_diagnosis`.

use incdx::opt::{optimize_for_area, OptConfig};
use incdx::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A realistic diagnosis environment per §4.1: optimize the circuit for
    // area first (redundancies would otherwise create undetectable
    // faults).
    let raw = generate("c880a")?;
    let optimized = optimize_for_area(&raw, &OptConfig::default());
    let golden = optimized.netlist;
    println!(
        "circuit c880a: {} gates after optimization ({} removed, {} redundancies)",
        golden.len(),
        optimized.removed_gates,
        optimized.redundancies_removed
    );

    // Manufacture a "failing device": two random stuck-at faults.
    let mut rng = rand::rngs::StdRng::seed_from_u64(88);
    let injection = inject_stuck_at_faults(
        &golden,
        &InjectionConfig {
            count: 2,
            require_individually_observable: false,
            check_vectors: 1024,
            max_attempts: 200,
        },
        &mut rng,
    )?;
    println!("injected (hidden from the tool):");
    for fault in &injection.injected {
        println!("  {fault}");
    }

    // The tester observes only the device's PO responses.
    let mut vec_rng = rand::rngs::StdRng::seed_from_u64(7);
    let vectors = PackedMatrix::random(golden.inputs().len(), 2048, &mut vec_rng);
    let mut sim = Simulator::new();
    let device = Response::capture(
        &injection.corrupted,
        &sim.run_for_inputs(&injection.corrupted, golden.inputs(), &vectors),
    );

    // Exhaustive diagnosis: every minimal explanation of size ≤ 2.
    let result = Rectifier::new(
        golden.clone(),
        vectors,
        device,
        RectifyConfig::stuck_at_exhaustive(2),
    )?
    .run();

    println!(
        "\n{} equivalent fault tuple(s) over {} distinct site(s), {} nodes explored:",
        result.solutions.len(),
        result.distinct_sites(),
        result.stats.nodes
    );
    let mut injected = injection.injected.clone();
    injected.sort();
    for solution in &result.solutions {
        let tuple = solution.stuck_at_tuple().expect("stuck-at run");
        let marker = if tuple == injected {
            "  <-- the injected tuple"
        } else {
            ""
        };
        let rendered: Vec<String> = tuple.iter().map(ToString::to_string).collect();
        println!("  {{{}}}{marker}", rendered.join(", "));
    }
    assert!(
        result
            .solutions
            .iter()
            .any(|s| s.stuck_at_tuple().as_deref() == Some(&injected[..])),
        "exhaustive diagnosis must recover the actual fault tuple"
    );
    Ok(())
}
