//! Offline stand-in for the subset of the [`rand`](https://crates.io/crates/rand)
//! crate API used by this workspace.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides source-compatible replacements for exactly what the
//! workspace imports:
//!
//! * [`rngs::StdRng`] — a seedable deterministic generator
//!   (xoshiro256++ seeded through SplitMix64);
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng`] (the core `next_u64` trait) and [`RngExt`]
//!   (`random`, `random_range`, `random_bool`);
//! * [`seq::IndexedRandom::choose`] for slices.
//!
//! The statistical quality target is "good enough for randomized
//! circuit generation and property tests": xoshiro256++ passes BigCrush
//! and the integer range sampling is rejection-based (no modulo bias).
//! The streams differ from the real `rand` crate's, which is fine —
//! nothing in the workspace depends on a specific published stream,
//! only on seeded determinism.

/// A source of random 64-bit words. Mirror of `rand::RngCore`, reduced
/// to the one method the workspace needs.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types constructible from a `u64` seed. Mirror of `rand::SeedableRng`,
/// reduced to `seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it to the full
    /// internal state deterministically.
    fn seed_from_u64(state: u64) -> Self;
}

/// Values samplable uniformly from an `Rng` ("the standard
/// distribution" of the real crate).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types with uniform range sampling.
pub trait UniformInt: Copy {
    /// Draws uniformly from `[lo, hi)`. `lo < hi` is the caller's
    /// responsibility.
    fn sample_below<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_below<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as u64).wrapping_sub(lo as u64);
                debug_assert!(span > 0);
                // Rejection sampling: values below `zone` are unbiased.
                let zone = u64::MAX - (u64::MAX % span);
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return lo.wrapping_add((v % span) as $t);
                    }
                }
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range arguments accepted by [`RngExt::random_range`]. Mirror of
/// `rand::distr::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt + PartialOrd> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_below(self.start, self.end, rng)
    }
}

impl<T> SampleRange<T> for core::ops::RangeInclusive<T>
where
    T: UniformInt + PartialOrd + One,
{
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        // `hi + 1` may overflow only for the full domain, which the
        // workspace never samples.
        T::sample_below(lo, hi.add_one(), rng)
    }
}

/// Helper for inclusive-range sampling.
pub trait One {
    /// `self + 1`.
    fn add_one(self) -> Self;
}

macro_rules! impl_one {
    ($($t:ty),*) => {$(
        impl One for $t {
            fn add_one(self) -> Self { self + 1 }
        }
    )*};
}

impl_one!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods. Mirror of the `rand` 0.9+ `Rng`
/// extension surface (`random`, `random_range`, `random_bool`),
/// blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Draws a value of an inferred type from the standard distribution.
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p = {p} out of [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// (Blackman & Vigna), state-expanded from the seed with SplitMix64.
    ///
    /// Not the real `rand::rngs::StdRng` (ChaCha12) — streams differ,
    /// determinism per seed is what matters here.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Slice sampling helpers.

    use super::{Rng, RngExt};

    /// Uniform element selection from slices. Mirror of
    /// `rand::seq::IndexedRandom`, reduced to `choose`.
    pub trait IndexedRandom {
        /// The element type.
        type Item;

        /// Returns a uniformly drawn element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> IndexedRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::IndexedRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.random()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: usize = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let w: u64 = rng.random_range(5..=5);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits = {hits}");
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn range_sampling_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.random_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "counts = {counts:?}");
        }
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(5);
        let items = [1, 2, 3];
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*items.choose(&mut rng).unwrap() as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
