//! Offline stand-in for the subset of the
//! [`criterion`](https://crates.io/crates/criterion) benchmarking API
//! used by this workspace.
//!
//! Implements [`Criterion::bench_function`], benchmark groups and
//! [`Bencher::iter`] with plain wall-clock measurement: each benchmark
//! is warmed up briefly, then timed in batches until ~1 s of samples
//! accumulates, and the mean, minimum and maximum per-iteration times
//! are printed. No statistical analysis, plots, baselines or CLI
//! filtering — run `cargo bench` and read the table.

use std::time::{Duration, Instant};

/// Target accumulated measurement time per benchmark.
const MEASURE_TARGET: Duration = Duration::from_millis(1000);
/// Target warm-up time per benchmark.
const WARMUP_TARGET: Duration = Duration::from_millis(150);

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named benchmark. `f` receives a [`Bencher`] and must
    /// call [`Bencher::iter`].
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(name);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of benchmarks (`group.bench_function` prefixes
/// the group name).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Ends the group (other APIs configure reporting here; this one
    /// has nothing to flush).
    pub fn finish(self) {}
}

/// Measures one benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times repeated calls of `routine` until enough samples
    /// accumulate.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: fill caches, estimate the per-iteration cost.
        let warmup_started = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_started.elapsed() < WARMUP_TARGET {
            std::hint::black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = warmup_started.elapsed() / warmup_iters.max(1) as u32;
        // Batch size targeting ~10 ms per sample so Instant overhead
        // stays negligible for nanosecond-scale bodies.
        let batch = (Duration::from_millis(10).as_nanos() / per_iter.as_nanos().max(1))
            .clamp(1, 1_000_000) as u64;
        let measure_started = Instant::now();
        while measure_started.elapsed() < MEASURE_TARGET {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.samples.push(t0.elapsed() / batch as u32);
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples — did the body call iter()?)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().expect("non-empty");
        let max = self.samples.iter().max().expect("non-empty");
        println!(
            "{name:<40} mean {:>12} (min {}, max {}, {} samples)",
            fmt_duration(mean),
            fmt_duration(*min),
            fmt_duration(*max),
            self.samples.len(),
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions into a named group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_benches_run_the_body() {
        let mut calls = 0u64;
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn duration_formatting_picks_sane_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }
}
