//! Offline stand-in for the subset of the
//! [`proptest`](https://crates.io/crates/proptest) API used by this
//! workspace's property tests.
//!
//! Provides source-compatible replacements for:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(...)]`),
//! * [`Strategy`] with `prop_map` / `prop_flat_map`,
//! * integer-range, `prop::bool::ANY`, `prop::collection::vec`,
//!   `prop::sample::select` and tuple strategies,
//! * [`prop_assert!`] / [`prop_assert_eq!`] and the
//!   `Result<(), TestCaseError>` test-body protocol.
//!
//! Semantics are simplified relative to the real crate: inputs are drawn
//! from a deterministic per-case RNG (so failures reproduce without a
//! persistence file) and there is **no shrinking** — a failing case
//! reports the case number instead of a minimized input. That trade-off
//! keeps the vendored crate tiny while preserving what the tests
//! actually rely on: randomized coverage and assertion plumbing.

// The `proptest!` doctest necessarily shows `#[test]` inside the macro
// invocation — that is the real crate's calling convention, not a unit
// test we expect the doctest harness to run.
#![allow(clippy::test_attr_in_doctest)]

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

/// The source of test inputs handed to [`Strategy::sample`].
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// A deterministic generator for one test case. `salt` mixes in the
    /// test name so different tests see different streams.
    pub fn deterministic(case: u64, salt: u64) -> Self {
        TestRng(StdRng::seed_from_u64(
            case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt,
        ))
    }

    fn next(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A failed property assertion, carrying its message.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// The result type of a property-test body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random test inputs.
///
/// Unlike the real crate there is no value tree: a strategy simply
/// samples a concrete value per case.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value and samples it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                rng.0.random_range(self.start..self.end)
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit: f64 = rng.0.random();
        // Clamp below end: `unit` < 1.0 but rounding could still land on
        // `end` for tiny spans.
        (self.start + unit * (self.end - self.start)).min(f64_prev(self.end))
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        let unit: f64 = rng.0.random();
        self.start() + unit * (self.end() - self.start())
    }
}

/// The largest float strictly below `x` (used to keep half-open float
/// ranges half-open after rounding).
fn f64_prev(x: f64) -> f64 {
    if x.is_finite() && x > 0.0 {
        f64::from_bits(x.to_bits() - 1)
    } else {
        x
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}

pub mod bool {
    //! Boolean strategies.

    use super::{Strategy, TestRng};

    /// Strategy type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Length specification for [`vec()`](fn@vec) — built from a `usize` range.
    #[derive(Debug, Clone)]
    pub struct SizeRange(core::ops::Range<usize>);

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    /// Strategy returned by [`vec()`](fn@vec).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: core::ops::Range<usize>,
    }

    /// A vector of `size`-many elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into().0,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = (self.size.clone()).sample(rng);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies over explicit value sets.

    use super::{Strategy, TestRng};

    /// Strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        items: Vec<T>,
    }

    /// Uniform selection from a non-empty vector of options.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "cannot select from an empty vector");
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.items[(0..self.items.len()).sample(rng)].clone()
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult,
    };

    /// The `prop::` module path used by strategy expressions
    /// (`prop::bool::ANY`, `prop::collection::vec`, ...).
    pub use crate as prop;
}

/// Defines property tests.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
///
/// Each test body runs `cases` times with inputs drawn from its
/// strategies; `return Ok(())` skips a case, and `prop_assert!`-family
/// failures abort the run with the case number.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $crate::__proptest_one! {
                ($cfg)
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $crate::__proptest_one! {
                ($crate::ProptestConfig::default())
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            }
        )*
    };
}

/// Expands one test of a [`proptest!`] block (implementation detail).
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_one {
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+) $body:block
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            // Different tests get different input streams.
            let salt = stringify!($name)
                .bytes()
                .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                    (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
                });
            for case in 0..config.cases as u64 {
                let mut prop_rng = $crate::TestRng::deterministic(case, salt);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut prop_rng);)+
                let outcome: $crate::TestCaseResult =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {case}/{}: {e}",
                        stringify!($name),
                        config.cases,
                    );
                }
            }
        }
    };
}

/// Fails the current test case with a formatted message unless `cond`
/// holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current test case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    l == r,
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), l, r,
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    l == r,
                    "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), format!($($fmt)*), l, r,
                );
            }
        }
    };
}

/// Fails the current test case unless the two expressions differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    l != r,
                    "assertion failed: {} != {}\n  both: {:?}",
                    stringify!($left), stringify!($right), l,
                );
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_are_in_bounds(a in 3usize..17, b in 0u64..5) {
            prop_assert!((3..17).contains(&a));
            prop_assert!(b < 5, "b = {}", b);
        }

        #[test]
        fn tuples_vectors_and_maps_compose(
            v in prop::collection::vec((0usize..10, prop::bool::ANY), 2..6),
            s in prop::sample::select(vec!["x", "y"]),
            n in (1usize..4).prop_map(|k| k * 2),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&(a, _)| a < 10));
            prop_assert!(s == "x" || s == "y");
            prop_assert!(n % 2 == 0 && n <= 6);
        }

        #[test]
        fn flat_map_reuses_the_outer_sample(
            pair in (2usize..6).prop_flat_map(|n| (0usize..n).prop_map(move |k| (n, k)))
        ) {
            prop_assert!(pair.1 < pair.0);
        }

        #[test]
        fn early_return_skips_a_case(x in 0u32..10) {
            if x > 3 {
                return Ok(());
            }
            prop_assert!(x <= 3);
        }
    }

    #[test]
    fn failures_report_the_case() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                fn always_fails(_x in 0u64..2) {
                    prop_assert!(false, "boom");
                }
            }
            always_fails();
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("always_fails") && msg.contains("boom"), "{msg}");
    }
}
