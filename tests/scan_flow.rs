//! The full-scan sequential flow: scan conversion is consistent with true
//! sequential behaviour, and diagnosis on the scan core localizes faults
//! in next-state logic.

use incdx::prelude::*;
use rand::rngs::StdRng;

/// One sequential clock cycle equals one combinational evaluation of the
/// scan core when the pseudo-PIs are driven with the current state: the
/// core's pseudo-POs must equal the machine's next state.
#[test]
fn scan_core_agrees_with_sequential_step() {
    let machine = incdx::gen::moore_machine(6, 4, 5, 7);
    let (core, scan) = scan_convert(&machine).unwrap();
    let nv = 64;
    let mut rng = StdRng::seed_from_u64(1);
    let real_inputs = PackedMatrix::random(machine.inputs().len(), nv, &mut rng);
    let state = PackedMatrix::random(scan.pseudo_inputs.len(), nv, &mut rng);

    // Sequential: set the state, apply one cycle.
    let mut seq = SequentialSimulator::new(&machine, nv);
    for (i, &dff) in scan.pseudo_inputs.iter().enumerate() {
        let mut bits = PackedBits::new(nv);
        for v in 0..nv {
            bits.set(v, state.get(i, v));
        }
        seq.set_state(dff, &bits);
    }
    let frame = seq.step(&machine, &real_inputs);

    // Combinational scan core: concatenate real + pseudo input rows.
    let mut pi = PackedMatrix::new(core.inputs().len(), nv);
    let mut row = 0;
    for i in 0..machine.inputs().len() {
        pi.row_mut(row).copy_from_slice(real_inputs.row(i));
        row += 1;
    }
    for i in 0..scan.pseudo_inputs.len() {
        pi.row_mut(row).copy_from_slice(state.row(i));
        row += 1;
    }
    let mut sim = Simulator::new();
    let vals = sim.run(&core, &pi);

    // Every real PO and every next-state bit must agree with the frame.
    for &o in machine.outputs() {
        for v in 0..nv {
            assert_eq!(
                vals.get(o.index(), v),
                frame.get(o.index(), v),
                "PO {o} v{v}"
            );
        }
    }
    for (&dff, &d) in scan.pseudo_inputs.iter().zip(&scan.pseudo_outputs) {
        for v in 0..nv {
            assert_eq!(
                vals.get(d.index(), v),
                seq.state(dff).get(v),
                "next-state of {dff} v{v}"
            );
        }
    }
}

#[test]
fn diagnosis_on_scan_core_recovers_injected_fault() {
    let machine = incdx::gen::lfsr(12, &[0, 3, 7]);
    let (core, _) = scan_convert(&machine).unwrap();
    let mut rng = StdRng::seed_from_u64(12);
    let injection = inject_stuck_at_faults(
        &core,
        &InjectionConfig {
            count: 1,
            require_individually_observable: true,
            check_vectors: 256,
            max_attempts: 100,
        },
        &mut rng,
    )
    .unwrap();
    let mut vec_rng = StdRng::seed_from_u64(13);
    let pi = PackedMatrix::random(core.inputs().len(), 256, &mut vec_rng);
    let mut sim = Simulator::new();
    let device = Response::capture(
        &injection.corrupted,
        &sim.run_for_inputs(&injection.corrupted, core.inputs(), &pi),
    );
    let result = Rectifier::new(core, pi, device, RectifyConfig::stuck_at_exhaustive(1))
        .unwrap()
        .run();
    let mut injected = injection.injected.clone();
    injected.sort();
    assert!(result
        .solutions
        .iter()
        .any(|s| s.stuck_at_tuple().as_deref() == Some(&injected[..])));
}

#[test]
fn every_sequential_suite_entry_scan_converts_and_simulates() {
    for spec in incdx::gen::SUITE.iter().filter(|s| s.sequential) {
        let machine = generate(spec.name).unwrap();
        let (core, scan) = scan_convert(&machine).unwrap();
        assert!(core.is_combinational(), "{}", spec.name);
        assert_eq!(
            scan.pseudo_inputs.len(),
            machine.dffs().len(),
            "{}",
            spec.name
        );
        let mut rng = StdRng::seed_from_u64(99);
        let pi = PackedMatrix::random(core.inputs().len(), 64, &mut rng);
        let mut sim = Simulator::new();
        let vals = sim.run(&core, &pi);
        assert_eq!(vals.rows(), core.len(), "{}", spec.name);
    }
}
