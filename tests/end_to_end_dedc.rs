//! End-to-end design error diagnosis and correction: generate → corrupt
//! with Campenhout-distributed observable errors → rectify → verify the
//! proposed corrections restore the specification.

use incdx::prelude::*;
use rand::rngs::StdRng;

fn run_dedc(circuit: &str, errors: usize, seed: u64, vectors: usize) -> bool {
    let golden = generate(circuit).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let injection = inject_design_errors(
        &golden,
        &InjectionConfig {
            count: errors,
            require_individually_observable: true,
            check_vectors: vectors,
            max_attempts: 300,
        },
        &mut rng,
    )
    .unwrap();
    let mut vec_rng = StdRng::seed_from_u64(seed ^ 0x5555);
    let pi = PackedMatrix::random(golden.inputs().len(), vectors, &mut vec_rng);
    let mut sim = Simulator::new();
    let spec = Response::capture(&golden, &sim.run(&golden, &pi));
    let result = Rectifier::new(
        injection.corrupted.clone(),
        pi.clone(),
        spec.clone(),
        RectifyConfig::dedc(errors),
    )
    .unwrap()
    .run();
    let Some(solution) = result.solutions.first() else {
        return false;
    };
    assert!(solution.corrections.len() <= errors);
    let mut fixed = injection.corrupted.clone();
    for c in &solution.corrections {
        c.apply(&mut fixed).expect("solution applies");
    }
    let check = Response::compare(
        &fixed,
        &sim.run_for_inputs(&fixed, golden.inputs(), &pi),
        &spec,
    );
    assert!(check.matches(), "claimed solution must verify");
    true
}

#[test]
fn single_error_always_corrected_on_c17() {
    for seed in 0..6 {
        assert!(run_dedc("c17", 1, seed, 32), "seed {seed}");
    }
}

#[test]
fn single_error_on_c432a() {
    assert!(run_dedc("c432a", 1, 10, 512));
}

#[test]
fn double_error_on_c432a() {
    assert!(run_dedc("c432a", 2, 20, 512));
}

#[test]
fn triple_error_on_c432a() {
    assert!(run_dedc("c432a", 3, 30, 512));
}

#[test]
fn single_error_on_xor_tree_circuit() {
    // The c499-family (XOR trees) — the error-propagation structure the
    // paper singles out.
    assert!(run_dedc("c499a", 1, 40, 512));
}

#[test]
fn returned_corrections_stay_inside_the_error_model() {
    let golden = generate("c17").unwrap();
    let mut rng = StdRng::seed_from_u64(9);
    let injection = inject_design_errors(
        &golden,
        &InjectionConfig {
            count: 1,
            require_individually_observable: true,
            check_vectors: 32,
            max_attempts: 300,
        },
        &mut rng,
    )
    .unwrap();
    let mut vec_rng = StdRng::seed_from_u64(99);
    let pi = PackedMatrix::random(golden.inputs().len(), 32, &mut vec_rng);
    let mut sim = Simulator::new();
    let spec = Response::capture(&golden, &sim.run(&golden, &pi));
    let result = Rectifier::new(injection.corrupted, pi, spec, RectifyConfig::dedc(1))
        .unwrap()
        .run();
    for sol in &result.solutions {
        for c in &sol.corrections {
            assert!(
                !matches!(c.action(), CorrectionAction::SetConst(_)),
                "DEDC mode must not emit stuck-at models"
            );
        }
    }
}
