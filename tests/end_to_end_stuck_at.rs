//! End-to-end multiple stuck-at diagnosis across the whole stack:
//! generate → optimize → inject → diagnose exhaustively → verify every
//! returned tuple against the device.

use incdx::opt::{optimize_for_area, OptConfig};
use incdx::prelude::*;
use rand::rngs::StdRng;

fn device_response(
    golden: &Netlist,
    corrupted: &Netlist,
    vectors: &PackedMatrix,
) -> (Response, Response) {
    let mut sim = Simulator::new();
    let device = Response::capture(
        corrupted,
        &sim.run_for_inputs(corrupted, golden.inputs(), vectors),
    );
    let golden_resp = Response::capture(golden, &sim.run(golden, vectors));
    (device, golden_resp)
}

/// Every returned tuple, applied to the golden netlist, must reproduce the
/// device behaviour exactly on the diagnosis vectors.
fn verify_tuples(
    golden: &Netlist,
    device: &Response,
    vectors: &PackedMatrix,
    result: &incdx::core::RectifyResult,
) {
    let mut sim = Simulator::new();
    for solution in &result.solutions {
        let mut modeled = golden.clone();
        for c in &solution.corrections {
            c.apply(&mut modeled).expect("tuple applies");
        }
        let resp = Response::compare(
            &modeled,
            &sim.run_for_inputs(&modeled, golden.inputs(), vectors),
            device,
        );
        assert!(
            resp.matches(),
            "returned tuple {:?} does not explain the device",
            solution.corrections
        );
    }
}

fn run_case(circuit: &str, faults: usize, seed: u64, vectors: usize) {
    let golden = generate(circuit).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let injection = inject_stuck_at_faults(
        &golden,
        &InjectionConfig {
            count: faults,
            require_individually_observable: false,
            check_vectors: vectors,
            max_attempts: 200,
        },
        &mut rng,
    )
    .unwrap();
    let mut vec_rng = StdRng::seed_from_u64(seed ^ 0xABCD);
    let pi = PackedMatrix::random(golden.inputs().len(), vectors, &mut vec_rng);
    let (device, _) = device_response(&golden, &injection.corrupted, &pi);
    if device.matches() {
        return; // faults not excited on these vectors; nothing to diagnose
    }
    let result = Rectifier::new(
        golden.clone(),
        pi.clone(),
        device.clone(),
        RectifyConfig::stuck_at_exhaustive(faults),
    )
    .unwrap()
    .run();
    assert!(
        !result.solutions.is_empty(),
        "{circuit}/{faults}: no tuples"
    );
    verify_tuples(&golden, &device, &pi, &result);
    // The actual injected tuple (or a strict subset, under masking) must
    // be among the answers.
    let mut injected = injection.injected.clone();
    injected.sort();
    let recovered = result.solutions.iter().any(|s| {
        let t = s.stuck_at_tuple().expect("stuck-at mode");
        t == injected || t.iter().all(|f| injected.contains(f))
    });
    assert!(
        recovered,
        "{circuit}/{faults} seed {seed}: injected tuple not among {} answers",
        result.solutions.len()
    );
}

#[test]
fn single_fault_on_c17() {
    for seed in 0..4 {
        run_case("c17", 1, seed, 32);
    }
}

#[test]
fn single_fault_on_c432a() {
    run_case("c432a", 1, 1, 512);
}

#[test]
fn double_fault_on_c432a() {
    run_case("c432a", 2, 2, 512);
}

#[test]
fn single_fault_on_optimized_alu() {
    let golden = optimize_for_area(
        &generate("c880a").unwrap(),
        &OptConfig {
            redundancy_rounds: 0,
            ..OptConfig::default()
        },
    )
    .netlist;
    let mut rng = StdRng::seed_from_u64(3);
    let injection = inject_stuck_at_faults(
        &golden,
        &InjectionConfig {
            count: 1,
            require_individually_observable: true,
            check_vectors: 512,
            max_attempts: 200,
        },
        &mut rng,
    )
    .unwrap();
    let mut vec_rng = StdRng::seed_from_u64(77);
    let pi = PackedMatrix::random(golden.inputs().len(), 512, &mut vec_rng);
    let (device, _) = device_response(&golden, &injection.corrupted, &pi);
    let result = Rectifier::new(
        golden.clone(),
        pi.clone(),
        device.clone(),
        RectifyConfig::stuck_at_exhaustive(1),
    )
    .unwrap()
    .run();
    verify_tuples(&golden, &device, &pi, &result);
    let mut injected = injection.injected.clone();
    injected.sort();
    assert!(result
        .solutions
        .iter()
        .any(|s| s.stuck_at_tuple().as_deref() == Some(&injected[..])));
}

#[test]
fn consistent_device_yields_empty_tuple() {
    let golden = generate("c17").unwrap();
    let mut rng = StdRng::seed_from_u64(0);
    let pi = PackedMatrix::random(golden.inputs().len(), 64, &mut rng);
    let mut sim = Simulator::new();
    let device = Response::capture(&golden, &sim.run(&golden, &pi));
    let result = Rectifier::new(golden, pi, device, RectifyConfig::stuck_at_exhaustive(2))
        .unwrap()
        .run();
    assert_eq!(result.solutions.len(), 1);
    assert!(result.solutions[0].corrections.is_empty());
}
