//! The paper's stated extensions, end to end: bridging-fault diagnosis
//! through the correction stage, and partial-scan diagnosis through
//! time-frame expansion.

use incdx::fault::{BridgeKind, BridgingFault};
use incdx::netlist::unroll;
use incdx::prelude::*;
use rand::rngs::StdRng;

/// A wired-AND bridge is diagnosed by the design-error engine as (at
/// most) two InsertGate corrections — "adopting a suitable fault model in
/// the correction stage" needs no new machinery.
#[test]
fn wired_bridge_is_modeled_by_two_insert_gate_corrections() {
    let golden = generate("c432a").unwrap();
    let mut found = 0;
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::RngExt;
        let lines: Vec<GateId> = golden
            .iter()
            .filter(|(_, g)| g.kind().is_logic())
            .map(|(id, _)| id)
            .collect();
        let a = lines[rng.random_range(0..lines.len())];
        let b = lines[rng.random_range(0..lines.len())];
        if a == b {
            continue;
        }
        let mut bridged = golden.clone();
        if BridgingFault::new(a, b, BridgeKind::WiredAnd)
            .apply(&mut bridged)
            .is_err()
        {
            continue;
        }
        let mut vec_rng = StdRng::seed_from_u64(seed ^ 0xBB);
        let pi = PackedMatrix::random(golden.inputs().len(), 512, &mut vec_rng);
        let mut sim = Simulator::new();
        let device = Response::capture(
            &bridged,
            &sim.run_for_inputs(&bridged, golden.inputs(), &pi),
        );
        {
            let vals = sim.run(&golden, &pi);
            if Response::compare(&golden, &vals, &device).matches() {
                continue; // bridge not excited
            }
        }
        let result = Rectifier::new(
            golden.clone(),
            pi.clone(),
            device.clone(),
            RectifyConfig::dedc(2),
        )
        .unwrap()
        .run();
        let Some(solution) = result.solutions.first() else {
            continue;
        };
        let mut modeled = golden.clone();
        for c in &solution.corrections {
            c.apply(&mut modeled).unwrap();
        }
        let check = Response::compare(
            &modeled,
            &sim.run_for_inputs(&modeled, golden.inputs(), &pi),
            &device,
        );
        assert!(check.matches(), "seed {seed}: claimed model must verify");
        found += 1;
    }
    assert!(
        found >= 3,
        "bridge modelling must succeed on most seeds, got {found}"
    );
}

/// Partial scan: unroll a machine with one unscanned DFF over a few
/// frames and diagnose a stuck-at fault in its next-state logic on the
/// unrolled combinational model.
#[test]
fn partial_scan_diagnosis_through_time_frame_expansion() {
    let machine = incdx::gen::moore_machine(4, 3, 4, 77);
    let dffs = machine.dffs();
    // Scan all but the first DFF.
    let scanned: Vec<GateId> = dffs[1..].to_vec();
    let (unrolled_golden, info) = unroll(&machine, 3, &scanned).unwrap();
    assert!(unrolled_golden.is_combinational());

    // A stuck-at fault in the machine's combinational logic appears in
    // every frame replica of the unrolled model — build the faulty device
    // by forcing all replicas of the target line.
    let target = machine
        .iter()
        .filter(|(_, g)| g.kind().is_logic())
        .map(|(id, _)| id)
        .last()
        .unwrap();
    let replicas: Vec<GateId> = info.frame_map.iter().map(|m| m[target.index()]).collect();
    let mut faulty = unrolled_golden.clone();
    for &r in &replicas {
        StuckAt::new(r, true).apply(&mut faulty).unwrap();
    }

    let mut vec_rng = StdRng::seed_from_u64(7);
    let pi = PackedMatrix::random(unrolled_golden.inputs().len(), 512, &mut vec_rng);
    let mut sim = Simulator::new();
    let device = Response::capture(
        &faulty,
        &sim.run_for_inputs(&faulty, unrolled_golden.inputs(), &pi),
    );
    {
        let vals = sim.run(&unrolled_golden, &pi);
        assert!(
            !Response::compare(&unrolled_golden, &vals, &device).matches(),
            "fixed seed failed to excite; adjust the test seed"
        );
    }
    // Diagnose with up to 3 faults (one per frame replica of the site).
    let result = Rectifier::new(
        unrolled_golden.clone(),
        pi.clone(),
        device.clone(),
        RectifyConfig::stuck_at_exhaustive(3),
    )
    .unwrap()
    .run();
    assert!(
        !result.solutions.is_empty(),
        "unrolled diagnosis must resolve"
    );
    // Every returned tuple must itself explain the device behaviour (they
    // may sit on equivalent lines rather than the replicas).
    for solution in &result.solutions {
        let mut modeled = unrolled_golden.clone();
        for c in &solution.corrections {
            c.apply(&mut modeled).unwrap();
        }
        let vals = sim.run_for_inputs(&modeled, unrolled_golden.inputs(), &pi);
        assert!(
            Response::compare(&modeled, &vals, &device).matches(),
            "tuple {:?} must verify",
            solution.lines()
        );
    }
    // The replica tuple (or a masked subset of it) must be among them.
    let hit = result
        .solutions
        .iter()
        .any(|s| s.lines().iter().all(|l| replicas.contains(l)));
    assert!(hit, "the injected replica tuple must be recovered");
}

/// The unrolled model of a fault-free machine agrees with the sequential
/// simulator cycle by cycle.
#[test]
fn unrolled_model_matches_sequential_simulation() {
    let machine = incdx::gen::counter(5);
    let frames = 4;
    let (unrolled, info) = unroll(&machine, frames, &[]).unwrap();
    // Drive the unrolled model: en=1 each frame, initial state 0.
    let nv = 1;
    let mut pi = PackedMatrix::new(unrolled.inputs().len(), nv);
    for (i, &input) in unrolled.inputs().iter().enumerate() {
        let name = unrolled.name(input).unwrap_or("");
        if name.contains("_en") || name.ends_with("en") {
            pi.set(i, 0, true);
        }
    }
    let mut sim = Simulator::new();
    let vals = sim.run(&unrolled, &pi);

    // Sequential reference.
    let mut seq = SequentialSimulator::new(&machine, nv);
    let mut en = PackedMatrix::new(1, nv);
    en.set(0, 0, true);
    for f in 0..frames {
        let frame = seq.step(&machine, &en);
        for &po in machine.outputs() {
            let unrolled_line = info.frame_map[f][po.index()];
            assert_eq!(
                vals.get(unrolled_line.index(), 0),
                frame.get(po.index(), 0),
                "frame {f}, PO {po}"
            );
        }
    }
}
