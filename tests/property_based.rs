//! Property-based tests on the cross-crate invariants, driven by random
//! circuits from `incdx_gen::random_dag`.

use incdx::atpg::fault_simulate;
use incdx::gen::{random_dag, RandomDagConfig};
use incdx::opt::{optimize_for_area, OptConfig};
use incdx::prelude::*;
use incdx_core::path_trace_counts;
use proptest::prelude::*;
use rand::rngs::StdRng;

fn small_dag(seed: u64) -> Netlist {
    random_dag(
        &RandomDagConfig {
            inputs: 8,
            gates: 60,
            outputs: 6,
            max_fanin: 3,
            xor_fraction: 0.1,
            window: 24,
        },
        seed,
    )
}

/// Scalar reference simulator.
fn eval_scalar(n: &Netlist, inputs: &[bool]) -> Vec<bool> {
    let mut vals = vec![false; n.len()];
    for (i, &pi) in n.inputs().iter().enumerate() {
        vals[pi.index()] = inputs[i];
    }
    for &id in n.topo_order() {
        let g = n.gate(id);
        if g.kind() == GateKind::Input {
            continue;
        }
        let f: Vec<bool> = g.fanins().iter().map(|&x| vals[x.index()]).collect();
        vals[id.index()] = g.kind().eval(&f);
    }
    n.outputs().iter().map(|&o| vals[o.index()]).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The packed 64-way simulator agrees with naive scalar evaluation on
    /// random circuits and random vectors.
    #[test]
    fn packed_simulation_matches_scalar(seed in 0u64..500, vseed in 0u64..500) {
        let n = small_dag(seed);
        let mut rng = StdRng::seed_from_u64(vseed);
        let pi = PackedMatrix::random(n.inputs().len(), 96, &mut rng);
        let mut sim = Simulator::new();
        let vals = sim.run(&n, &pi);
        for v in [0usize, 63, 64, 95] {
            let scalar: Vec<bool> = (0..n.inputs().len()).map(|i| pi.get(i, v)).collect();
            let expect = eval_scalar(&n, &scalar);
            let got: Vec<bool> = n.outputs().iter().map(|o| vals.get(o.index(), v)).collect();
            prop_assert_eq!(got, expect, "vector {}", v);
        }
    }

    /// `.bench` serialization round-trips functionally.
    #[test]
    fn bench_roundtrip_preserves_function(seed in 0u64..500) {
        let n = small_dag(seed);
        let text = write_bench(&n);
        let m = parse_bench(&text).expect("own output parses");
        let mut rng = StdRng::seed_from_u64(seed);
        let pi = PackedMatrix::random(n.inputs().len(), 64, &mut rng);
        let mut sim = Simulator::new();
        let spec = Response::capture(&n, &sim.run(&n, &pi));
        let vals = sim.run(&m, &pi);
        prop_assert!(Response::compare(&m, &vals, &spec).matches());
    }

    /// The area optimizer is function-preserving on random circuits.
    #[test]
    fn optimizer_preserves_function(seed in 0u64..200) {
        let n = small_dag(seed);
        let r = optimize_for_area(&n, &OptConfig {
            redundancy_rounds: 1,
            backtrack_limit: 300,
            prefilter_vectors: 128,
        });
        prop_assert!(r.netlist.len() <= n.len());
        let mut rng = StdRng::seed_from_u64(seed ^ 1);
        let pi = PackedMatrix::random(n.inputs().len(), 128, &mut rng);
        let mut sim = Simulator::new();
        let spec = Response::capture(&n, &sim.run(&n, &pi));
        let vals = sim.run(&r.netlist, &pi);
        prop_assert!(Response::compare(&r.netlist, &vals, &spec).matches());
    }

    /// Path-trace marks at least one line of the injected fault set on
    /// every diagnosable corruption (the reference [10] guarantee).
    #[test]
    fn path_trace_marks_an_injected_site(seed in 0u64..200) {
        let golden = small_dag(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 2);
        let Ok(injection) = inject_stuck_at_faults(&golden, &InjectionConfig {
            count: 2,
            require_individually_observable: false,
            check_vectors: 128,
            max_attempts: 50,
        }, &mut rng) else {
            return Ok(()); // un-injectable circuit (tiny observable logic)
        };
        let mut vec_rng = StdRng::seed_from_u64(seed ^ 3);
        let pi = PackedMatrix::random(golden.inputs().len(), 128, &mut vec_rng);
        let mut sim = Simulator::new();
        let device = Response::capture(
            &injection.corrupted,
            &sim.run_for_inputs(&injection.corrupted, golden.inputs(), &pi),
        );
        let vals = sim.run(&golden, &pi);
        let resp = Response::compare(&golden, &vals, &device);
        if resp.num_failing() == 0 {
            return Ok(());
        }
        let counts = path_trace_counts(&golden, &vals, &resp, &device, 16);
        prop_assert!(
            injection.injected.iter().any(|f| counts[f.line().index()] > 0)
        );
    }

    /// ATPG-generated vectors detect exactly the faults they claim to.
    #[test]
    fn atpg_coverage_claims_are_truthful(seed in 0u64..60) {
        let n = small_dag(seed);
        let ts = incdx::atpg::generate_tests(&n, &incdx::atpg::TestGenConfig {
            backtrack_limit: 500,
            batch: 16,
            collapse: true,
            compact: true,
        });
        if ts.vectors.is_empty() {
            return Ok(());
        }
        let pi = ts.to_matrix(n.inputs().len());
        let faults = incdx::atpg::all_stuck_at_faults(&n);
        let hit = fault_simulate(&n, &faults, &pi);
        prop_assert_eq!(hit.iter().filter(|&&h| h).count(), ts.detected);
    }

    /// A single injected observable design error is always correctable by
    /// the engine within the error model.
    #[test]
    fn single_design_error_is_correctable(seed in 0u64..40) {
        let golden = small_dag(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 4);
        let Ok(injection) = inject_design_errors(&golden, &InjectionConfig {
            count: 1,
            require_individually_observable: true,
            check_vectors: 256,
            max_attempts: 50,
        }, &mut rng) else {
            return Ok(());
        };
        let mut vec_rng = StdRng::seed_from_u64(seed ^ 5);
        let pi = PackedMatrix::random(golden.inputs().len(), 256, &mut vec_rng);
        let mut sim = Simulator::new();
        let spec = Response::capture(&golden, &sim.run(&golden, &pi));
        let result = Rectifier::new(
            injection.corrupted.clone(),
            pi.clone(),
            spec.clone(),
            RectifyConfig::dedc(1),
        )
        .unwrap()
        .run();
        prop_assert!(!result.solutions.is_empty(), "error {:?}", injection.injected);
        let mut fixed = injection.corrupted.clone();
        for c in &result.solutions[0].corrections {
            c.apply(&mut fixed).expect("applies");
        }
        let check = Response::compare(
            &fixed,
            &sim.run_for_inputs(&fixed, golden.inputs(), &pi),
            &spec,
        );
        prop_assert!(check.matches());
    }
}
